//! A readiness-loop TCP server around one shared [`FullNode`].
//!
//! One event-loop thread owns *every* connection: nonblocking sockets
//! are multiplexed with the vendored [`mio`] poll shim (epoll on
//! Linux), each connection keeps its own read buffer, decoded-frame
//! cursor, and write queue, and complete requests are dispatched to a
//! bounded pool of proof workers. Responses come back over a completion
//! channel tagged with `(connection, request id)` and are written when
//! the socket is writable — so one node holds tens of thousands of
//! mostly-idle light clients, and a slow proof on one connection never
//! head-of-line-blocks another connection.
//!
//! Protocol versions are negotiated per connection from the first
//! frame's version byte: a v2 client opens with [`Message::Hello`]
//! (answered with the negotiated in-flight cap) and may pipeline up to
//! that many requests, each tagged with a request id; a v1 client sends
//! no Hello and is served in one-in-flight compatibility mode — its
//! next frame is not even parsed until the previous response is
//! queued, so v1 traffic is byte-identical to the old worker-pool
//! server.
//!
//! Backpressure has two layers: a per-connection in-flight cap
//! (negotiated in Hello, [`ServerConfig::max_in_flight`]) answered
//! with [`Message::Busy`] per excess request, and the bounded dispatch
//! queue ([`ServerConfig::accept_queue`]) shed the same way when the
//! proof workers cannot keep up. Unlike the old server, `Busy` no
//! longer closes the connection — the client backs off and retries on
//! the same socket.
//!
//! Faults are split by layer exactly as before: payload-level faults
//! (bad version, unknown tag, malformed body, prover refusal,
//! duplicate request id) are answered with a structured
//! [`Message::Error`] and the connection stays open; frame-level
//! faults (oversized announcement, truncated frame, mid-frame stall)
//! still drop the connection, because a length-prefixed stream cannot
//! be resynchronised after a bad prefix.

use std::collections::{HashSet, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{self, Receiver, Sender, TrySendError};
use lvq_codec::Encodable;
use mio::{Events, Interest, Poll, Token, Waker};

use crate::frame::MAX_FRAME_LEN;
use crate::full::{FullNode, Handled, RequestKind};
use crate::ingest::{IngestMonitor, IngestStats};
use crate::message::{envelope, HelloInfo, Message, NodeError, WireError, WireErrorCode};
use crate::supervise::{HealthCell, HealthState, Supervised, SupervisorConfig, TaskSpec, WorkCtx};

/// Supervision labels for the proof-worker pool.
const WORKER_SPEC: TaskSpec = TaskSpec {
    name: "lvq-proof-worker",
    restart_reason: "proof worker restarted after a crash",
    stall_reason: "proof worker stalled and was replaced",
    fail_reason: "proof worker died repeatedly; pool is short",
};

/// How often parked proof workers re-check the stop flag, and the
/// event-loop poll timeout (which paces the stall sweeps).
const STOP_POLL: Duration = Duration::from_millis(25);

/// Hard cap on the draining shutdown: if a proof is still running this
/// long after [`NodeServer::shutdown`], the loop stops waiting for it.
const DRAIN_DEADLINE: Duration = Duration::from_secs(5);

/// Readable interest is paused once a connection has buffered this
/// much unparsed request data beyond what its current frame needs —
/// TCP backpressure instead of unbounded memory for flooding peers.
const READ_PAUSE_BUFFER: usize = 1 << 20;

const LISTENER: Token = Token(0);
const WAKER: Token = Token(1);
const TOKEN_BASE: usize = 2;

/// Something a [`NodeServer`] can put behind its proof-worker pool.
///
/// [`FullNode`] is the production implementation; experiment harnesses
/// substitute adversarial nodes (e.g. a withholding peer for the
/// `repro quorum` experiment, or a deliberately slow prover for the
/// `repro pool` head-of-line-blocking check).
pub trait ServeNode: Send + Sync + 'static {
    /// Classifies and handles one request; never fails (faults become
    /// encoded [`Message::Error`] responses). See
    /// [`FullNode::handle_classified`].
    fn handle_classified(&self, request: &[u8]) -> Handled;

    /// Hash of the node's current best-tip header, reported through
    /// [`ServerStats::tip_hash`] so operators can compare which branch
    /// each server ended on after a reorg. Test doubles that serve no
    /// real chain keep the [`lvq_crypto::Hash256::ZERO`] default.
    fn tip_hash(&self) -> lvq_crypto::Hash256 {
        lvq_crypto::Hash256::ZERO
    }
}

impl<S: lvq_chain::BlockSource + 'static, T: lvq_chain::TableSource + 'static> ServeNode
    for FullNode<S, T>
{
    fn handle_classified(&self, request: &[u8]) -> Handled {
        FullNode::handle_classified(self, request)
    }

    fn tip_hash(&self) -> lvq_crypto::Hash256 {
        self.chain().tip_hash()
    }
}

/// Tuning knobs for a [`NodeServer`].
///
/// Construct with [`ServerConfig::default`] (or [`ServerConfig::new`])
/// and chain `with_*` setters; the struct is `#[non_exhaustive]` so
/// new knobs can land without breaking callers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct ServerConfig {
    /// Stall limit for a peer that goes silent in the middle of a
    /// frame; a connection with a partial frame older than this is
    /// dropped. Idle connections (no partial frame) are never timed
    /// out — holding many idle light clients is the point.
    pub read_timeout: Duration,
    /// Stall limit for a peer that stops draining its responses; a
    /// connection whose write queue makes no progress for this long is
    /// dropped.
    pub write_timeout: Duration,
    /// Largest request frame accepted; oversized announcements close
    /// the connection without allocating.
    pub max_frame_len: u32,
    /// Proof-worker threads in the pool; `0` means one per available
    /// CPU. Workers only run proofs — connections all live on the
    /// event loop — so this bounds CPU, not open connections.
    pub workers: usize,
    /// Bound of the dispatch queue between the event loop and the
    /// proof workers (minimum 1). Requests arriving while it is full
    /// are answered with [`Message::Busy`]; the connection stays open.
    pub accept_queue: usize,
    /// Per-request deadline, measured from frame parse to
    /// response-ready (queue wait included): when the response is
    /// ready only after this long, the server sends a small
    /// [`WireErrorCode::DeadlineExceeded`] error instead of the
    /// payload. `None` disables the deadline.
    pub request_deadline: Option<Duration>,
    /// Most requests one v2 connection may have in flight at once; the
    /// granted [`crate::HelloInfo::max_in_flight`] is
    /// `min(client proposal, this)`, at least 1. Excess requests are
    /// answered with [`Message::Busy`].
    pub max_in_flight: u32,
}

impl Default for ServerConfig {
    /// 200 ms stall limits (snappy shutdown on loopback), 64 MiB
    /// frames, auto-sized pool, 64-deep dispatch queue, no request
    /// deadline, 32 in-flight requests per v2 connection.
    ///
    /// The `LVQ_SERVER_WORKERS` environment variable, when set to a
    /// positive integer, overrides the auto-sized pool — the hook CI
    /// uses to run the whole test suite against a fixed pool width.
    fn default() -> Self {
        let workers = std::env::var("LVQ_SERVER_WORKERS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        ServerConfig {
            read_timeout: Duration::from_millis(200),
            write_timeout: Duration::from_millis(200),
            max_frame_len: MAX_FRAME_LEN,
            workers,
            accept_queue: 64,
            request_deadline: None,
            max_in_flight: crate::full::DEFAULT_MAX_IN_FLIGHT,
        }
    }
}

impl ServerConfig {
    /// Alias for [`ServerConfig::default`], reading better at the head
    /// of a `with_*` chain.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the mid-frame read stall limit.
    #[must_use]
    pub fn with_read_timeout(mut self, read_timeout: Duration) -> Self {
        self.read_timeout = read_timeout;
        self
    }

    /// Sets the response write stall limit.
    #[must_use]
    pub fn with_write_timeout(mut self, write_timeout: Duration) -> Self {
        self.write_timeout = write_timeout;
        self
    }

    /// Sets the largest accepted request frame.
    #[must_use]
    pub fn with_max_frame_len(mut self, max_frame_len: u32) -> Self {
        self.max_frame_len = max_frame_len;
        self
    }

    /// Sets the proof-worker count (`0` = one per available CPU).
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the dispatch-queue bound.
    #[must_use]
    pub fn with_accept_queue(mut self, accept_queue: usize) -> Self {
        self.accept_queue = accept_queue;
        self
    }

    /// Sets (or clears) the per-request deadline.
    #[must_use]
    pub fn with_request_deadline(mut self, request_deadline: Option<Duration>) -> Self {
        self.request_deadline = request_deadline;
        self
    }

    /// Sets the per-connection in-flight cap granted to v2 clients.
    #[must_use]
    pub fn with_max_in_flight(mut self, max_in_flight: u32) -> Self {
        self.max_in_flight = max_in_flight;
        self
    }

    /// The pool width this configuration resolves to: `workers`, or
    /// one per available CPU when `workers` is zero.
    pub fn effective_workers(&self) -> usize {
        if self.workers == 0 {
            std::thread::available_parallelism().map_or(1, usize::from)
        } else {
            self.workers
        }
    }
}

/// Requests answered, broken down by request kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RequestCounters {
    /// [`Message::GetHeaders`] requests.
    pub get_headers: u64,
    /// [`Message::GetHeadersFrom`] requests.
    pub get_headers_from: u64,
    /// Single-address [`Message::QueryRequest`]s.
    pub queries: u64,
    /// [`Message::BatchQueryRequest`]s.
    pub batch_queries: u64,
    /// [`Message::Hello`] negotiations (answered inline by the event
    /// loop; counted here but not in [`ServerStats::requests`] or the
    /// latency digest, which track proof work).
    pub hello: u64,
    /// Payloads that never classified as a request (bad version,
    /// unknown tag, malformed body, response-kind message, duplicate
    /// request id).
    pub invalid: u64,
}

impl RequestCounters {
    /// All requests read off the wire, valid or not.
    pub fn total(&self) -> u64 {
        self.get_headers
            + self.get_headers_from
            + self.queries
            + self.batch_queries
            + self.hello
            + self.invalid
    }
}

/// A digest of the request-latency histogram, in microseconds from
/// frame-parse completion to response-ready (proof-worker queue wait
/// included). Only successfully answered requests are recorded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencySummary {
    /// Requests recorded.
    pub count: u64,
    /// Mean latency.
    pub mean_us: u64,
    /// Median latency (log₂-bucket interpolation).
    pub p50_us: u64,
    /// 95th-percentile latency.
    pub p95_us: u64,
    /// 99th-percentile latency.
    pub p99_us: u64,
    /// Exact maximum latency.
    pub max_us: u64,
}

/// Point-in-time counters of a running (or stopped) server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// Connections accepted over the server's lifetime.
    pub connections: u64,
    /// Connections currently open (a gauge, not a counter).
    pub connections_open: u64,
    /// Requests answered successfully.
    pub requests: u64,
    /// Requests handed to the proof-worker pool — counted at dispatch
    /// time, so it runs ahead of [`ServerStats::requests`] by exactly
    /// the work still queued or executing.
    pub dispatched: u64,
    /// Faulty exchanges: structured [`Message::Error`] responses plus
    /// connections dropped on frame-level faults (malformed prefix,
    /// oversized announcement, mid-frame disconnect or stall, write
    /// failure, a response whose connection vanished first).
    pub errors: u64,
    /// Request payload bytes received (framing excluded).
    pub request_bytes: u64,
    /// Response payload bytes sent (framing excluded).
    pub response_bytes: u64,
    /// Requests shed with [`Message::Busy`]: the dispatch queue was
    /// full or the connection exceeded its in-flight cap. The
    /// connection stays open.
    pub busy: u64,
    /// Requests whose response was ready only after the per-request
    /// deadline and was therefore replaced with a
    /// [`WireErrorCode::DeadlineExceeded`] error.
    pub deadline_misses: u64,
    /// High-water mark of requests waiting in the dispatch queue.
    pub queue_highwater: u64,
    /// High-water mark of in-flight pipelined requests on any single
    /// v2 connection.
    pub pipelined_depth_highwater: u64,
    /// Proof-worker threads in the pool.
    pub workers: u64,
    /// Requests broken down by kind.
    pub by_kind: RequestCounters,
    /// Latency digest of successfully answered requests.
    pub latency: LatencySummary,
    /// Counters of the ingest pipeline growing the served chain, when
    /// one is attached ([`NodeServer::attach_ingest`]); all zeros for a
    /// frozen-chain server.
    pub ingest: IngestStats,
    /// Hash of the node's best-tip header at snapshot time — which
    /// branch this server is on ([`ServeNode::tip_hash`]);
    /// [`lvq_crypto::Hash256::ZERO`] for nodes that serve no chain.
    pub tip_hash: lvq_crypto::Hash256,
    /// Worst health observed across the server's supervised parts:
    /// the request handlers (a panicked request degrades this without
    /// killing the process), the proof-worker pool, and any watched
    /// external cells ([`NodeServer::watch_health`], e.g. a supervised
    /// ingest pipeline).
    pub health: HealthState,
    /// Requests whose handler panicked; each was answered with a
    /// structured [`WireErrorCode::Internal`] error while the process
    /// kept serving.
    pub panicked_requests: u64,
    /// Proof-worker restarts performed by the supervisor (panics
    /// outside a request, plus stalled workers the watchdog replaced).
    pub worker_restarts: u64,
}

/// Lock-free log₂-bucketed histogram of microsecond latencies.
///
/// Bucket 0 holds exactly 0 µs; bucket `i ≥ 1` holds `[2^(i-1), 2^i)`.
/// Percentiles interpolate linearly inside the hit bucket, and the
/// exact maximum is tracked separately, so tail estimates never exceed
/// an observed value.
#[derive(Debug)]
struct LatencyHistogram {
    buckets: [AtomicU64; 64],
    count: AtomicU64,
    sum_us: AtomicU64,
    max_us: AtomicU64,
}

impl LatencyHistogram {
    fn new() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }
    }

    fn bucket_of(us: u64) -> usize {
        (u64::BITS - us.leading_zeros()) as usize
    }

    fn record(&self, us: u64) {
        self.buckets[Self::bucket_of(us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    fn summary(&self) -> LatencySummary {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count: u64 = counts.iter().sum();
        let max_us = self.max_us.load(Ordering::Relaxed);
        if count == 0 {
            return LatencySummary::default();
        }
        let percentile = |p: f64| -> u64 {
            let target = ((p * count as f64).ceil() as u64).clamp(1, count);
            let mut seen = 0u64;
            for (i, &c) in counts.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                if seen + c >= target {
                    let lower = if i == 0 { 0 } else { 1u64 << (i - 1) };
                    let upper = if i == 0 { 0 } else { (1u64 << i) - 1 };
                    let within = (target - seen) as f64 / c as f64;
                    let estimate = lower + ((upper - lower) as f64 * within) as u64;
                    return estimate.min(max_us);
                }
                seen += c;
            }
            max_us
        };
        LatencySummary {
            count,
            mean_us: self.sum_us.load(Ordering::Relaxed) / count,
            p50_us: percentile(0.50),
            p95_us: percentile(0.95),
            p99_us: percentile(0.99),
            max_us,
        }
    }
}

#[derive(Debug)]
struct Shared<P> {
    node: Arc<P>,
    config: ServerConfig,
    pool_size: usize,
    stop: AtomicBool,
    connections: AtomicU64,
    connections_open: AtomicU64,
    requests: AtomicU64,
    dispatched: AtomicU64,
    errors: AtomicU64,
    request_bytes: AtomicU64,
    response_bytes: AtomicU64,
    busy: AtomicU64,
    deadline_misses: AtomicU64,
    queue_highwater: AtomicU64,
    pipelined_depth_highwater: AtomicU64,
    /// One counter per [`RequestKind`], indexed by `kind_index`.
    by_kind: [AtomicU64; 6],
    latency: LatencyHistogram,
    /// Counters of an attached ingest pipeline, if any.
    ingest: parking_lot::Mutex<Option<IngestMonitor>>,
    /// Requests whose handler panicked (answered with
    /// [`WireErrorCode::Internal`]).
    panicked_requests: AtomicU64,
    /// Proof-worker restarts, shared with every worker's supervisor.
    worker_restarts: Arc<AtomicU64>,
    /// Health of the request handlers: degraded by a panicked request.
    health: HealthCell,
    /// Further health cells merged into [`ServerStats::health`]: one
    /// per supervised proof worker, plus externally watched cells.
    watched: parking_lot::Mutex<Vec<HealthCell>>,
}

fn kind_index(kind: RequestKind) -> usize {
    match kind {
        RequestKind::GetHeaders => 0,
        RequestKind::GetHeadersFrom => 1,
        RequestKind::Query => 2,
        RequestKind::BatchQuery => 3,
        RequestKind::Hello => 4,
        RequestKind::Invalid => 5,
    }
}

impl<P: ServeNode> Shared<P> {
    fn stats(&self) -> ServerStats {
        let kind = |k: RequestKind| self.by_kind[kind_index(k)].load(Ordering::Relaxed);
        ServerStats {
            connections: self.connections.load(Ordering::Relaxed),
            connections_open: self.connections_open.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            dispatched: self.dispatched.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            request_bytes: self.request_bytes.load(Ordering::Relaxed),
            response_bytes: self.response_bytes.load(Ordering::Relaxed),
            busy: self.busy.load(Ordering::Relaxed),
            deadline_misses: self.deadline_misses.load(Ordering::Relaxed),
            queue_highwater: self.queue_highwater.load(Ordering::Relaxed),
            pipelined_depth_highwater: self.pipelined_depth_highwater.load(Ordering::Relaxed),
            workers: self.pool_size as u64,
            by_kind: RequestCounters {
                get_headers: kind(RequestKind::GetHeaders),
                get_headers_from: kind(RequestKind::GetHeadersFrom),
                queries: kind(RequestKind::Query),
                batch_queries: kind(RequestKind::BatchQuery),
                hello: kind(RequestKind::Hello),
                invalid: kind(RequestKind::Invalid),
            },
            latency: self.latency.summary(),
            ingest: self
                .ingest
                .lock()
                .as_ref()
                .map(IngestMonitor::snapshot)
                .unwrap_or_default(),
            tip_hash: self.node.tip_hash(),
            health: {
                let mut health = self.health.get();
                for cell in self.watched.lock().iter() {
                    health = health.merge(cell.get());
                }
                health
            },
            panicked_requests: self.panicked_requests.load(Ordering::Relaxed),
            worker_restarts: self.worker_restarts.load(Ordering::Relaxed),
        }
    }
}

/// One request handed to the proof-worker pool.
struct Job {
    conn: usize,
    gen: u64,
    payload: Vec<u8>,
    received: Instant,
}

/// One finished response routed back to the event loop.
struct Completion {
    conn: usize,
    gen: u64,
    kind: RequestKind,
    bytes: Vec<u8>,
    error: Option<WireErrorCode>,
    elapsed: Duration,
    /// The v2 request id, for releasing the connection's in-flight slot.
    id: Option<u64>,
}

/// Per-connection protocol mode, decided by the first frame's version
/// byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// No frame seen yet.
    Unknown,
    /// v1 compatibility: strictly one request in flight; the next
    /// frame is not parsed until the previous response is queued, so
    /// responses are naturally in order.
    V1,
    /// v2 pipelining with the negotiated in-flight cap (1 until a
    /// `Hello` arrives).
    V2 {
        /// Negotiated in-flight cap.
        cap: u32,
    },
}

/// Per-connection state owned by the event loop.
struct Conn {
    stream: TcpStream,
    /// Guards stale completions after this slot is closed and reused.
    gen: u64,
    mode: Mode,
    /// Unparsed request bytes.
    read_buf: Vec<u8>,
    /// Queued response frames (header + payload), partially written
    /// front first.
    out: VecDeque<Vec<u8>>,
    /// Bytes of `out.front()` already written.
    out_head: usize,
    /// Requests currently at the proof workers.
    dispatched: usize,
    /// v2 request ids currently in flight.
    in_flight: HashSet<u64>,
    /// Peer sent EOF; serve what was read, then close.
    read_closed: bool,
    /// Last time a read made progress while a partial frame was
    /// pending (stall detection).
    read_progress: Instant,
    /// Last time a write made progress while responses were queued.
    write_progress: Instant,
    /// The interest currently registered with the poll.
    registered: Option<Interest>,
}

impl Conn {
    fn new(stream: TcpStream, now: Instant) -> Self {
        Conn {
            stream,
            gen: 0,
            mode: Mode::Unknown,
            read_buf: Vec::new(),
            out: VecDeque::new(),
            out_head: 0,
            dispatched: 0,
            in_flight: HashSet::new(),
            read_closed: false,
            read_progress: now,
            write_progress: now,
            registered: None,
        }
    }

    /// Whether frame parsing should wait: a v1 connection serves
    /// strictly one request at a time.
    fn parse_gated(&self) -> bool {
        matches!(self.mode, Mode::V1) && (self.dispatched > 0 || !self.out.is_empty())
    }

    /// The interest this connection currently wants: readable unless
    /// the peer closed or the buffer is over the pause threshold,
    /// writable while responses are queued.
    fn wanted_interest(&self) -> Option<Interest> {
        let read = !self.read_closed && self.read_buf.len() < READ_PAUSE_BUFFER;
        let write = !self.out.is_empty();
        match (read, write) {
            (true, true) => Some(Interest::READABLE.add(Interest::WRITABLE)),
            (true, false) => Some(Interest::READABLE),
            (false, true) => Some(Interest::WRITABLE),
            (false, false) => None,
        }
    }
}

/// What `parse_frame` found at the front of a read buffer.
enum Parsed {
    /// A complete frame; the buffer was advanced past it.
    Frame(Vec<u8>),
    /// Not enough bytes yet.
    NeedMore,
    /// The length prefix announces a frame over the limit.
    TooLarge,
}

fn next_gen() -> u64 {
    static GEN: AtomicU64 = AtomicU64::new(1);
    GEN.fetch_add(1, Ordering::Relaxed)
}

/// Decodes a v2 `Hello`, if that is what the payload is.
fn decode_hello(payload: &[u8]) -> Option<(u64, HelloInfo)> {
    if !envelope::is_hello(payload) {
        return None;
    }
    let (id, v1) = envelope::unwrap_v2(payload)?;
    match Message::decode_classified(&v1) {
        Ok(Message::Hello(hello)) => Some((id, hello)),
        // A malformed Hello body: dispatch it for the structured
        // Malformed refusal instead.
        _ => None,
    }
}

fn parse_frame(buf: &mut Vec<u8>, max_frame_len: u32) -> Parsed {
    if buf.len() < 4 {
        return Parsed::NeedMore;
    }
    let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]);
    if len > max_frame_len {
        return Parsed::TooLarge;
    }
    let total = 4 + len as usize;
    if buf.len() < total {
        return Parsed::NeedMore;
    }
    let payload = buf[4..total].to_vec();
    buf.drain(..total);
    Parsed::Frame(payload)
}

/// A running TCP query server: one readiness loop owning every
/// connection, backed by a bounded proof-worker pool.
///
/// Created with [`NodeServer::bind`]; serves until [`shutdown`]
/// (graceful: dispatched requests complete, every thread joins) or
/// drop (same, implicitly). Generic over the served node so experiment
/// harnesses can stand up adversarial peers; defaults to [`FullNode`].
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use lvq_bloom::BloomParams;
/// use lvq_chain::{Address, ChainBuilder, Transaction};
/// use lvq_core::{Scheme, SchemeConfig};
/// use lvq_node::{FullNode, LightNode, NodeServer, QuerySpec, ServerConfig, TcpTransport};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let config = SchemeConfig::new(Scheme::Lvq, BloomParams::new(128, 2)?, 4)?;
/// let mut builder = ChainBuilder::new(config.chain_params())?;
/// builder.push_block(vec![Transaction::coinbase(Address::new("1Miner"), 50, 1)])?;
/// let full = Arc::new(FullNode::new(builder.finish())?);
///
/// let server = NodeServer::bind(full, "127.0.0.1:0", ServerConfig::default())?;
/// let mut peer = TcpTransport::connect(server.local_addr())?;
/// let mut light = LightNode::sync_from(&mut peer, config)?;
/// let run = light.run(&QuerySpec::address(Address::new("1Miner")), &mut peer)?;
/// assert_eq!(run.histories[0].transactions.len(), 1);
/// drop(peer);
/// let stats = server.shutdown();
/// assert_eq!(stats.requests, 2); // headers + query
/// assert_eq!(stats.by_kind.get_headers, 1);
/// assert_eq!(stats.by_kind.queries, 1);
/// assert_eq!(stats.latency.count, 2);
/// # Ok(())
/// # }
/// ```
///
/// [`shutdown`]: NodeServer::shutdown
#[derive(Debug)]
pub struct NodeServer<P: ServeNode = FullNode> {
    shared: Arc<Shared<P>>,
    local_addr: SocketAddr,
    waker: Arc<Waker>,
    loop_thread: Option<JoinHandle<()>>,
    workers: Vec<Supervised>,
}

impl<P: ServeNode> NodeServer<P> {
    /// Binds `addr` (use port 0 for an OS-assigned port, then
    /// [`NodeServer::local_addr`]), spawns the event loop and the
    /// proof-worker pool, and starts accepting.
    ///
    /// # Errors
    ///
    /// Returns [`NodeError::Io`] if the listener or the readiness
    /// selector cannot be set up.
    pub fn bind(
        node: Arc<P>,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> Result<Self, NodeError> {
        let bind_err = |context: &'static str| {
            move |e: std::io::Error| NodeError::Io {
                context,
                kind: e.kind(),
            }
        };
        let listener = TcpListener::bind(addr).map_err(bind_err("bind"))?;
        listener.set_nonblocking(true).map_err(bind_err("bind"))?;
        let local_addr = listener.local_addr().map_err(bind_err("bind"))?;

        let poll = Poll::new().map_err(bind_err("poll"))?;
        poll.register(listener.as_raw_fd(), LISTENER, Interest::READABLE)
            .map_err(bind_err("poll"))?;
        let waker = Arc::new(Waker::new(&poll, WAKER).map_err(bind_err("poll"))?);

        let pool_size = config.effective_workers();
        let shared = Arc::new(Shared {
            node,
            config,
            pool_size,
            stop: AtomicBool::new(false),
            connections: AtomicU64::new(0),
            connections_open: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            dispatched: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            request_bytes: AtomicU64::new(0),
            response_bytes: AtomicU64::new(0),
            busy: AtomicU64::new(0),
            deadline_misses: AtomicU64::new(0),
            queue_highwater: AtomicU64::new(0),
            pipelined_depth_highwater: AtomicU64::new(0),
            by_kind: std::array::from_fn(|_| AtomicU64::new(0)),
            latency: LatencyHistogram::new(),
            ingest: parking_lot::Mutex::new(None),
            panicked_requests: AtomicU64::new(0),
            worker_restarts: Arc::new(AtomicU64::new(0)),
            health: HealthCell::new(),
            watched: parking_lot::Mutex::new(Vec::new()),
        });

        let (job_tx, job_rx) = channel::bounded::<Job>(config.accept_queue.max(1));
        // Effectively unbounded: workers must never block on a
        // completion send, or a shutdown racing a slow proof could
        // deadlock the join.
        let (done_tx, done_rx) = channel::bounded::<Completion>(usize::MAX / 2);

        let workers = (0..pool_size)
            .map(|i| {
                let worker_shared = Arc::clone(&shared);
                let rx = job_rx.clone();
                let tx = done_tx.clone();
                let waker = Arc::clone(&waker);
                let cell = HealthCell::new();
                shared.watched.lock().push(cell.clone());
                Supervised::spawn(
                    WORKER_SPEC,
                    SupervisorConfig::default().with_seed(i as u64),
                    cell,
                    Arc::clone(&shared.worker_restarts),
                    move |ctx| {
                        worker_loop(&worker_shared, &rx, &tx, &waker, &ctx);
                        Ok(())
                    },
                )
            })
            .collect();

        let loop_shared = Arc::clone(&shared);
        let loop_thread = std::thread::spawn(move || {
            EventLoop::new(loop_shared, listener, poll, job_tx, done_rx).run();
        });

        Ok(NodeServer {
            shared,
            local_addr,
            waker,
            loop_thread: Some(loop_thread),
            workers,
        })
    }

    /// The address the server is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Live counters (callable while serving).
    pub fn stats(&self) -> ServerStats {
        self.shared.stats()
    }

    /// Attaches the counters of an ingest pipeline growing this
    /// server's chain ([`crate::IngestHandle::monitor`]), so
    /// [`ServerStats::ingest`] reports ingest progress alongside the
    /// serving counters.
    pub fn attach_ingest(&self, monitor: IngestMonitor) {
        *self.shared.ingest.lock() = Some(monitor);
    }

    /// Merges an external [`HealthCell`] into [`ServerStats::health`]
    /// (worst state wins) — e.g. the cell of a supervised ingest
    /// pipeline feeding this server.
    pub fn watch_health(&self, cell: HealthCell) {
        self.shared.watched.lock().push(cell);
    }

    /// The server's current aggregate health (same value as
    /// [`ServerStats::health`], without snapshotting every counter).
    pub fn health(&self) -> HealthState {
        let mut health = self.shared.health.get();
        for cell in self.shared.watched.lock().iter() {
            health = health.merge(cell.get());
        }
        health
    }

    /// The served node, e.g. to read [`FullNode::engine_stats`]
    /// alongside [`NodeServer::stats`].
    pub fn full(&self) -> &Arc<P> {
        &self.shared.node
    }

    /// Stops accepting, drains dispatched requests, joins every
    /// thread, and returns the final counters. A request already
    /// parsed off a socket and dispatched is answered and its response
    /// flushed; frames still sitting in read buffers are dropped
    /// unserved; idle connections close immediately.
    pub fn shutdown(mut self) -> ServerStats {
        self.stop_and_join();
        self.shared.stats()
    }

    fn stop_and_join(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        let _ = self.waker.wake();
        if let Some(handle) = self.loop_thread.take() {
            let _ = handle.join();
        }
        // The event loop has drained its outstanding completions by
        // now, so stopping the supervised workers drops no dispatched
        // request; a wedged worker is abandoned after its supervisor's
        // stop deadline instead of hanging shutdown forever.
        for mut worker in self.workers.drain(..) {
            worker.shutdown();
        }
    }
}

impl<P: ServeNode> Drop for NodeServer<P> {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn worker_loop<P: ServeNode>(
    shared: &Arc<Shared<P>>,
    rx: &Receiver<Job>,
    tx: &Sender<Completion>,
    waker: &Waker,
    ctx: &WorkCtx,
) {
    loop {
        // An attempt the watchdog abandoned must not take another job:
        // its replacement already owns this queue.
        if !ctx.live() {
            return;
        }
        match rx.recv_timeout(STOP_POLL) {
            Ok(job) => {
                ctx.busy();
                let id = envelope::request_id(&job.payload);
                // Panic isolation: a poisoned request fails *that*
                // request with a structured Internal error and
                // degrades health; the worker, the connection, and
                // the process all survive. AssertUnwindSafe is sound
                // because the node is only reached through `&self` and
                // a panicked handler's partial state is dropped here.
                let handled = catch_unwind(AssertUnwindSafe(|| {
                    shared.node.handle_classified(&job.payload)
                }))
                .unwrap_or_else(|_panic| {
                    shared.panicked_requests.fetch_add(1, Ordering::Relaxed);
                    shared.health.degrade("a request handler panicked");
                    let refusal = Message::Error(WireError::new(WireErrorCode::Internal)).encode();
                    Handled {
                        kind: RequestKind::Invalid,
                        bytes: match id {
                            Some(id) => envelope::wrap_v2(&refusal, id),
                            None => refusal,
                        },
                        error: Some(WireErrorCode::Internal),
                    }
                });
                let elapsed = job.received.elapsed();
                // The deadline is enforced when the response is ready —
                // one prover call cannot be preempted — so a missed
                // deadline turns a large late payload into a small,
                // immediate error frame.
                let missed = shared
                    .config
                    .request_deadline
                    .is_some_and(|deadline| handled.error.is_none() && elapsed > deadline);
                let handled = if missed {
                    shared.deadline_misses.fetch_add(1, Ordering::Relaxed);
                    let refusal =
                        Message::Error(WireError::new(WireErrorCode::DeadlineExceeded)).encode();
                    Handled {
                        kind: handled.kind,
                        bytes: match id {
                            Some(id) => envelope::wrap_v2(&refusal, id),
                            None => refusal,
                        },
                        error: Some(WireErrorCode::DeadlineExceeded),
                    }
                } else {
                    handled
                };
                let _ = tx.send(Completion {
                    conn: job.conn,
                    gen: job.gen,
                    kind: handled.kind,
                    bytes: handled.bytes,
                    error: handled.error,
                    elapsed,
                    id,
                });
                let _ = waker.wake();
                ctx.idle();
            }
            // Drain the queue before honouring stop: a parsed,
            // dispatched request is always answered.
            Err(channel::RecvTimeoutError::Timeout) => {
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(channel::RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// Why a connection is being closed, for the error counter.
#[derive(PartialEq, Eq, Clone, Copy)]
enum Close {
    /// Clean shutdown (peer EOF with nothing pending, or server stop).
    Clean,
    /// Frame-level fault or stall: counted as an error.
    Fault,
}

struct EventLoop<P: ServeNode> {
    shared: Arc<Shared<P>>,
    listener: Option<TcpListener>,
    poll: Poll,
    job_tx: Sender<Job>,
    done_rx: Receiver<Completion>,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    /// Jobs dispatched whose completions have not been received yet
    /// (including jobs for since-closed connections).
    outstanding: usize,
    stopping: Option<Instant>,
}

impl<P: ServeNode> EventLoop<P> {
    fn new(
        shared: Arc<Shared<P>>,
        listener: TcpListener,
        poll: Poll,
        job_tx: Sender<Job>,
        done_rx: Receiver<Completion>,
    ) -> Self {
        EventLoop {
            shared,
            listener: Some(listener),
            poll,
            job_tx,
            done_rx,
            conns: Vec::new(),
            free: Vec::new(),
            outstanding: 0,
            stopping: None,
        }
    }

    fn run(&mut self) {
        let mut events = Events::with_capacity(1024);
        loop {
            let _ = self.poll.poll(&mut events, Some(STOP_POLL));
            for event in &events {
                match event.token() {
                    LISTENER => self.accept_ready(),
                    WAKER => {} // completions are drained below
                    Token(t) => {
                        let index = t - TOKEN_BASE;
                        if event.is_writable() {
                            self.flush(index);
                        }
                        if event.is_readable() || event.is_error() {
                            self.read_ready(index);
                        }
                    }
                }
            }
            self.drain_completions();
            self.sweep_stalls();
            if self.shared.stop.load(Ordering::SeqCst) {
                if self.stopping.is_none() {
                    // Stop accepting at once: drop the listener so new
                    // connects are refused during the drain.
                    if let Some(listener) = self.listener.take() {
                        let _ = self.poll.deregister(listener.as_raw_fd());
                    }
                    self.stopping = Some(Instant::now());
                }
                self.close_drained();
                let all_closed = self.conns.iter().all(Option::is_none);
                let entered = self.stopping.expect("set above");
                if (all_closed && self.outstanding == 0) || entered.elapsed() > DRAIN_DEADLINE {
                    return;
                }
            }
        }
    }

    // -- accept ------------------------------------------------------

    fn accept_ready(&mut self) {
        let Some(listener) = &self.listener else {
            return;
        };
        loop {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    // Responses are written as header + payload;
                    // without nodelay, Nagle delays the payload a full
                    // ACK round trip. Best-effort, as on the client
                    // side.
                    let _ = stream.set_nodelay(true);
                    if stream.set_nonblocking(true).is_err() {
                        self.shared.errors.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    self.shared.connections.fetch_add(1, Ordering::Relaxed);
                    let index = match self.free.pop() {
                        Some(i) => i,
                        None => {
                            self.conns.push(None);
                            self.conns.len() - 1
                        }
                    };
                    debug_assert!(self.conns[index].is_none());
                    let mut conn = Conn::new(stream, Instant::now());
                    conn.gen = next_gen();
                    if self
                        .poll
                        .register(
                            conn.stream.as_raw_fd(),
                            Token(index + TOKEN_BASE),
                            Interest::READABLE,
                        )
                        .is_err()
                    {
                        self.shared.errors.fetch_add(1, Ordering::Relaxed);
                        self.free.push(index);
                        continue;
                    }
                    conn.registered = Some(Interest::READABLE);
                    self.shared.connections_open.fetch_add(1, Ordering::Relaxed);
                    self.conns[index] = Some(conn);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(_) => {
                    // Transient accept failure (e.g. fd exhaustion):
                    // count it and let the next tick retry.
                    self.shared.errors.fetch_add(1, Ordering::Relaxed);
                    break;
                }
            }
        }
    }

    // -- reading and parsing -----------------------------------------

    fn read_ready(&mut self, index: usize) {
        let Some(conn) = self.conns.get_mut(index).and_then(Option::as_mut) else {
            return;
        };
        let mut scratch = [0u8; 64 * 1024];
        let mut faulted = false;
        loop {
            match conn.stream.read(&mut scratch) {
                Ok(0) => {
                    conn.read_closed = true;
                    break;
                }
                Ok(n) => {
                    conn.read_buf.extend_from_slice(&scratch[..n]);
                    conn.read_progress = Instant::now();
                    if conn.read_buf.len() >= READ_PAUSE_BUFFER {
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    faulted = true;
                    break;
                }
            }
        }
        if faulted {
            self.close(index, Close::Fault);
            return;
        }
        self.advance(index);
    }

    /// Parses and dispatches whatever the connection's buffer allows,
    /// then reconciles EOF, close, and interest state. The one place
    /// all read-side state transitions funnel through.
    fn advance(&mut self, index: usize) {
        loop {
            let Some(conn) = self.conns.get_mut(index).and_then(Option::as_mut) else {
                return;
            };
            if conn.parse_gated() || self.stopping.is_some() {
                break;
            }
            match parse_frame(&mut conn.read_buf, self.shared.config.max_frame_len) {
                Parsed::NeedMore => break,
                Parsed::TooLarge => {
                    // Close before allocating, without writing a byte
                    // (the announcement itself is the attack surface).
                    self.close(index, Close::Fault);
                    return;
                }
                Parsed::Frame(payload) => {
                    if !self.handle_payload(index, payload) {
                        return;
                    }
                }
            }
        }
        let Some(conn) = self.conns.get_mut(index).and_then(Option::as_mut) else {
            return;
        };
        if conn.read_closed && conn.dispatched == 0 && conn.out.is_empty() {
            // Peer is gone and nothing is pending. Leftover bytes are
            // a partial frame (v1 connections park only *complete*
            // frames, and those would have re-entered above).
            let close = if conn.read_buf.is_empty() && !conn.parse_gated() {
                Close::Clean
            } else {
                Close::Fault
            };
            self.close(index, close);
            return;
        }
        self.update_interest(index);
    }

    /// Classifies one parsed payload; returns `false` if the
    /// connection was closed.
    fn handle_payload(&mut self, index: usize, payload: Vec<u8>) -> bool {
        self.shared
            .request_bytes
            .fetch_add(payload.len() as u64, Ordering::Relaxed);
        enum Action {
            Dispatch(Option<u64>),
            Duplicate(u64),
            OverCap(u64),
            HelloAck { id: u64, cap: u32 },
        }
        let action = {
            let Some(conn) = self.conns.get_mut(index).and_then(Option::as_mut) else {
                return false;
            };
            if conn.mode == Mode::Unknown {
                // The first frame decides the connection's protocol:
                // version byte 2 enters pipelined mode (cap 1 until a
                // Hello lands), anything else — including garbage that
                // will classify as an error — is served on the v1 path.
                conn.mode = if envelope::version(&payload) == Some(crate::message::PROTOCOL_V2) {
                    Mode::V2 { cap: 1 }
                } else {
                    Mode::V1
                };
            }
            match conn.mode {
                Mode::Unknown => unreachable!("mode decided above"),
                Mode::V1 => Action::Dispatch(None),
                Mode::V2 { cap } => {
                    if let Some((id, hello)) = decode_hello(&payload) {
                        let cap = hello
                            .max_in_flight
                            .clamp(1, self.shared.config.max_in_flight.max(1));
                        conn.mode = Mode::V2 { cap };
                        Action::HelloAck { id, cap }
                    } else {
                        match envelope::request_id(&payload) {
                            // A v2 version byte with a truncated
                            // envelope head: dispatch, and let the
                            // classifier produce the structured error.
                            None => Action::Dispatch(None),
                            Some(id) if conn.in_flight.contains(&id) => Action::Duplicate(id),
                            Some(id) if conn.in_flight.len() >= cap as usize => Action::OverCap(id),
                            Some(id) => Action::Dispatch(Some(id)),
                        }
                    }
                }
            }
        };
        match action {
            Action::Dispatch(id) => self.dispatch(index, payload, id),
            Action::Duplicate(id) => {
                let refusal = Message::Error(WireError::with_detail(
                    WireErrorCode::DuplicateRequestId,
                    id,
                ))
                .encode();
                self.shared.errors.fetch_add(1, Ordering::Relaxed);
                self.shared.by_kind[kind_index(RequestKind::Invalid)]
                    .fetch_add(1, Ordering::Relaxed);
                self.enqueue(index, envelope::wrap_v2(&refusal, id));
                true
            }
            Action::OverCap(id) => {
                self.shed_busy(index, Some(id));
                true
            }
            Action::HelloAck { id, cap } => {
                self.shared.by_kind[kind_index(RequestKind::Hello)].fetch_add(1, Ordering::Relaxed);
                let ack = Message::HelloAck(HelloInfo {
                    max_in_flight: cap,
                    features: 0,
                })
                .encode();
                self.enqueue(index, envelope::wrap_v2(&ack, id));
                true
            }
        }
    }

    /// Hands a request to the proof workers, or sheds it with `Busy`
    /// when the dispatch queue is full.
    fn dispatch(&mut self, index: usize, payload: Vec<u8>, id: Option<u64>) -> bool {
        let Some(conn) = self.conns.get_mut(index).and_then(Option::as_mut) else {
            return false;
        };
        let job = Job {
            conn: index,
            gen: conn.gen,
            payload,
            received: Instant::now(),
        };
        match self.job_tx.try_send(job) {
            Ok(()) => {
                self.shared.dispatched.fetch_add(1, Ordering::Relaxed);
                self.outstanding += 1;
                conn.dispatched += 1;
                if let Some(id) = id {
                    conn.in_flight.insert(id);
                    self.shared
                        .pipelined_depth_highwater
                        .fetch_max(conn.in_flight.len() as u64, Ordering::Relaxed);
                }
                self.shared
                    .queue_highwater
                    .fetch_max(self.job_tx.len() as u64, Ordering::Relaxed);
                true
            }
            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                self.shed_busy(index, id);
                true
            }
        }
    }

    /// Answers one request with `Busy` (enveloped under its id on v2)
    /// without closing the connection.
    fn shed_busy(&mut self, index: usize, id: Option<u64>) {
        self.shared.busy.fetch_add(1, Ordering::Relaxed);
        let busy = Message::Busy.encode();
        let bytes = match id {
            Some(id) => envelope::wrap_v2(&busy, id),
            None => busy,
        };
        self.enqueue(index, bytes);
    }

    // -- writing -----------------------------------------------------

    /// Queues one response payload (framing it) and flushes what the
    /// socket will take.
    fn enqueue(&mut self, index: usize, payload: Vec<u8>) {
        let Some(conn) = self.conns.get_mut(index).and_then(Option::as_mut) else {
            return;
        };
        self.shared
            .response_bytes
            .fetch_add(payload.len() as u64, Ordering::Relaxed);
        let mut frame = Vec::with_capacity(4 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&payload);
        if conn.out.is_empty() {
            conn.write_progress = Instant::now();
        }
        conn.out.push_back(frame);
        self.flush(index);
    }

    fn flush(&mut self, index: usize) {
        let Some(conn) = self.conns.get_mut(index).and_then(Option::as_mut) else {
            return;
        };
        let mut faulted = false;
        while let Some(front) = conn.out.front() {
            match conn.stream.write(&front[conn.out_head..]) {
                Ok(0) => {
                    faulted = true;
                    break;
                }
                Ok(n) => {
                    conn.out_head += n;
                    conn.write_progress = Instant::now();
                    if conn.out_head == front.len() {
                        conn.out.pop_front();
                        conn.out_head = 0;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    faulted = true;
                    break;
                }
            }
        }
        if faulted {
            self.close(index, Close::Fault);
            return;
        }
        self.update_interest(index);
    }

    // -- completions -------------------------------------------------

    fn drain_completions(&mut self) {
        while let Ok(done) = self.done_rx.try_recv() {
            self.outstanding -= 1;
            self.shared.by_kind[kind_index(done.kind)].fetch_add(1, Ordering::Relaxed);
            let live = self
                .conns
                .get_mut(done.conn)
                .and_then(Option::as_mut)
                .filter(|c| c.gen == done.gen);
            let Some(conn) = live else {
                // The connection died before its response was ready.
                self.shared.errors.fetch_add(1, Ordering::Relaxed);
                continue;
            };
            conn.dispatched -= 1;
            if let Some(id) = done.id {
                conn.in_flight.remove(&id);
            }
            if done.error.is_some() {
                // A structured refusal was delivered; the connection
                // survives, but the exchange counts as an error, not a
                // served request.
                self.shared.errors.fetch_add(1, Ordering::Relaxed);
            } else {
                self.shared.requests.fetch_add(1, Ordering::Relaxed);
                self.shared
                    .latency
                    .record(u64::try_from(done.elapsed.as_micros()).unwrap_or(u64::MAX));
            }
            self.enqueue(done.conn, done.bytes);
            // A v1 connection may have its next request parked in the
            // read buffer; un-gate it now that the response is queued.
            self.advance(done.conn);
        }
    }

    // -- stalls, close, shutdown -------------------------------------

    /// Drops connections stuck mid-frame (peer silent) or mid-response
    /// (peer not draining) past their stall limits.
    fn sweep_stalls(&mut self) {
        let now = Instant::now();
        let read_limit = self.shared.config.read_timeout;
        let write_limit = self.shared.config.write_timeout;
        let stalled: Vec<usize> = self
            .conns
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| {
                let conn = slot.as_ref()?;
                let mid_frame = !conn.read_buf.is_empty() && !conn.parse_gated();
                let read_stall = mid_frame && now.duration_since(conn.read_progress) > read_limit;
                let write_stall =
                    !conn.out.is_empty() && now.duration_since(conn.write_progress) > write_limit;
                (read_stall || write_stall).then_some(i)
            })
            .collect();
        for index in stalled {
            self.close(index, Close::Fault);
        }
    }

    /// During a draining shutdown, closes every connection with no
    /// dispatched request and nothing left to flush.
    fn close_drained(&mut self) {
        let drained: Vec<usize> = self
            .conns
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| {
                let conn = slot.as_ref()?;
                (conn.dispatched == 0 && conn.out.is_empty()).then_some(i)
            })
            .collect();
        for index in drained {
            self.close(index, Close::Clean);
        }
    }

    fn close(&mut self, index: usize, why: Close) {
        let Some(conn) = self.conns.get_mut(index).and_then(Option::take) else {
            return;
        };
        if why == Close::Fault {
            self.shared.errors.fetch_add(1, Ordering::Relaxed);
        }
        if conn.registered.is_some() {
            let _ = self.poll.deregister(conn.stream.as_raw_fd());
        }
        self.shared.connections_open.fetch_sub(1, Ordering::Relaxed);
        self.free.push(index);
        // `conn.stream` drops here, closing the socket.
    }

    /// Reconciles the poll registration with what the connection
    /// currently wants (read paused? responses queued?).
    fn update_interest(&mut self, index: usize) {
        let Some(conn) = self.conns.get_mut(index).and_then(Option::as_mut) else {
            return;
        };
        let wanted = conn.wanted_interest();
        if wanted == conn.registered {
            return;
        }
        let fd = conn.stream.as_raw_fd();
        let token = Token(index + TOKEN_BASE);
        let outcome = match (conn.registered, wanted) {
            (Some(_), Some(interest)) => self.poll.reregister(fd, token, interest),
            (None, Some(interest)) => self.poll.register(fd, token, interest),
            (Some(_), None) => self.poll.deregister(fd),
            (None, None) => Ok(()),
        };
        match outcome {
            Ok(()) => {
                if let Some(conn) = self.conns.get_mut(index).and_then(Option::as_mut) {
                    conn.registered = wanted;
                }
            }
            Err(_) => self.close(index, Close::Fault),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_percentiles() {
        let h = LatencyHistogram::new();
        assert_eq!(LatencyHistogram::bucket_of(0), 0);
        assert_eq!(LatencyHistogram::bucket_of(1), 1);
        assert_eq!(LatencyHistogram::bucket_of(2), 2);
        assert_eq!(LatencyHistogram::bucket_of(3), 2);
        assert_eq!(LatencyHistogram::bucket_of(1024), 11);

        // 100 samples at ~100 µs, one straggler at 10 ms.
        for _ in 0..100 {
            h.record(100);
        }
        h.record(10_000);
        let s = h.summary();
        assert_eq!(s.count, 101);
        assert_eq!(s.max_us, 10_000);
        // The p50/p95 live in the [64, 127] bucket of the fast cluster.
        assert!((64..=127).contains(&s.p50_us), "p50 = {}", s.p50_us);
        assert!((64..=127).contains(&s.p95_us), "p95 = {}", s.p95_us);
        // The p99 must not exceed the observed maximum.
        assert!(s.p99_us <= s.max_us);
        assert!(s.mean_us >= 100);
    }

    #[test]
    fn empty_histogram_summarises_to_zero() {
        assert_eq!(LatencyHistogram::new().summary(), LatencySummary::default());
    }

    #[test]
    fn config_resolves_worker_count() {
        let mut config = ServerConfig::new().with_workers(3);
        assert_eq!(config.effective_workers(), 3);
        config.workers = 0;
        assert!(config.effective_workers() >= 1);
    }

    #[test]
    fn config_builders_cover_every_knob() {
        let config = ServerConfig::new()
            .with_read_timeout(Duration::from_millis(1))
            .with_write_timeout(Duration::from_millis(2))
            .with_max_frame_len(512)
            .with_workers(5)
            .with_accept_queue(7)
            .with_request_deadline(Some(Duration::from_millis(9)))
            .with_max_in_flight(11);
        assert_eq!(config.read_timeout, Duration::from_millis(1));
        assert_eq!(config.write_timeout, Duration::from_millis(2));
        assert_eq!(config.max_frame_len, 512);
        assert_eq!(config.workers, 5);
        assert_eq!(config.accept_queue, 7);
        assert_eq!(config.request_deadline, Some(Duration::from_millis(9)));
        assert_eq!(config.max_in_flight, 11);
    }

    #[test]
    fn frame_parser_splits_and_guards() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&3u32.to_le_bytes());
        buf.extend_from_slice(b"abc");
        buf.extend_from_slice(&2u32.to_le_bytes());
        buf.push(b'x');
        match parse_frame(&mut buf, 1024) {
            Parsed::Frame(p) => assert_eq!(p, b"abc"),
            _ => panic!("expected a complete frame"),
        }
        assert!(matches!(parse_frame(&mut buf, 1024), Parsed::NeedMore));
        buf.push(b'y');
        match parse_frame(&mut buf, 1024) {
            Parsed::Frame(p) => assert_eq!(p, b"xy"),
            _ => panic!("expected the second frame"),
        }
        assert!(buf.is_empty());

        let mut huge = Vec::new();
        huge.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(parse_frame(&mut huge, 1024), Parsed::TooLarge));
    }
}
