//! Length-prefixed framing for the TCP transport.
//!
//! A frame is a little-endian `u32` payload length followed by the
//! payload. The prefix is transport overhead and is **never** counted
//! in [`crate::Traffic`] — byte accounting must agree with the
//! in-process [`crate::LocalTransport`] exactly.

use std::io::{ErrorKind, Read, Write};
use std::time::Instant;

use crate::message::NodeError;

/// Default upper bound on a frame payload (64 MiB) — far above any
/// response the reproduction produces, low enough that a hostile
/// length prefix cannot make a peer allocate unbounded memory.
pub const MAX_FRAME_LEN: u32 = 64 * 1024 * 1024;

fn io_error(context: &'static str, e: &std::io::Error) -> NodeError {
    NodeError::Io {
        context,
        kind: e.kind(),
    }
}

/// Writes one frame (length prefix + payload) and flushes.
///
/// # Errors
///
/// Returns [`NodeError::FrameTooLarge`] for payloads over `u32::MAX`
/// bytes and [`NodeError::Io`] for socket failures.
pub fn write_frame(writer: &mut impl Write, payload: &[u8]) -> Result<(), NodeError> {
    let len = u32::try_from(payload.len()).map_err(|_| NodeError::FrameTooLarge {
        len: payload.len() as u64,
        max: u64::from(u32::MAX),
    })?;
    writer
        .write_all(&len.to_le_bytes())
        .map_err(|e| io_error("write frame header", &e))?;
    writer
        .write_all(payload)
        .map_err(|e| io_error("write frame payload", &e))?;
    writer.flush().map_err(|e| io_error("flush frame", &e))?;
    Ok(())
}

/// Reads one frame, rejecting announced lengths above `max_len`.
///
/// # Errors
///
/// Returns [`NodeError::FrameTooLarge`] for oversized announcements,
/// [`NodeError::Disconnected`] if the peer closes mid-frame (or before
/// the first header byte), [`NodeError::Timeout`] (with the measured
/// wait) if the read deadline expires before the first header byte —
/// the peer is idle, and a retrying client wants to know that, not a
/// generic I/O failure — and [`NodeError::Io`] for other socket
/// failures, including a read timeout striking mid-frame.
pub fn read_frame(reader: &mut impl Read, max_len: u32) -> Result<Vec<u8>, NodeError> {
    let started = Instant::now();
    match read_frame_or_event(reader, max_len)? {
        FrameEvent::Frame(payload) => Ok(payload),
        FrameEvent::Eof => Err(NodeError::Disconnected {
            context: "read frame header",
        }),
        FrameEvent::Idle => Err(NodeError::Timeout {
            elapsed: started.elapsed(),
        }),
    }
}

/// What one framed read produced, distinguishing the benign outcomes a
/// server loop must tolerate from real frames.
#[derive(Debug)]
pub enum FrameEvent {
    /// A complete frame.
    Frame(Vec<u8>),
    /// The peer closed cleanly *between* frames (EOF before the first
    /// header byte).
    Eof,
    /// The read timed out before the first header byte arrived — the
    /// connection is merely idle, not broken.
    Idle,
}

/// Reads one frame, reporting clean EOF and idle timeouts as events
/// instead of errors — the read primitive for server connection loops,
/// which poll with a read timeout so they can notice a stop flag.
///
/// Once the first header byte has arrived the frame is committed:
/// timeouts and EOF from that point on are hard errors
/// ([`NodeError::Io`] / [`NodeError::Disconnected`]), because the peer
/// stalled or vanished mid-frame.
///
/// # Errors
///
/// As [`read_frame`], except the two benign cases above.
pub fn read_frame_or_event(reader: &mut impl Read, max_len: u32) -> Result<FrameEvent, NodeError> {
    let mut header = [0u8; 4];
    let mut got = 0usize;
    while got < header.len() {
        match reader.read(&mut header[got..]) {
            Ok(0) if got == 0 => return Ok(FrameEvent::Eof),
            Ok(0) => {
                return Err(NodeError::Disconnected {
                    context: "read frame header",
                })
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e)
                if got == 0
                    && (e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut) =>
            {
                return Ok(FrameEvent::Idle)
            }
            Err(e) => return Err(io_error("read frame header", &e)),
        }
    }
    let len = u32::from_le_bytes(header);
    if len > max_len {
        return Err(NodeError::FrameTooLarge {
            len: u64::from(len),
            max: u64::from(max_len),
        });
    }
    let mut payload = vec![0u8; len as usize];
    let mut filled = 0usize;
    while filled < payload.len() {
        match reader.read(&mut payload[filled..]) {
            Ok(0) => {
                return Err(NodeError::Disconnected {
                    context: "read frame payload",
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(io_error("read frame payload", &e)),
        }
    }
    Ok(FrameEvent::Frame(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        write_frame(&mut wire, b"").unwrap();
        write_frame(&mut wire, &[7u8; 300]).unwrap();
        let mut reader = wire.as_slice();
        assert_eq!(read_frame(&mut reader, MAX_FRAME_LEN).unwrap(), b"hello");
        assert_eq!(read_frame(&mut reader, MAX_FRAME_LEN).unwrap(), b"");
        assert_eq!(read_frame(&mut reader, MAX_FRAME_LEN).unwrap(), [7u8; 300]);
        assert!(matches!(
            read_frame_or_event(&mut reader, MAX_FRAME_LEN).unwrap(),
            FrameEvent::Eof
        ));
    }

    #[test]
    fn oversized_announcement_rejected_before_allocation() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            read_frame(&mut wire.as_slice(), 1024).unwrap_err(),
            NodeError::FrameTooLarge {
                len: u64::from(u32::MAX),
                max: 1024
            }
        );
    }

    #[test]
    fn idle_timeout_is_typed() {
        // A reader whose deadline has already expired: the client-side
        // read surfaces a typed Timeout carrying the measured wait.
        struct TimedOutReader;
        impl Read for TimedOutReader {
            fn read(&mut self, _buf: &mut [u8]) -> std::io::Result<usize> {
                Err(ErrorKind::TimedOut.into())
            }
        }
        assert!(matches!(
            read_frame(&mut TimedOutReader, MAX_FRAME_LEN).unwrap_err(),
            NodeError::Timeout { .. }
        ));
        // Mid-frame timeouts stay hard I/O errors: the stream cannot be
        // resynchronised once header bytes have been consumed.
        struct HeaderThenTimeout(bool);
        impl Read for HeaderThenTimeout {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if self.0 {
                    Err(ErrorKind::TimedOut.into())
                } else {
                    self.0 = true;
                    buf[0] = 5;
                    Ok(1)
                }
            }
        }
        assert!(matches!(
            read_frame(&mut HeaderThenTimeout(false), MAX_FRAME_LEN).unwrap_err(),
            NodeError::Io { .. }
        ));
    }

    #[test]
    fn truncation_is_a_disconnect() {
        // Truncated header.
        let mut partial: &[u8] = &[5, 0];
        assert_eq!(
            read_frame(&mut partial, MAX_FRAME_LEN).unwrap_err(),
            NodeError::Disconnected {
                context: "read frame header"
            }
        );
        // Announced 5 bytes, delivered 2.
        let mut wire = Vec::new();
        wire.extend_from_slice(&5u32.to_le_bytes());
        wire.extend_from_slice(b"ab");
        assert_eq!(
            read_frame(&mut wire.as_slice(), MAX_FRAME_LEN).unwrap_err(),
            NodeError::Disconnected {
                context: "read frame payload"
            }
        );
    }
}
