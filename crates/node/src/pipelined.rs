//! The pipelined (protocol v2) client transport.
//!
//! Protocol v1 is strictly request/response: one frame out, block until
//! the reply comes back ([`Transport::exchange`]). Over a real network
//! that serializes every round trip, so a light client verifying many
//! addresses pays `N × RTT` even though the server could overlap the
//! proof work. Protocol v2 fixes this with the request-id envelope
//! ([`envelope`]): every frame carries a little-endian `u64` id after
//! the version byte, requests may be submitted back-to-back up to a
//! negotiated in-flight window, and responses are matched back to their
//! requests by id — in whatever order the server finishes them.
//!
//! The negotiation is one extra round trip at connect time
//! ([`PipelinedTcpTransport::negotiate`]): the client sends a
//! v2-enveloped [`Message::Hello`] proposing a window, and
//!
//! * a v2 server answers [`Message::HelloAck`] with the granted window
//!   (its configured cap, so the client may get less than it asked
//!   for) → [`Negotiated::V2`];
//! * a v1 server rejects the unknown version byte with a structured
//!   [`WireErrorCode::UnsupportedVersion`] refusal → the client
//!   downgrades to plain [`TcpTransport`] *on the same connection*
//!   ([`Negotiated::V1`]) — no reconnect, no wasted socket.
//!
//! [`PipelinedTcpTransport`] also implements [`Transport`], so any
//! code written against the blocking API runs unchanged over a v2
//! connection (each exchange is a one-in-flight submit/recv pair).

use std::collections::{HashMap, VecDeque};
use std::net::{TcpStream, ToSocketAddrs};

use crate::frame::{read_frame, write_frame};
use crate::full::DEFAULT_MAX_IN_FLIGHT;
use crate::message::{envelope, HelloInfo, Message, NodeError, WireErrorCode};
use crate::pipe::Traffic;
use crate::tcp::{TcpOptions, TcpTransport};
use crate::transport::Transport;

/// The identifier a pipelined transport assigns to one submitted
/// request; the matching response carries it back.
pub type ReqId = u64;

/// A transport that keeps several requests in flight on one
/// connection.
///
/// The contract mirrors [`Transport`] but splits the exchange in two:
/// [`submit`](PipelinedTransport::submit) writes a request and returns
/// immediately with its [`ReqId`]; [`recv`](PipelinedTransport::recv)
/// blocks for the *next* response, whichever request it answers.
/// Responses may arrive in any order — the id is the only correlation.
///
/// Requests and responses are v1 payload bytes (the same bytes
/// [`Transport::exchange`] carries); the envelope is the transport's
/// business. [`Traffic`], however, meters the enveloped wire bytes, so
/// bandwidth measurements reflect what actually crossed the network —
/// v2 costs [`envelope::V2_HEAD`]` - 1` extra bytes per frame, and
/// experiments should see that.
pub trait PipelinedTransport {
    /// Writes one encoded v1 request, returning the id its response
    /// will carry.
    ///
    /// # Errors
    ///
    /// [`NodeError::PipelineViolation`] if the negotiated window is
    /// already full (call [`recv`](PipelinedTransport::recv) first);
    /// transport-level [`NodeError`]s if the write fails.
    fn submit(&mut self, request: &[u8]) -> Result<ReqId, NodeError>;

    /// Blocks for the next response, returning its request id, the v1
    /// payload bytes, and the wire traffic of the completed exchange
    /// (enveloped request + enveloped response).
    ///
    /// # Errors
    ///
    /// [`NodeError::PipelineViolation`] if nothing is in flight;
    /// [`NodeError::UnknownRequestId`] if the response's id matches no
    /// outstanding request; transport-level [`NodeError`]s if the read
    /// fails.
    fn recv(&mut self) -> Result<(ReqId, Vec<u8>, Traffic), NodeError>;

    /// How many requests are currently in flight.
    fn in_flight(&self) -> usize;

    /// The negotiated in-flight window.
    fn max_in_flight(&self) -> u32;
}

/// Outcome of dialing a server whose protocol version is unknown:
/// either a pipelined v2 session or a v1 downgrade on the same
/// connection.
#[derive(Debug)]
pub enum Negotiated {
    /// The server acknowledged the [`Message::Hello`]; requests can be
    /// pipelined up to the granted window.
    V2(PipelinedTcpTransport),
    /// The server rejected protocol v2 (a structured
    /// [`WireErrorCode::UnsupportedVersion`] refusal); the same
    /// connection continues as a blocking v1 transport.
    V1(TcpTransport),
}

impl Negotiated {
    /// Collapses the negotiation into a blocking [`Transport`],
    /// for callers that only need compatibility, not pipelining.
    pub fn into_transport(self) -> Box<dyn Transport + Send> {
        match self {
            Negotiated::V2(t) => Box::new(t),
            Negotiated::V1(t) => Box::new(t),
        }
    }

    /// Collapses the negotiation into a [`PipelinedTransport`]: the
    /// real thing on v2, a [`SequentialPipeline`] shim on v1 — so a
    /// caller written against the pipelined API works against either
    /// server generation (just without overlap on v1).
    pub fn into_pipelined(self) -> Box<dyn PipelinedTransport + Send> {
        match self {
            Negotiated::V2(t) => Box::new(t),
            Negotiated::V1(t) => Box::new(SequentialPipeline::new(t)),
        }
    }
}

/// Adapts any blocking [`Transport`] to the [`PipelinedTransport`]
/// contract: each submit performs the whole exchange on the spot and
/// buffers the response for a later `recv`. Nothing actually overlaps
/// — this is the downgrade shim that lets pipelined callers speak to
/// v1 servers ([`Negotiated::into_pipelined`]), trading the latency
/// win for compatibility without an API fork.
#[derive(Debug)]
pub struct SequentialPipeline<T: Transport> {
    inner: T,
    next_id: u64,
    ready: VecDeque<(ReqId, Vec<u8>, Traffic)>,
}

impl<T: Transport> SequentialPipeline<T> {
    /// Wraps a blocking transport.
    pub fn new(inner: T) -> Self {
        SequentialPipeline {
            inner,
            next_id: 1,
            ready: VecDeque::new(),
        }
    }

    /// The wrapped transport.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// Unwraps, discarding any buffered responses.
    pub fn into_inner(self) -> T {
        self.inner
    }
}

impl<T: Transport> PipelinedTransport for SequentialPipeline<T> {
    fn submit(&mut self, request: &[u8]) -> Result<ReqId, NodeError> {
        let (reply, traffic) = self.inner.exchange(request)?;
        let id = self.next_id;
        self.next_id += 1;
        self.ready.push_back((id, reply, traffic));
        Ok(id)
    }

    fn recv(&mut self) -> Result<(ReqId, Vec<u8>, Traffic), NodeError> {
        self.ready.pop_front().ok_or(NodeError::PipelineViolation {
            context: "recv with nothing in flight",
        })
    }

    fn in_flight(&self) -> usize {
        self.ready.len()
    }

    fn max_in_flight(&self) -> u32 {
        // No negotiated window on v1; responses buffer locally, so the
        // only bound a caller needs is "don't submit unboundedly".
        DEFAULT_MAX_IN_FLIGHT
    }
}

/// A [`PipelinedTransport`] over one TCP connection to a protocol-v2
/// [`crate::NodeServer`].
///
/// Construct via [`PipelinedTcpTransport::negotiate`] (dial +
/// handshake) or [`PipelinedTcpTransport::negotiate_on`] (handshake on
/// an existing [`TcpTransport`]). Ids are assigned sequentially from 1
/// (0 is the handshake's); the window is whatever the server granted.
#[derive(Debug)]
pub struct PipelinedTcpTransport {
    stream: TcpStream,
    max_frame_len: u32,
    granted: u32,
    next_id: u64,
    /// id → enveloped request length, so the exchange's traffic can be
    /// attributed when the response lands.
    pending: HashMap<u64, u64>,
    cumulative: Traffic,
    exchanges: u64,
}

impl PipelinedTcpTransport {
    /// Dials `addr` with `options` and negotiates the protocol,
    /// proposing an in-flight window of `proposed` (clamped to at
    /// least 1).
    ///
    /// # Errors
    ///
    /// [`NodeError::Io`] if the dial fails; any transport or decode
    /// error from the handshake exchange. A v1 server is *not* an
    /// error — it yields [`Negotiated::V1`].
    pub fn negotiate(
        addr: impl ToSocketAddrs,
        options: TcpOptions,
        proposed: u32,
    ) -> Result<Negotiated, NodeError> {
        let tcp = TcpTransport::connect_with(addr, options)?;
        Self::negotiate_on(tcp, proposed)
    }

    /// Negotiates the protocol on an already-connected transport.
    ///
    /// Sends a v2-enveloped [`Message::Hello`] (request id 0) and
    /// classifies the reply: [`Message::HelloAck`] → v2 with the
    /// granted window; a v1 [`WireErrorCode::UnsupportedVersion`]
    /// refusal → downgrade, reusing the connection. The handshake's
    /// traffic is folded into the returned transport's cumulative
    /// meters either way.
    ///
    /// # Errors
    ///
    /// Transport errors from the handshake exchange;
    /// [`NodeError::UnexpectedMessage`] if the reply is neither an ack
    /// nor a version refusal; [`NodeError::Busy`] if the server sheds
    /// the handshake itself.
    pub fn negotiate_on(mut tcp: TcpTransport, proposed: u32) -> Result<Negotiated, NodeError> {
        let hello = envelope::encode_v2(
            &Message::Hello(HelloInfo {
                max_in_flight: proposed.max(1),
                features: 0,
            }),
            0,
        );
        let max_frame_len = tcp.max_frame();
        write_frame(tcp.stream_mut(), &hello)?;
        let reply = read_frame(tcp.stream_mut(), max_frame_len)?;
        let traffic = Traffic {
            request_bytes: hello.len() as u64,
            response_bytes: reply.len() as u64,
        };
        match envelope::unwrap_v2(&reply) {
            Some((0, v1)) => match Message::decode_classified(&v1) {
                Ok(Message::HelloAck(ack)) => {
                    tcp.record_extra(traffic);
                    let (stream, max_frame_len, cumulative, exchanges) = tcp.into_parts();
                    Ok(Negotiated::V2(PipelinedTcpTransport {
                        stream,
                        max_frame_len,
                        granted: ack.max_in_flight.max(1),
                        next_id: 1,
                        pending: HashMap::new(),
                        cumulative,
                        exchanges,
                    }))
                }
                Ok(Message::Busy) => Err(NodeError::Busy),
                Ok(Message::Error(e)) => Err(NodeError::Server(e)),
                _ => Err(NodeError::UnexpectedMessage),
            },
            // The handshake is the connection's only frame so far, so
            // a v2 reply must echo id 0; anything else is a fault.
            Some((id, _)) => Err(NodeError::UnknownRequestId { id }),
            // A v1 reply to a v2 frame: an old server refusing the
            // version byte. Only that exact refusal downgrades —
            // anything else is a protocol fault.
            None => match Message::decode_classified(&reply) {
                Ok(Message::Error(e)) if e.code == WireErrorCode::UnsupportedVersion => {
                    tcp.record_extra(traffic);
                    Ok(Negotiated::V1(tcp))
                }
                Ok(Message::Busy) => Err(NodeError::Busy),
                Ok(Message::Error(e)) => Err(NodeError::Server(e)),
                _ => Err(NodeError::UnexpectedMessage),
            },
        }
    }

    /// The in-flight window the server granted in its
    /// [`Message::HelloAck`].
    pub fn granted(&self) -> u32 {
        self.granted
    }

    /// Lowers (or raises) the largest response frame this client will
    /// accept.
    pub fn set_max_frame_len(&mut self, max: u32) {
        self.max_frame_len = max;
    }
}

impl PipelinedTransport for PipelinedTcpTransport {
    fn submit(&mut self, request: &[u8]) -> Result<ReqId, NodeError> {
        if self.pending.len() >= self.granted as usize {
            return Err(NodeError::PipelineViolation {
                context: "submit past the negotiated in-flight window",
            });
        }
        let id = self.next_id;
        let wire = envelope::wrap_v2(request, id);
        write_frame(&mut self.stream, &wire)?;
        self.next_id += 1;
        self.pending.insert(id, wire.len() as u64);
        Ok(id)
    }

    fn recv(&mut self) -> Result<(ReqId, Vec<u8>, Traffic), NodeError> {
        if self.pending.is_empty() {
            return Err(NodeError::PipelineViolation {
                context: "recv with nothing in flight",
            });
        }
        let reply = read_frame(&mut self.stream, self.max_frame_len)?;
        let Some((id, v1)) = envelope::unwrap_v2(&reply) else {
            // A bare v1 frame on a negotiated v2 connection: the reply
            // stream is corrupt. Surface any structured refusal it
            // carries, otherwise the generic protocol fault.
            return Err(match Message::decode_classified(&reply) {
                Ok(Message::Error(e)) => NodeError::Server(e),
                _ => NodeError::UnexpectedMessage,
            });
        };
        let Some(request_bytes) = self.pending.remove(&id) else {
            return Err(NodeError::UnknownRequestId { id });
        };
        let traffic = Traffic {
            request_bytes,
            response_bytes: reply.len() as u64,
        };
        self.cumulative.request_bytes += traffic.request_bytes;
        self.cumulative.response_bytes += traffic.response_bytes;
        self.exchanges += 1;
        Ok((id, v1, traffic))
    }

    fn in_flight(&self) -> usize {
        self.pending.len()
    }

    fn max_in_flight(&self) -> u32 {
        self.granted
    }
}

/// Blocking compatibility: one exchange is a one-in-flight
/// submit/recv pair. Requires an empty pipeline — interleaving
/// blocking exchanges with outstanding pipelined requests would have
/// to drop whichever response arrives first, so it is refused instead.
impl Transport for PipelinedTcpTransport {
    fn exchange(&mut self, request: &[u8]) -> Result<(Vec<u8>, Traffic), NodeError> {
        if !self.pending.is_empty() {
            return Err(NodeError::PipelineViolation {
                context: "blocking exchange with pipelined requests outstanding",
            });
        }
        let id = self.submit(request)?;
        let (got, bytes, traffic) = self.recv()?;
        if got != id {
            return Err(NodeError::UnknownRequestId { id: got });
        }
        Ok((bytes, traffic))
    }

    fn cumulative_traffic(&self) -> Traffic {
        self.cumulative
    }

    fn exchanges(&self) -> u64 {
        self.exchanges
    }
}
