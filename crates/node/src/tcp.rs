//! The TCP transport: length-prefixed frames over a real socket.

use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::frame::{read_frame, write_frame, MAX_FRAME_LEN};
use crate::message::NodeError;
use crate::pipe::Traffic;
use crate::transport::Transport;

/// Socket options for dialing a peer: how long to wait for the
/// connection itself, and the read/write timeouts applied once it is
/// up. The defaults (`None` everywhere) keep the OS behaviour —
/// which, for a black-holed peer, can mean hanging for minutes, so
/// callers that need to fail fast set [`TcpOptions::with_connect_timeout`].
///
/// `#[non_exhaustive]`: construct with [`TcpOptions::default`] and
/// chain `with_*` setters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub struct TcpOptions {
    /// Give up dialing after this long (`None` = OS default).
    pub connect_timeout: Option<Duration>,
    /// Socket read timeout once connected (`None` = block forever).
    pub read_timeout: Option<Duration>,
    /// Socket write timeout once connected (`None` = block forever).
    pub write_timeout: Option<Duration>,
}

impl TcpOptions {
    /// Alias for [`TcpOptions::default`], reading better at the head
    /// of a `with_*` chain.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the dial timeout.
    #[must_use]
    pub fn with_connect_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.connect_timeout = timeout;
        self
    }

    /// Sets the post-connect read timeout.
    #[must_use]
    pub fn with_read_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.read_timeout = timeout;
        self
    }

    /// Sets the post-connect write timeout.
    #[must_use]
    pub fn with_write_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.write_timeout = timeout;
        self
    }
}

/// A [`Transport`] over one TCP connection to a [`crate::NodeServer`].
///
/// Frames requests and responses with a 4-byte length prefix
/// ([`crate::frame`]). [`Traffic`] counts payload bytes only — the
/// prefix is transport overhead — so measurements over TCP agree
/// byte-for-byte with [`crate::LocalTransport`].
///
/// The connection is persistent: one transport can carry any number of
/// sequential exchanges, which is what lets a server-side connection
/// thread keep its warm view of the shared caches.
#[derive(Debug)]
pub struct TcpTransport {
    stream: TcpStream,
    cumulative: Traffic,
    exchanges: u64,
    max_frame_len: u32,
}

impl TcpTransport {
    /// Connects to a serving full node.
    ///
    /// # Errors
    ///
    /// Returns [`NodeError::Io`] if the connection cannot be
    /// established.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, NodeError> {
        Self::connect_with(addr, TcpOptions::default())
    }

    /// Connects to a serving full node with explicit dial and socket
    /// timeouts, so a black-holed peer fails fast instead of hanging
    /// for the OS default.
    ///
    /// # Errors
    ///
    /// Returns [`NodeError::Io`] if no resolved address connects
    /// within the dial timeout, or if the socket rejects a timeout
    /// option.
    pub fn connect_with(addr: impl ToSocketAddrs, options: TcpOptions) -> Result<Self, NodeError> {
        let io_err = |context: &'static str| {
            move |e: std::io::Error| NodeError::Io {
                context,
                kind: e.kind(),
            }
        };
        let stream = match options.connect_timeout {
            None => TcpStream::connect(addr).map_err(io_err("connect"))?,
            Some(timeout) => {
                // `connect_timeout` takes one resolved address; try
                // each in order, like `TcpStream::connect` does.
                let addrs = addr.to_socket_addrs().map_err(io_err("connect"))?;
                let mut last = None;
                let mut stream = None;
                for resolved in addrs {
                    match TcpStream::connect_timeout(&resolved, timeout) {
                        Ok(s) => {
                            stream = Some(s);
                            break;
                        }
                        Err(e) => last = Some(e),
                    }
                }
                match stream {
                    Some(s) => s,
                    None => {
                        return Err(last.map_or(
                            NodeError::Io {
                                context: "connect",
                                kind: std::io::ErrorKind::AddrNotAvailable,
                            },
                            |e| io_err("connect")(e),
                        ))
                    }
                }
            }
        };
        let mut transport = TcpTransport::from_stream(stream);
        transport.set_timeouts(options.read_timeout, options.write_timeout)?;
        Ok(transport)
    }

    /// Wraps an already-connected stream.
    pub fn from_stream(stream: TcpStream) -> Self {
        // A frame is written as header + payload; without nodelay,
        // Nagle holds the payload until the header is acknowledged
        // (tens of milliseconds per exchange on loopback). Best-effort:
        // a socket that rejects the option still works, just slower.
        let _ = stream.set_nodelay(true);
        TcpTransport {
            stream,
            cumulative: Traffic::default(),
            exchanges: 0,
            max_frame_len: MAX_FRAME_LEN,
        }
    }

    /// Applies read/write timeouts to the underlying socket. `None`
    /// blocks indefinitely.
    ///
    /// # Errors
    ///
    /// Returns [`NodeError::Io`] if the socket rejects the option.
    pub fn set_timeouts(
        &mut self,
        read: Option<Duration>,
        write: Option<Duration>,
    ) -> Result<(), NodeError> {
        self.stream
            .set_read_timeout(read)
            .and_then(|()| self.stream.set_write_timeout(write))
            .map_err(|e| NodeError::Io {
                context: "set timeouts",
                kind: e.kind(),
            })
    }

    /// Lowers (or raises) the largest response frame this client will
    /// accept.
    pub fn set_max_frame_len(&mut self, max: u32) {
        self.max_frame_len = max;
    }

    /// The underlying stream, for protocol negotiation preambles
    /// ([`crate::PipelinedTcpTransport::negotiate_on`]).
    pub(crate) fn stream_mut(&mut self) -> &mut TcpStream {
        &mut self.stream
    }

    /// The configured response-frame limit.
    pub(crate) fn max_frame(&self) -> u32 {
        self.max_frame_len
    }

    /// Folds out-of-band exchange traffic (e.g. the negotiation
    /// preamble) into this transport's cumulative meters.
    pub(crate) fn record_extra(&mut self, traffic: Traffic) {
        self.cumulative.request_bytes += traffic.request_bytes;
        self.cumulative.response_bytes += traffic.response_bytes;
        self.exchanges += 1;
    }

    /// Decomposes into the raw stream and the frame limit, keeping the
    /// accumulated meters alongside.
    pub(crate) fn into_parts(self) -> (TcpStream, u32, Traffic, u64) {
        (
            self.stream,
            self.max_frame_len,
            self.cumulative,
            self.exchanges,
        )
    }
}

impl Transport for TcpTransport {
    fn exchange(&mut self, request: &[u8]) -> Result<(Vec<u8>, Traffic), NodeError> {
        write_frame(&mut self.stream, request)?;
        let response = read_frame(&mut self.stream, self.max_frame_len)?;
        let traffic = Traffic {
            request_bytes: request.len() as u64,
            response_bytes: response.len() as u64,
        };
        self.cumulative.request_bytes += traffic.request_bytes;
        self.cumulative.response_bytes += traffic.response_bytes;
        self.exchanges += 1;
        Ok((response, traffic))
    }

    fn cumulative_traffic(&self) -> Traffic {
        self.cumulative
    }

    fn exchanges(&self) -> u64 {
        self.exchanges
    }
}
