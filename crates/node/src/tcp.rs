//! The TCP transport: length-prefixed frames over a real socket.

use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::frame::{read_frame, write_frame, MAX_FRAME_LEN};
use crate::message::NodeError;
use crate::pipe::Traffic;
use crate::transport::Transport;

/// A [`Transport`] over one TCP connection to a [`crate::NodeServer`].
///
/// Frames requests and responses with a 4-byte length prefix
/// ([`crate::frame`]). [`Traffic`] counts payload bytes only — the
/// prefix is transport overhead — so measurements over TCP agree
/// byte-for-byte with [`crate::LocalTransport`].
///
/// The connection is persistent: one transport can carry any number of
/// sequential exchanges, which is what lets a server-side connection
/// thread keep its warm view of the shared caches.
#[derive(Debug)]
pub struct TcpTransport {
    stream: TcpStream,
    cumulative: Traffic,
    exchanges: u64,
    max_frame_len: u32,
}

impl TcpTransport {
    /// Connects to a serving full node.
    ///
    /// # Errors
    ///
    /// Returns [`NodeError::Io`] if the connection cannot be
    /// established.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, NodeError> {
        let stream = TcpStream::connect(addr).map_err(|e| NodeError::Io {
            context: "connect",
            kind: e.kind(),
        })?;
        Ok(TcpTransport::from_stream(stream))
    }

    /// Wraps an already-connected stream.
    pub fn from_stream(stream: TcpStream) -> Self {
        // A frame is written as header + payload; without nodelay,
        // Nagle holds the payload until the header is acknowledged
        // (tens of milliseconds per exchange on loopback). Best-effort:
        // a socket that rejects the option still works, just slower.
        let _ = stream.set_nodelay(true);
        TcpTransport {
            stream,
            cumulative: Traffic::default(),
            exchanges: 0,
            max_frame_len: MAX_FRAME_LEN,
        }
    }

    /// Applies read/write timeouts to the underlying socket. `None`
    /// blocks indefinitely.
    ///
    /// # Errors
    ///
    /// Returns [`NodeError::Io`] if the socket rejects the option.
    pub fn set_timeouts(
        &mut self,
        read: Option<Duration>,
        write: Option<Duration>,
    ) -> Result<(), NodeError> {
        self.stream
            .set_read_timeout(read)
            .and_then(|()| self.stream.set_write_timeout(write))
            .map_err(|e| NodeError::Io {
                context: "set timeouts",
                kind: e.kind(),
            })
    }

    /// Lowers (or raises) the largest response frame this client will
    /// accept.
    pub fn set_max_frame_len(&mut self, max: u32) {
        self.max_frame_len = max;
    }
}

impl Transport for TcpTransport {
    fn exchange(&mut self, request: &[u8]) -> Result<(Vec<u8>, Traffic), NodeError> {
        write_frame(&mut self.stream, request)?;
        let response = read_frame(&mut self.stream, self.max_frame_len)?;
        let traffic = Traffic {
            request_bytes: request.len() as u64,
            response_bytes: response.len() as u64,
        };
        self.cumulative.request_bytes += traffic.request_bytes;
        self.cumulative.response_bytes += traffic.response_bytes;
        self.exchanges += 1;
        Ok((response, traffic))
    }

    fn cumulative_traffic(&self) -> Traffic {
        self.cumulative
    }

    fn exchanges(&self) -> u64 {
        self.exchanges
    }
}
