//! Full-node / light-node pair with a transport-agnostic, byte-metered
//! serving layer.
//!
//! The paper's prototype runs the query client and server as RPC peers
//! on two machines and measures the size of the query results. This
//! crate reproduces that setup with full fidelity at the byte level:
//! every request and response is really encoded through [`lvq_codec`],
//! shipped as bytes across a [`Transport`], decoded on the far side,
//! and the transport records exactly what crossed it.
//!
//! * [`FullNode`] — owns a [`lvq_chain::Chain`] and answers
//!   [`Message::QueryRequest`]s with proofs from [`lvq_core::Prover`];
//!   `Sync`, so one node can serve many concurrent connections;
//! * [`LiveNode`] / [`TipIngester`] — the follow-the-tip pair: a full
//!   node behind a reader-writer lock so every query proves against a
//!   pinned tip, plus the background ingest thread that appends new
//!   blocks to an `lvq-store` [`lvq_store::BlockStore`] and extends
//!   the chain while the server keeps answering;
//! * [`LightNode`] — stores only headers, issues requests over any
//!   [`Transport`], and verifies responses with
//!   [`lvq_core::LightClient`];
//! * [`Transport`] — the serving abstraction, with two
//!   interchangeable implementations: [`LocalTransport`] (the
//!   in-process simulated wire, a [`MeteredPipe`] in front of the
//!   node) and [`TcpTransport`] (length-prefixed frames over a real
//!   socket, speaking to a [`NodeServer`]). Both count [`Traffic`] as
//!   payload bytes only, so measurements agree exactly;
//! * [`NodeServer`] — a thread-per-connection TCP server sharing one
//!   `Arc<FullNode>` (and thus its memo caches) across clients;
//! * [`query_quorum`] / [`query_quorum_batch`] — cross-check several
//!   peers and merge their verified answers;
//! * [`BandwidthModel`] — converts measured bytes into estimated
//!   transfer times for reporting.
//!
//! # Examples
//!
//! ```
//! use lvq_bloom::BloomParams;
//! use lvq_chain::{Address, ChainBuilder, Transaction};
//! use lvq_core::{Scheme, SchemeConfig};
//! use lvq_node::{FullNode, LightNode, LocalTransport, QuerySpec};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config = SchemeConfig::new(Scheme::Lvq, BloomParams::new(128, 2)?, 4)?;
//! let mut builder = ChainBuilder::new(config.chain_params())?;
//! for h in 1..=4u32 {
//!     builder.push_block(vec![Transaction::coinbase(Address::new("1Miner"), 50, h)])?;
//! }
//! let full = FullNode::new(builder.finish())?;
//! let mut peer = LocalTransport::new(&full);
//! let mut light = LightNode::sync_from(&mut peer, config)?;
//!
//! let run = light.run(&QuerySpec::address(Address::new("1Miner")), &mut peer)?;
//! assert_eq!(run.histories[0].transactions.len(), 4);
//! assert!(run.traffic.response_bytes > 0);
//! # Ok(())
//! # }
//! ```
//!
//! For the TCP side of the same flow, see [`NodeServer`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bandwidth;
mod faults;
pub mod frame;
mod full;
mod ingest;
mod light;
mod live;
mod message;
mod pipe;
mod pipelined;
mod quorum;
mod reconnect;
mod retry;
mod server;
mod supervise;
mod tcp;
#[cfg(test)]
mod testutil;
mod transport;

pub use bandwidth::BandwidthModel;
pub use faults::{FaultPlan, FaultStats, FaultyTransport};
pub use full::{FullNode, Handled, QueryEngineStats, RequestKind, DEFAULT_MAX_IN_FLIGHT};
pub use ingest::{
    BlockFeed, FeedError, FeedPublisher, FlakyFeed, IngestConfig, IngestError, IngestHandle,
    IngestMonitor, IngestStats, MemoryFeed, SupervisedIngest, TipIngester,
};
pub use light::{LightNode, QueryRun, QuerySpec};
pub use live::LiveNode;
pub use message::{
    envelope, HelloInfo, Message, NodeError, WireError, WireErrorCode, PROTOCOL_V2,
    PROTOCOL_VERSION,
};
pub use pipe::{MeteredPipe, Traffic};
pub use pipelined::{
    Negotiated, PipelinedTcpTransport, PipelinedTransport, ReqId, SequentialPipeline,
};
pub use quorum::{
    converge_on_majority, query_quorum, query_quorum_batch, query_quorum_spec, tip_census,
    MajorityConvergence, PeerHealth, PeerOutcome, QueryPeer, QuorumBatchOutcome, QuorumOutcome,
    QuorumReport, TipRelation,
};
pub use reconnect::ReconnectingTcpTransport;
pub use retry::{ResyncOutcome, Retrier, RetryPolicy, RetryStats};
pub use server::{
    LatencySummary, NodeServer, RequestCounters, ServeNode, ServerConfig, ServerStats,
};
pub use supervise::{HealthCell, HealthState, Supervised, SupervisorConfig, TaskSpec, WorkCtx};
pub use tcp::{TcpOptions, TcpTransport};
pub use transport::{LocalTransport, Transport};
