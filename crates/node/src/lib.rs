//! Full-node / light-node pair with a simulated, byte-metered RPC wire.
//!
//! The paper's prototype runs the query client and server as RPC peers
//! on two machines and measures the size of the query results. This
//! crate reproduces that setup in-process with full fidelity at the
//! byte level: every request and response is really encoded through
//! [`lvq_codec`], shipped as bytes across a [`MeteredPipe`], decoded on
//! the far side, and the pipe records exactly what crossed it.
//!
//! * [`FullNode`] — owns a [`lvq_chain::Chain`] and answers
//!   [`Message::QueryRequest`]s with proofs from [`lvq_core::Prover`];
//! * [`LightNode`] — stores only headers, issues requests, and verifies
//!   responses with [`lvq_core::LightClient`];
//! * [`BandwidthModel`] — converts measured bytes into estimated
//!   transfer times for reporting.
//!
//! # Examples
//!
//! ```
//! use lvq_bloom::BloomParams;
//! use lvq_chain::{Address, ChainBuilder, Transaction};
//! use lvq_core::{Scheme, SchemeConfig};
//! use lvq_node::{FullNode, LightNode};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config = SchemeConfig::new(Scheme::Lvq, BloomParams::new(128, 2)?, 4)?;
//! let mut builder = ChainBuilder::new(config.chain_params())?;
//! for h in 1..=4u32 {
//!     builder.push_block(vec![Transaction::coinbase(Address::new("1Miner"), 50, h)])?;
//! }
//! let full = FullNode::new(builder.finish())?;
//! let mut light = LightNode::sync_from(&full, config)?;
//!
//! let outcome = light.query(&full, &Address::new("1Miner"))?;
//! assert_eq!(outcome.history.transactions.len(), 4);
//! assert!(outcome.traffic.response_bytes > 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bandwidth;
mod full;
mod light;
mod message;
mod pipe;
mod quorum;

pub use bandwidth::BandwidthModel;
pub use full::{FullNode, QueryEngineStats};
pub use light::{BatchQueryOutcome, LightNode, QueryOutcome};
pub use message::{Message, NodeError};
pub use pipe::{MeteredPipe, Traffic};
pub use quorum::{query_quorum, QueryPeer, QuorumOutcome};
