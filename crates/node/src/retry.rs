//! Retry policy: exponential backoff with decorrelated jitter.
//!
//! The serving stack sheds load with [`crate::Message::Busy`], drops
//! idle connections, and enforces deadlines; a well-behaved client
//! answers all of that with *patience*, not failure. [`RetryPolicy`]
//! describes how patient (attempt cap, backoff window, overall
//! deadline budget); [`Retrier`] executes an operation under a policy,
//! retrying exactly the errors [`NodeError::retryable`] classifies as
//! transient and giving up immediately on fatal ones — a verification
//! failure must never be papered over by asking the same peer again.
//!
//! Backoff uses decorrelated jitter (`sleep = min(cap, uniform(base,
//! prev * 3))`): it spreads synchronized clients apart like full
//! jitter but still grows roughly exponentially. The jitter stream
//! comes from a seeded RNG, so a retry schedule — like everything else
//! in the chaos harness — is reproducible.

use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::message::NodeError;

/// How hard to try: attempt cap, backoff window, deadline budget.
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use lvq_node::RetryPolicy;
///
/// // Five attempts, 10ms–2s decorrelated-jitter backoff, no deadline.
/// let default = RetryPolicy::default();
/// assert_eq!(default.max_attempts, 5);
///
/// // A CLI-style policy: 8 attempts, 50ms base, 2-second budget.
/// let patient = RetryPolicy::new(8)
///     .backoff(Duration::from_millis(50), Duration::from_secs(1))
///     .budget(Duration::from_secs(2));
/// assert_eq!(patient.max_attempts, 8);
///
/// // No retries at all: every error is final on the first attempt.
/// assert_eq!(RetryPolicy::none().max_attempts, 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (must be at least 1).
    pub max_attempts: u32,
    /// Lower bound of every backoff sleep.
    pub base_backoff: Duration,
    /// Upper bound any backoff sleep is clamped to.
    pub max_backoff: Duration,
    /// Overall wall-clock budget for one operation, attempts and
    /// backoff included. `None` means attempts are the only cap.
    pub deadline: Option<Duration>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::new(5)
    }
}

impl RetryPolicy {
    /// A policy of `max_attempts` tries with the default 10ms–2s
    /// backoff window and no deadline budget.
    ///
    /// # Panics
    ///
    /// Panics if `max_attempts` is zero — the first try is an attempt.
    pub fn new(max_attempts: u32) -> Self {
        assert!(max_attempts >= 1, "at least one attempt is required");
        RetryPolicy {
            max_attempts,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_secs(2),
            deadline: None,
        }
    }

    /// A single attempt: transient errors are as final as fatal ones.
    pub fn none() -> Self {
        RetryPolicy::new(1)
    }

    /// Sets the backoff window (`base` = first sleep's lower bound,
    /// `cap` = clamp on every sleep).
    #[must_use]
    pub fn backoff(mut self, base: Duration, cap: Duration) -> Self {
        self.base_backoff = base;
        self.max_backoff = cap.max(base);
        self
    }

    /// Sets the overall wall-clock budget for one operation.
    #[must_use]
    pub fn budget(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// What one best-effort tip re-check (the `sync_new` a retrying client
/// performs after a connection-shaped transient) actually found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResyncOutcome {
    /// The peer served this many new headers (always non-zero).
    Synced(u64),
    /// The peer reported nothing above our tip — at or behind us.
    PeerBehind,
    /// The peer's headers diverged from ours below our tip: the client
    /// rolled back to `fork_height` (within its reorg budget) and
    /// adopted the peer's replacement headers.
    Diverged {
        /// Height at which the two chains agree again.
        fork_height: u64,
    },
    /// The re-check itself failed; the query retry proceeds regardless.
    Failed,
}

impl ResyncOutcome {
    /// New headers this re-check gained — zero unless [`Synced`].
    /// A [`Diverged`] outcome replaces headers rather than gaining
    /// them, so it also reports zero here.
    ///
    /// [`Synced`]: ResyncOutcome::Synced
    /// [`Diverged`]: ResyncOutcome::Diverged
    pub fn new_headers(&self) -> u64 {
        match self {
            ResyncOutcome::Synced(headers) => *headers,
            _ => 0,
        }
    }
}

/// Counters of what a [`Retrier`] actually did, for reporting.
///
/// Everything here is deterministic under a fixed seed and policy
/// (backoff durations are drawn from the seeded RNG; only a deadline
/// budget consults the wall clock).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RetryStats {
    /// Operations driven to completion (success or final error).
    pub operations: u64,
    /// Individual attempts across all operations.
    pub attempts: u64,
    /// Attempts beyond the first, i.e. actual retries.
    pub retries: u64,
    /// Operations that exhausted the attempt cap or deadline budget on
    /// transient errors.
    pub exhausted: u64,
    /// Operations stopped by a fatal (non-retryable) error.
    pub fatal: u64,
    /// Total time slept in backoff.
    pub backoff_total: Duration,
    /// Tip re-checks performed after connection-shaped transients.
    pub resyncs: u64,
    /// New headers gained across all re-checks.
    pub resync_headers: u64,
    /// Re-checks that found the peer at or behind our tip.
    pub resyncs_peer_behind: u64,
    /// Re-checks that rolled the client back across a fork.
    pub resyncs_diverged: u64,
    /// Re-checks that themselves failed (never fatal on their own).
    pub resyncs_failed: u64,
    /// Outcome of the most recent re-check, `None` before the first.
    pub last_resync: Option<ResyncOutcome>,
}

impl RetryStats {
    /// Folds one tip re-check into the counters.
    pub fn record_resync(&mut self, outcome: ResyncOutcome) {
        self.resyncs += 1;
        match outcome {
            ResyncOutcome::Synced(headers) => self.resync_headers += headers,
            ResyncOutcome::PeerBehind => self.resyncs_peer_behind += 1,
            ResyncOutcome::Diverged { .. } => self.resyncs_diverged += 1,
            ResyncOutcome::Failed => self.resyncs_failed += 1,
        }
        self.last_resync = Some(outcome);
    }
}

/// Drives operations under a [`RetryPolicy`] with a seeded jitter
/// stream.
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use lvq_node::{NodeError, Retrier, RetryPolicy};
///
/// let policy = RetryPolicy::new(4).backoff(Duration::from_millis(1), Duration::from_millis(5));
/// let mut retrier = Retrier::new(policy, 42);
/// let mut calls = 0;
/// let out: Result<&str, NodeError> = retrier.run(|_attempt| {
///     calls += 1;
///     if calls < 3 {
///         Err(NodeError::Busy) // transient: retried with backoff
///     } else {
///         Ok("served")
///     }
/// });
/// assert_eq!(out.unwrap(), "served");
/// assert_eq!(retrier.stats().attempts, 3);
/// assert_eq!(retrier.stats().retries, 2);
/// ```
#[derive(Debug)]
pub struct Retrier {
    policy: RetryPolicy,
    rng: StdRng,
    stats: RetryStats,
}

impl Retrier {
    /// A retrier under `policy` whose jitter stream derives from
    /// `seed`.
    pub fn new(policy: RetryPolicy, seed: u64) -> Self {
        Retrier {
            policy,
            rng: StdRng::seed_from_u64(seed),
            stats: RetryStats::default(),
        }
    }

    /// The policy this retrier runs under.
    pub fn policy(&self) -> RetryPolicy {
        self.policy
    }

    /// Counters of what this retrier has done so far.
    pub fn stats(&self) -> RetryStats {
        self.stats
    }

    /// Runs `op` until it succeeds, fails fatally, or the policy is
    /// exhausted. `op` receives the 1-based attempt number.
    ///
    /// # Errors
    ///
    /// Returns the first non-retryable error immediately, or the last
    /// transient error once the attempt cap or deadline budget is
    /// spent.
    pub fn run<R, F>(&mut self, mut op: F) -> Result<R, NodeError>
    where
        F: FnMut(u32) -> Result<R, NodeError>,
    {
        self.run_ctx(|attempt, _| op(attempt))
    }

    /// Like [`Retrier::run`], but the operation also receives the live
    /// [`RetryStats`] so it can record side observations (e.g.
    /// [`RetryStats::record_resync`]) while the retrier itself is
    /// mutably borrowed by the loop.
    ///
    /// # Errors
    ///
    /// As [`Retrier::run`].
    pub fn run_ctx<R, F>(&mut self, mut op: F) -> Result<R, NodeError>
    where
        F: FnMut(u32, &mut RetryStats) -> Result<R, NodeError>,
    {
        let started = Instant::now();
        self.stats.operations += 1;
        let mut prev_sleep = self.policy.base_backoff;
        for attempt in 1..=self.policy.max_attempts {
            self.stats.attempts += 1;
            if attempt > 1 {
                self.stats.retries += 1;
            }
            let error = match op(attempt, &mut self.stats) {
                Ok(value) => return Ok(value),
                Err(e) => e,
            };
            if !error.retryable() {
                self.stats.fatal += 1;
                return Err(error);
            }
            if attempt == self.policy.max_attempts {
                self.stats.exhausted += 1;
                return Err(error);
            }
            let sleep = self.next_backoff(&mut prev_sleep);
            if let Some(deadline) = self.policy.deadline {
                if started.elapsed() + sleep >= deadline {
                    self.stats.exhausted += 1;
                    return Err(error);
                }
            }
            self.stats.backoff_total += sleep;
            if !sleep.is_zero() {
                std::thread::sleep(sleep);
            }
        }
        unreachable!("the loop returns on the final attempt");
    }

    /// One decorrelated-jitter step: `min(cap, uniform(base, prev*3))`.
    fn next_backoff(&mut self, prev: &mut Duration) -> Duration {
        let base = self.policy.base_backoff.as_micros() as u64;
        let cap = self.policy.max_backoff.as_micros() as u64;
        let hi = (prev.as_micros() as u64).saturating_mul(3).max(base);
        let drawn = if hi > base {
            self.rng.gen_range(base..=hi)
        } else {
            base
        };
        let sleep = Duration::from_micros(drawn.min(cap));
        *prev = sleep;
        sleep
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lvq_core::QueryError;

    fn fast_policy(attempts: u32) -> RetryPolicy {
        RetryPolicy::new(attempts).backoff(Duration::from_micros(10), Duration::from_micros(50))
    }

    #[test]
    fn fatal_errors_are_never_retried() {
        let mut retrier = Retrier::new(fast_policy(5), 1);
        let mut calls = 0u32;
        let out: Result<(), NodeError> = retrier.run(|_| {
            calls += 1;
            Err(NodeError::Verify(QueryError::WrongResponseKind))
        });
        assert!(matches!(out.unwrap_err(), NodeError::Verify(_)));
        assert_eq!(calls, 1, "a verification failure must not be replayed");
        assert_eq!(retrier.stats().fatal, 1);
        assert_eq!(retrier.stats().retries, 0);
    }

    #[test]
    fn transient_errors_retry_up_to_the_cap() {
        let mut retrier = Retrier::new(fast_policy(4), 2);
        let mut calls = 0u32;
        let out: Result<(), NodeError> = retrier.run(|attempt| {
            calls += 1;
            assert_eq!(attempt, calls);
            Err(NodeError::Busy)
        });
        assert_eq!(out.unwrap_err(), NodeError::Busy);
        assert_eq!(calls, 4);
        let stats = retrier.stats();
        assert_eq!(stats.attempts, 4);
        assert_eq!(stats.retries, 3);
        assert_eq!(stats.exhausted, 1);
        assert!(stats.backoff_total > Duration::ZERO);
    }

    #[test]
    fn success_after_transient_failures() {
        let mut retrier = Retrier::new(fast_policy(5), 3);
        let mut calls = 0u32;
        let out = retrier.run(|_| {
            calls += 1;
            if calls < 3 {
                Err(NodeError::Disconnected { context: "test" })
            } else {
                Ok(calls)
            }
        });
        assert_eq!(out.unwrap(), 3);
        assert_eq!(retrier.stats().exhausted, 0);
        assert_eq!(retrier.stats().fatal, 0);
    }

    #[test]
    fn backoff_schedule_is_reproducible_and_bounded() {
        let schedule = |seed: u64| {
            let mut retrier = Retrier::new(fast_policy(6), seed);
            let _: Result<(), NodeError> = retrier.run(|_| Err(NodeError::Busy));
            retrier.stats().backoff_total
        };
        assert_eq!(schedule(7), schedule(7), "same seed, same sleeps");
        // Five sleeps, each clamped to the 50µs cap.
        assert!(schedule(7) <= Duration::from_micros(5 * 50));
    }

    #[test]
    fn deadline_budget_stops_retrying() {
        // A zero budget: the first backoff would already exceed it.
        let policy = fast_policy(10).budget(Duration::ZERO);
        let mut retrier = Retrier::new(policy, 4);
        let mut calls = 0u32;
        let out: Result<(), NodeError> = retrier.run(|_| {
            calls += 1;
            Err(NodeError::Busy)
        });
        assert_eq!(out.unwrap_err(), NodeError::Busy);
        assert_eq!(calls, 1, "no budget, no retries");
        assert_eq!(retrier.stats().exhausted, 1);
    }

    #[test]
    fn single_attempt_policy_makes_transients_final() {
        let mut retrier = Retrier::new(RetryPolicy::none(), 0);
        let mut calls = 0u32;
        let out: Result<(), NodeError> = retrier.run(|_| {
            calls += 1;
            Err(NodeError::Busy)
        });
        assert!(out.is_err());
        assert_eq!(calls, 1);
    }
}
