//! The full node.

use std::cell::Cell;

use lvq_chain::{Chain, ChainCacheStats};
use lvq_codec::{decode_exact, Encodable};
use lvq_core::{Prover, ProverStats, SchemeConfig};

use crate::message::{Message, NodeError};

/// A point-in-time snapshot of a full node's query engine.
///
/// Combines the node's own request counters with the underlying chain's
/// memo-cache statistics ([`Chain::cache_stats`]), so experiment
/// harnesses can relate query throughput to cache behaviour.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryEngineStats {
    /// Single-address queries answered.
    pub queries: u64,
    /// Batched queries answered.
    pub batch_queries: u64,
    /// Total addresses across all batched queries.
    pub batch_addresses: u64,
    /// Prover statistics of the most recent successfully answered
    /// query (single or batched).
    pub last: Option<ProverStats>,
    /// Span-filter and per-block SMT cache statistics.
    pub cache: ChainCacheStats,
}

/// A full node: the complete chain plus the query-answering engine.
///
/// The byte-level entry point is [`FullNode::handle`], which a
/// [`crate::MeteredPipe`] calls with raw request bytes.
#[derive(Debug)]
pub struct FullNode {
    chain: Chain,
    config: SchemeConfig,
    /// Statistics of the most recent query, for experiment harnesses.
    last_stats: Cell<Option<ProverStats>>,
    queries: Cell<u64>,
    batch_queries: Cell<u64>,
    batch_addresses: Cell<u64>,
}

impl FullNode {
    /// Wraps a chain.
    ///
    /// # Errors
    ///
    /// Returns [`NodeError::UnknownScheme`] if the chain's commitments
    /// match none of the four schemes.
    pub fn new(chain: Chain) -> Result<Self, NodeError> {
        let config =
            SchemeConfig::from_chain_params(chain.params()).ok_or(NodeError::UnknownScheme)?;
        Ok(FullNode {
            chain,
            config,
            last_stats: Cell::new(None),
            queries: Cell::new(0),
            batch_queries: Cell::new(0),
            batch_addresses: Cell::new(0),
        })
    }

    /// The scheme this node serves.
    pub fn config(&self) -> SchemeConfig {
        self.config
    }

    /// Read access to the underlying chain (e.g. for ground-truth checks
    /// in tests).
    pub fn chain(&self) -> &Chain {
        &self.chain
    }

    /// Prover statistics of the most recent successfully answered query.
    pub fn last_stats(&self) -> Option<ProverStats> {
        self.last_stats.get()
    }

    /// Snapshot of the query engine: request counters plus chain-cache
    /// hit/miss statistics.
    pub fn engine_stats(&self) -> QueryEngineStats {
        QueryEngineStats {
            queries: self.queries.get(),
            batch_queries: self.batch_queries.get(),
            batch_addresses: self.batch_addresses.get(),
            last: self.last_stats.get(),
            cache: self.chain.cache_stats(),
        }
    }

    /// Handles one encoded request, returning the encoded response.
    ///
    /// # Errors
    ///
    /// Returns [`NodeError::Wire`] for undecodable requests,
    /// [`NodeError::UnexpectedMessage`] for response-kind messages, and
    /// [`NodeError::Prove`] if proof generation fails.
    pub fn handle(&self, request: &[u8]) -> Result<Vec<u8>, NodeError> {
        let message: Message = decode_exact(request)?;
        let reply = match message {
            Message::GetHeaders => Message::Headers(self.chain.headers()),
            Message::QueryRequest { address, range } => {
                let prover = Prover::new(&self.chain, self.config)?;
                let (response, stats) = match range {
                    None => prover.respond(&address)?,
                    Some((lo, hi)) => prover.respond_range(&address, lo, hi)?,
                };
                self.last_stats.set(Some(stats));
                self.queries.set(self.queries.get() + 1);
                Message::QueryResponse(Box::new(response))
            }
            Message::BatchQueryRequest { addresses } => {
                let prover = Prover::new(&self.chain, self.config)?;
                let (response, stats) = prover.respond_batch(&addresses)?;
                self.last_stats.set(Some(stats));
                self.batch_queries.set(self.batch_queries.get() + 1);
                self.batch_addresses
                    .set(self.batch_addresses.get() + addresses.len() as u64);
                Message::BatchQueryResponse(Box::new(response))
            }
            Message::Headers(_) | Message::QueryResponse(_) | Message::BatchQueryResponse(_) => {
                return Err(NodeError::UnexpectedMessage)
            }
        };
        Ok(reply.encode())
    }
}
