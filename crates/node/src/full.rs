//! The full node.

use std::sync::atomic::{AtomicU64, Ordering};

use lvq_chain::{
    BlockSource, Chain, ChainCacheStats, ChainError, InMemoryBlocks, InMemoryTables, TableSource,
};
use lvq_codec::Encodable;
use lvq_core::{Prover, ProverStats, SchemeConfig};
use parking_lot::Mutex;

use crate::message::{envelope, HelloInfo, Message, NodeError, WireError, WireErrorCode};

/// The in-flight cap a node grants when it answers a [`Message::Hello`]
/// itself (i.e. when not behind a [`crate::NodeServer`], whose
/// configured cap takes precedence).
pub const DEFAULT_MAX_IN_FLIGHT: u32 = 32;

/// What kind of request one handled exchange was, for the server's
/// per-message-type counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RequestKind {
    /// [`Message::GetHeaders`] — full header sync.
    GetHeaders,
    /// [`Message::GetHeadersFrom`] — incremental header sync.
    GetHeadersFrom,
    /// [`Message::QueryRequest`] — single-address query.
    Query,
    /// [`Message::BatchQueryRequest`] — batched query.
    BatchQuery,
    /// [`Message::Hello`] — v2 feature negotiation.
    Hello,
    /// Anything that never classified as a request: undecodable bytes,
    /// an unsupported version, or a response-kind message.
    Invalid,
}

/// The outcome of classifying and handling one request: the encoded
/// response to write back, what kind of request it answered, and —
/// when the response is a [`Message::Error`] — which refusal it
/// carries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Handled {
    /// What the request classified as.
    pub kind: RequestKind,
    /// The encoded response payload (a real response or an encoded
    /// [`Message::Error`]).
    pub bytes: Vec<u8>,
    /// `Some` iff `bytes` encodes a [`Message::Error`].
    pub error: Option<WireErrorCode>,
}

impl Handled {
    fn refusal(kind: RequestKind, error: WireError) -> Self {
        Handled {
            kind,
            bytes: Message::Error(error).encode(),
            error: Some(error.code),
        }
    }
}

/// A point-in-time snapshot of a full node's query engine.
///
/// Combines the node's own request counters with the underlying chain's
/// memo-cache statistics ([`Chain::cache_stats`]), so experiment
/// harnesses can relate query throughput to cache behaviour.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryEngineStats {
    /// Single-address queries answered.
    pub queries: u64,
    /// Batched queries answered.
    pub batch_queries: u64,
    /// Total addresses across all batched queries.
    pub batch_addresses: u64,
    /// Prover statistics of the most recent successfully answered
    /// query (single or batched).
    pub last: Option<ProverStats>,
    /// Span-filter and per-block SMT cache statistics.
    pub cache: ChainCacheStats,
}

/// A full node: the complete chain plus the query-answering engine.
///
/// The byte-level entry point is [`FullNode::handle`], which transports
/// ([`crate::LocalTransport`], the [`crate::NodeServer`] connection
/// threads) call with raw request bytes. `handle` takes `&self` and the
/// node is `Sync`: one `Arc<FullNode>` can serve many concurrent
/// connections, all sharing the chain's memo caches.
///
/// Generic over the chain's [`BlockSource`]: the default keeps every
/// block in memory, while a disk-backed source (the `lvq-store` crate)
/// materializes only the blocks a proof actually touches.
#[derive(Debug)]
pub struct FullNode<S: BlockSource = InMemoryBlocks, T: TableSource = InMemoryTables> {
    chain: Chain<S, T>,
    config: SchemeConfig,
    /// Statistics of the most recent query, for experiment harnesses.
    last_stats: Mutex<Option<ProverStats>>,
    queries: AtomicU64,
    batch_queries: AtomicU64,
    batch_addresses: AtomicU64,
}

impl<S: BlockSource, T: TableSource> FullNode<S, T> {
    /// Wraps a chain.
    ///
    /// # Errors
    ///
    /// Returns [`NodeError::UnknownScheme`] if the chain's commitments
    /// match none of the four schemes.
    pub fn new(chain: Chain<S, T>) -> Result<Self, NodeError> {
        let config =
            SchemeConfig::from_chain_params(chain.params()).ok_or(NodeError::UnknownScheme)?;
        Ok(FullNode {
            chain,
            config,
            last_stats: Mutex::new(None),
            queries: AtomicU64::new(0),
            batch_queries: AtomicU64::new(0),
            batch_addresses: AtomicU64::new(0),
        })
    }

    /// The scheme this node serves.
    pub fn config(&self) -> SchemeConfig {
        self.config
    }

    /// Read access to the underlying chain (e.g. for ground-truth checks
    /// in tests).
    pub fn chain(&self) -> &Chain<S, T> {
        &self.chain
    }

    /// Prover statistics of the most recent successfully answered query.
    pub fn last_stats(&self) -> Option<ProverStats> {
        *self.last_stats.lock()
    }

    /// Snapshot of the query engine: request counters plus chain-cache
    /// hit/miss statistics.
    pub fn engine_stats(&self) -> QueryEngineStats {
        QueryEngineStats {
            queries: self.queries.load(Ordering::Relaxed),
            batch_queries: self.batch_queries.load(Ordering::Relaxed),
            batch_addresses: self.batch_addresses.load(Ordering::Relaxed),
            last: *self.last_stats.lock(),
            cache: self.chain.cache_stats(),
        }
    }

    /// Absorbs up to `max` blocks the node's block source has gained
    /// since the chain was assembled (see [`Chain::extend_batch`]),
    /// returning how many were absorbed.
    ///
    /// Takes `&mut self`, so a node serving concurrent readers cannot
    /// extend in place — wrap it in a [`crate::LiveNode`], whose
    /// reader-writer discipline is exactly this method behind a write
    /// lock.
    ///
    /// # Errors
    ///
    /// Propagates [`ChainError`] from the source or from a block whose
    /// `prev_block` does not chain onto the current tip; the chain is
    /// left at the last successfully absorbed height.
    pub fn extend_batch(&mut self, max: u64) -> Result<u64, ChainError> {
        self.chain.extend_batch(max)
    }

    /// Flushes the chain's table source and anchors it at the current
    /// tip (see [`Chain::sync_derived`]). A no-op for in-memory tables.
    ///
    /// # Errors
    ///
    /// Propagates [`ChainError::Source`] on storage failure.
    pub fn sync_derived(&self) -> Result<(), ChainError> {
        self.chain.sync_derived()
    }

    /// Switches the node's chain to a competing branch (see
    /// [`Chain::reorg_to`]): rewinds every derived structure to
    /// `fork_height` and replays `branch`, returning the new tip.
    ///
    /// Takes `&mut self` like [`FullNode::extend_batch`]; a serving
    /// node reorgs through [`crate::LiveNode::reorg_to`], which runs
    /// this under the write lock so no proof straddles the switch.
    ///
    /// # Errors
    ///
    /// As [`Chain::reorg_to`]; on a replay failure the chain is left
    /// mid-branch (source ahead of derived), which the normal extend
    /// path absorbs.
    pub fn reorg_to(
        &mut self,
        fork_height: u64,
        branch: &[std::sync::Arc<lvq_chain::Block>],
    ) -> Result<u64, ChainError> {
        self.chain.reorg_to(fork_height, branch)
    }

    /// Classifies and handles one encoded request, speaking both wire
    /// versions.
    ///
    /// A v2 payload (see [`envelope`]) is unwrapped, handled exactly
    /// like its v1 equivalent, and the response is re-enveloped under
    /// the request's id — so an in-process [`crate::LocalTransport`]
    /// serves pipelined clients with the same bytes a TCP server would.
    /// A [`Message::Hello`] is answered with a [`Message::HelloAck`]
    /// granting at most [`DEFAULT_MAX_IN_FLIGHT`].
    ///
    /// Never fails: every fault — undecodable bytes, an unsupported
    /// protocol version, a response-kind message, a prover refusal —
    /// becomes an encoded [`Message::Error`] response, so a server can
    /// answer the client and keep the connection alive instead of
    /// dropping it. The [`Handled::kind`] and [`Handled::error`] fields
    /// feed the server's per-type and error counters.
    pub fn handle_classified(&self, request: &[u8]) -> Handled {
        match envelope::unwrap_v2(request) {
            Some((id, v1)) => {
                let handled = self.handle_v1(&v1);
                Handled {
                    kind: handled.kind,
                    bytes: envelope::wrap_v2(&handled.bytes, id),
                    error: handled.error,
                }
            }
            // Not v2 (or a truncated v2 head): the v1-strict classifier
            // produces the right structured refusal either way.
            None => self.handle_v1(request),
        }
    }

    fn handle_v1(&self, request: &[u8]) -> Handled {
        let message = match Message::decode_classified(request) {
            Ok(m) => m,
            Err(e) => return Handled::refusal(RequestKind::Invalid, e),
        };
        let (kind, reply) = match message {
            Message::GetHeaders => (
                RequestKind::GetHeaders,
                Message::Headers(self.chain.headers()),
            ),
            Message::GetHeadersFrom { height, tip_hash } => {
                let tip = self.chain.tip_height();
                let reply = if height > tip {
                    // This node cannot judge agreement above its own
                    // tip — it is simply behind the client.
                    Message::PeerBehind { tip_height: tip }
                } else if self.chain.hash_at(height) != Ok(tip_hash) {
                    // The client's pinned header is not this chain's:
                    // the fork point lies strictly below the probe.
                    Message::HeadersDiverged {
                        fork_height: height,
                    }
                } else {
                    let mut headers = self.chain.headers();
                    headers.drain(..height as usize);
                    Message::Headers(headers)
                };
                (RequestKind::GetHeadersFrom, reply)
            }
            Message::QueryRequest { address, range } => {
                let outcome =
                    Prover::new(&self.chain, self.config).and_then(|prover| match range {
                        None => prover.respond(&address),
                        Some((lo, hi)) => prover.respond_range(&address, lo, hi),
                    });
                match outcome {
                    Ok((response, stats)) => {
                        *self.last_stats.lock() = Some(stats);
                        self.queries.fetch_add(1, Ordering::Relaxed);
                        (
                            RequestKind::Query,
                            Message::QueryResponse(Box::new(response)),
                        )
                    }
                    Err(_) => {
                        return Handled::refusal(
                            RequestKind::Query,
                            WireError::new(WireErrorCode::Unanswerable),
                        )
                    }
                }
            }
            Message::BatchQueryRequest { addresses, range } => {
                let outcome =
                    Prover::new(&self.chain, self.config).and_then(|prover| match range {
                        None => prover.respond_batch(&addresses),
                        Some((lo, hi)) => prover.respond_batch_range(&addresses, lo, hi),
                    });
                match outcome {
                    Ok((response, stats)) => {
                        *self.last_stats.lock() = Some(stats);
                        self.batch_queries.fetch_add(1, Ordering::Relaxed);
                        self.batch_addresses
                            .fetch_add(addresses.len() as u64, Ordering::Relaxed);
                        (
                            RequestKind::BatchQuery,
                            Message::BatchQueryResponse(Box::new(response)),
                        )
                    }
                    Err(_) => {
                        return Handled::refusal(
                            RequestKind::BatchQuery,
                            WireError::new(WireErrorCode::Unanswerable),
                        )
                    }
                }
            }
            Message::Hello(hello) => (
                RequestKind::Hello,
                Message::HelloAck(HelloInfo {
                    max_in_flight: hello.max_in_flight.clamp(1, DEFAULT_MAX_IN_FLIGHT),
                    features: 0,
                }),
            ),
            Message::Headers(_)
            | Message::QueryResponse(_)
            | Message::BatchQueryResponse(_)
            | Message::Busy
            | Message::Error(_)
            | Message::HelloAck(_)
            | Message::HeadersDiverged { .. }
            | Message::PeerBehind { .. } => {
                return Handled::refusal(
                    RequestKind::Invalid,
                    WireError::new(WireErrorCode::UnexpectedKind),
                )
            }
        };
        Handled {
            kind,
            bytes: reply.encode(),
            error: None,
        }
    }

    /// Handles one encoded request, returning the encoded response.
    ///
    /// Thin compatibility wrapper around [`FullNode::handle_classified`]:
    /// faults come back as an encoded [`Message::Error`] payload in
    /// `Ok`, exactly the bytes a [`crate::NodeServer`] would put on the
    /// wire, so in-process and TCP transports observe identical
    /// responses.
    ///
    /// # Errors
    ///
    /// Currently infallible; the `Result` is kept for the
    /// [`crate::QueryPeer`] contract.
    pub fn handle(&self, request: &[u8]) -> Result<Vec<u8>, NodeError> {
        Ok(self.handle_classified(request).bytes)
    }
}
