//! The full node.

use lvq_chain::Chain;
use lvq_codec::{decode_exact, Encodable};
use lvq_core::{Prover, ProverStats, SchemeConfig};

use crate::message::{Message, NodeError};

/// A full node: the complete chain plus the query-answering engine.
///
/// The byte-level entry point is [`FullNode::handle`], which a
/// [`crate::MeteredPipe`] calls with raw request bytes.
#[derive(Debug)]
pub struct FullNode {
    chain: Chain,
    config: SchemeConfig,
    /// Statistics of the most recent query, for experiment harnesses.
    last_stats: std::cell::Cell<Option<ProverStats>>,
}

impl FullNode {
    /// Wraps a chain.
    ///
    /// # Errors
    ///
    /// Returns [`NodeError::UnknownScheme`] if the chain's commitments
    /// match none of the four schemes.
    pub fn new(chain: Chain) -> Result<Self, NodeError> {
        let config = SchemeConfig::from_chain_params(chain.params())
            .ok_or(NodeError::UnknownScheme)?;
        Ok(FullNode {
            chain,
            config,
            last_stats: std::cell::Cell::new(None),
        })
    }

    /// The scheme this node serves.
    pub fn config(&self) -> SchemeConfig {
        self.config
    }

    /// Read access to the underlying chain (e.g. for ground-truth checks
    /// in tests).
    pub fn chain(&self) -> &Chain {
        &self.chain
    }

    /// Prover statistics of the most recent successfully answered query.
    pub fn last_stats(&self) -> Option<ProverStats> {
        self.last_stats.get()
    }

    /// Handles one encoded request, returning the encoded response.
    ///
    /// # Errors
    ///
    /// Returns [`NodeError::Wire`] for undecodable requests,
    /// [`NodeError::UnexpectedMessage`] for response-kind messages, and
    /// [`NodeError::Prove`] if proof generation fails.
    pub fn handle(&self, request: &[u8]) -> Result<Vec<u8>, NodeError> {
        let message: Message = decode_exact(request)?;
        let reply = match message {
            Message::GetHeaders => Message::Headers(self.chain.headers()),
            Message::QueryRequest { address, range } => {
                let prover = Prover::new(&self.chain, self.config)?;
                let (response, stats) = match range {
                    None => prover.respond(&address)?,
                    Some((lo, hi)) => prover.respond_range(&address, lo, hi)?,
                };
                self.last_stats.set(Some(stats));
                Message::QueryResponse(Box::new(response))
            }
            Message::Headers(_) | Message::QueryResponse(_) => {
                return Err(NodeError::UnexpectedMessage)
            }
        };
        Ok(reply.encode())
    }
}
