//! The full node.

use std::sync::atomic::{AtomicU64, Ordering};

use lvq_chain::{Chain, ChainCacheStats};
use lvq_codec::{decode_exact, Encodable};
use lvq_core::{Prover, ProverStats, SchemeConfig};
use parking_lot::Mutex;

use crate::message::{Message, NodeError};

/// A point-in-time snapshot of a full node's query engine.
///
/// Combines the node's own request counters with the underlying chain's
/// memo-cache statistics ([`Chain::cache_stats`]), so experiment
/// harnesses can relate query throughput to cache behaviour.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryEngineStats {
    /// Single-address queries answered.
    pub queries: u64,
    /// Batched queries answered.
    pub batch_queries: u64,
    /// Total addresses across all batched queries.
    pub batch_addresses: u64,
    /// Prover statistics of the most recent successfully answered
    /// query (single or batched).
    pub last: Option<ProverStats>,
    /// Span-filter and per-block SMT cache statistics.
    pub cache: ChainCacheStats,
}

/// A full node: the complete chain plus the query-answering engine.
///
/// The byte-level entry point is [`FullNode::handle`], which transports
/// ([`crate::LocalTransport`], the [`crate::NodeServer`] connection
/// threads) call with raw request bytes. `handle` takes `&self` and the
/// node is `Sync`: one `Arc<FullNode>` can serve many concurrent
/// connections, all sharing the chain's memo caches.
#[derive(Debug)]
pub struct FullNode {
    chain: Chain,
    config: SchemeConfig,
    /// Statistics of the most recent query, for experiment harnesses.
    last_stats: Mutex<Option<ProverStats>>,
    queries: AtomicU64,
    batch_queries: AtomicU64,
    batch_addresses: AtomicU64,
}

impl FullNode {
    /// Wraps a chain.
    ///
    /// # Errors
    ///
    /// Returns [`NodeError::UnknownScheme`] if the chain's commitments
    /// match none of the four schemes.
    pub fn new(chain: Chain) -> Result<Self, NodeError> {
        let config =
            SchemeConfig::from_chain_params(chain.params()).ok_or(NodeError::UnknownScheme)?;
        Ok(FullNode {
            chain,
            config,
            last_stats: Mutex::new(None),
            queries: AtomicU64::new(0),
            batch_queries: AtomicU64::new(0),
            batch_addresses: AtomicU64::new(0),
        })
    }

    /// The scheme this node serves.
    pub fn config(&self) -> SchemeConfig {
        self.config
    }

    /// Read access to the underlying chain (e.g. for ground-truth checks
    /// in tests).
    pub fn chain(&self) -> &Chain {
        &self.chain
    }

    /// Prover statistics of the most recent successfully answered query.
    pub fn last_stats(&self) -> Option<ProverStats> {
        *self.last_stats.lock()
    }

    /// Snapshot of the query engine: request counters plus chain-cache
    /// hit/miss statistics.
    pub fn engine_stats(&self) -> QueryEngineStats {
        QueryEngineStats {
            queries: self.queries.load(Ordering::Relaxed),
            batch_queries: self.batch_queries.load(Ordering::Relaxed),
            batch_addresses: self.batch_addresses.load(Ordering::Relaxed),
            last: *self.last_stats.lock(),
            cache: self.chain.cache_stats(),
        }
    }

    /// Handles one encoded request, returning the encoded response.
    ///
    /// # Errors
    ///
    /// Returns [`NodeError::Wire`] for undecodable requests,
    /// [`NodeError::UnexpectedMessage`] for response-kind messages, and
    /// [`NodeError::Prove`] if proof generation fails.
    pub fn handle(&self, request: &[u8]) -> Result<Vec<u8>, NodeError> {
        let message: Message = decode_exact(request)?;
        let reply = match message {
            Message::GetHeaders => Message::Headers(self.chain.headers()),
            Message::QueryRequest { address, range } => {
                let prover = Prover::new(&self.chain, self.config)?;
                let (response, stats) = match range {
                    None => prover.respond(&address)?,
                    Some((lo, hi)) => prover.respond_range(&address, lo, hi)?,
                };
                *self.last_stats.lock() = Some(stats);
                self.queries.fetch_add(1, Ordering::Relaxed);
                Message::QueryResponse(Box::new(response))
            }
            Message::BatchQueryRequest { addresses, range } => {
                let prover = Prover::new(&self.chain, self.config)?;
                let (response, stats) = match range {
                    None => prover.respond_batch(&addresses)?,
                    Some((lo, hi)) => prover.respond_batch_range(&addresses, lo, hi)?,
                };
                *self.last_stats.lock() = Some(stats);
                self.batch_queries.fetch_add(1, Ordering::Relaxed);
                self.batch_addresses
                    .fetch_add(addresses.len() as u64, Ordering::Relaxed);
                Message::BatchQueryResponse(Box::new(response))
            }
            Message::Headers(_) | Message::QueryResponse(_) | Message::BatchQueryResponse(_) => {
                return Err(NodeError::UnexpectedMessage)
            }
        };
        Ok(reply.encode())
    }
}
