//! The light node.

use lvq_chain::{Address, BlockHeader};
use lvq_codec::{decode_exact, Encodable};
use lvq_core::{LightClient, SchemeConfig, VerifiedHistory};

use std::collections::HashMap;

use crate::message::{Message, NodeError};
use crate::pipe::Traffic;
use crate::pipelined::{PipelinedTransport, ReqId};
use crate::retry::ResyncOutcome;
use crate::transport::Transport;

/// A declarative description of one verifiable query: which addresses,
/// over which block-height range.
///
/// `QuerySpec` is the single query entry point: build a spec, hand it
/// to [`LightNode::run`] (blocking) or [`LightNode::run_pipelined`]
/// (several specs in flight at once). A single-address spec goes on
/// the wire as [`Message::QueryRequest`] and a multi-address spec as
/// [`Message::BatchQueryRequest`].
///
/// # Examples
///
/// ```
/// use lvq_chain::Address;
/// use lvq_node::QuerySpec;
///
/// let single = QuerySpec::address(Address::new("1Shop"));
/// let windowed = QuerySpec::address(Address::new("1Shop")).range(3, 7);
/// let batch = QuerySpec::addresses(vec![Address::new("1Shop"), Address::new("1Miner")]);
/// assert!(!single.is_batch());
/// assert!(batch.is_batch());
/// assert_eq!(windowed.height_range(), Some((3, 7)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuerySpec {
    targets: Vec<Address>,
    batch: bool,
    range: Option<(u64, u64)>,
}

impl QuerySpec {
    /// A query for the full history of one address.
    pub fn address(address: Address) -> Self {
        QuerySpec {
            targets: vec![address],
            batch: false,
            range: None,
        }
    }

    /// A batched query for the histories of several addresses in one
    /// round trip (must be non-empty; the prover rejects an empty
    /// batch).
    ///
    /// A one-element batch is still a batch on the wire — use
    /// [`QuerySpec::address`] for the single-address message shape.
    pub fn addresses(addresses: impl Into<Vec<Address>>) -> Self {
        QuerySpec {
            targets: addresses.into(),
            batch: true,
            range: None,
        }
    }

    /// Restricts the query to blocks `lo..=hi` (verification rejects
    /// ranges outside `1..=tip`).
    #[must_use]
    pub fn range(mut self, lo: u64, hi: u64) -> Self {
        self.range = Some((lo, hi));
        self
    }

    /// The queried addresses, in response-section order.
    pub fn targets(&self) -> &[Address] {
        &self.targets
    }

    /// Whether this spec goes on the wire as a batched request.
    pub fn is_batch(&self) -> bool {
        self.batch
    }

    /// The block-height restriction, if any.
    pub fn height_range(&self) -> Option<(u64, u64)> {
        self.range
    }

    /// The request message this spec encodes to.
    pub(crate) fn to_message(&self) -> Message {
        if self.batch {
            Message::BatchQueryRequest {
                addresses: self.targets.clone(),
                range: self.range,
            }
        } else {
            Message::QueryRequest {
                address: self.targets[0].clone(),
                range: self.range,
            }
        }
    }
}

/// What one [`LightNode::run`] produced: one verified history per
/// queried address, plus the bytes that crossed the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryRun {
    /// One verified history per [`QuerySpec`] target, in spec order.
    pub histories: Vec<VerifiedHistory>,
    /// Bytes that crossed the wire for this run.
    pub traffic: Traffic,
}

impl QueryRun {
    /// The only history of a single-address run.
    ///
    /// # Panics
    ///
    /// Panics if the run answered a multi-address spec.
    pub fn into_single(mut self) -> VerifiedHistory {
        assert_eq!(
            self.histories.len(),
            1,
            "into_single on a {}-address run",
            self.histories.len()
        );
        self.histories.pop().expect("length checked above")
    }
}

/// A light node: headers only, plus the verification engine.
///
/// Every networked operation takes a [`Transport`] — the same light
/// node can query an in-process [`crate::LocalTransport`] or a remote
/// [`crate::TcpTransport`] interchangeably, and the byte accounting is
/// identical either way.
///
/// # Examples
///
/// See the [crate-level example](crate).
#[derive(Debug)]
pub struct LightNode {
    client: LightClient,
    cumulative: Traffic,
    exchanges: u64,
    max_reorg_depth: u64,
}

impl LightNode {
    /// Creates a light node from a configuration and headers obtained
    /// out of band.
    pub fn new(config: SchemeConfig, headers: Vec<lvq_chain::BlockHeader>) -> Self {
        LightNode {
            client: LightClient::new(config, headers),
            cumulative: Traffic::default(),
            exchanges: 0,
            max_reorg_depth: 0,
        }
    }

    /// Sets how many headers below its tip this node is willing to
    /// discard when [`LightNode::sync_new`] finds the peer on a
    /// different fork. The default of 0 never rolls back: any
    /// divergence is refused with [`NodeError::ReorgTooDeep`].
    #[must_use]
    pub fn with_max_reorg_depth(mut self, depth: u64) -> Self {
        self.max_reorg_depth = depth;
        self
    }

    /// The reorg budget set by [`LightNode::with_max_reorg_depth`].
    pub fn max_reorg_depth(&self) -> u64 {
        self.max_reorg_depth
    }

    /// Bootstraps a light node by downloading headers over `transport`
    /// (initial block download, headers only).
    ///
    /// `config` is the light node's **out-of-band trust anchor** — the
    /// scheme, Bloom parameters, and segment length it obtained when
    /// the network was set up, never from the peer it is syncing from.
    /// (Trusting the peer's advertised configuration would let a
    /// malicious full node substitute a weaker scheme — e.g. one whose
    /// headers carry no SMT commitment — and then "prove" histories
    /// that omit transactions.) The downloaded headers are checked to
    /// carry exactly the commitments `config`'s scheme requires.
    ///
    /// # Errors
    ///
    /// Returns a [`NodeError`] if the exchange fails or the reply is
    /// not a header list, and [`NodeError::ConfigMismatch`] if any
    /// header's commitments do not match `config`'s policy.
    pub fn sync_from<T: Transport + ?Sized>(
        transport: &mut T,
        config: SchemeConfig,
    ) -> Result<Self, NodeError> {
        let request = Message::GetHeaders.encode();
        let (reply, traffic) = transport.exchange(&request)?;
        let Message::Headers(headers) = Self::decode_reply(&reply)? else {
            return Err(NodeError::UnexpectedMessage);
        };
        // The served headers must carry exactly the commitments the
        // trusted configuration's scheme requires.
        Self::check_commitment_policy(&headers, 0, config)?;
        let client = LightClient::new(config, headers);
        // SPV sanity: the downloaded headers must form a hash chain.
        client.validate_header_chain()?;
        Ok(LightNode {
            client,
            cumulative: traffic,
            exchanges: 1,
            max_reorg_depth: 0,
        })
    }

    /// The verification engine (e.g. to inspect
    /// [`LightClient::storage_bytes`]).
    pub fn client(&self) -> &LightClient {
        &self.client
    }

    /// Cumulative traffic across all exchanges this node performed
    /// (including its initial header sync), on any transport.
    pub fn cumulative_traffic(&self) -> Traffic {
        self.cumulative
    }

    /// Number of request/response exchanges this node performed.
    pub fn exchanges(&self) -> u64 {
        self.exchanges
    }

    /// Fetches the headers above this node's current tip via
    /// [`Message::GetHeadersFrom`] and appends them — the incremental
    /// sync a long-lived client uses instead of a full re-download.
    ///
    /// Each probe pins the client's own header hash, so a peer whose
    /// chain diverged (a reorg happened, or the peer sits on a fork)
    /// answers [`Message::HeadersDiverged`] instead of a tail that
    /// would graft onto the wrong prefix. The client then walks its
    /// probe downward, at most [`LightNode::max_reorg_depth`] headers
    /// below its tip, until the chains agree; it rolls back to the
    /// agreement height and adopts the peer's replacement headers,
    /// reporting [`ResyncOutcome::Diverged`]. Any proof previously
    /// verified against a discarded header was a proof against an
    /// orphaned block — the caller must re-query.
    ///
    /// # Errors
    ///
    /// As [`LightNode::sync_from`] (transport failures, a wrong reply
    /// kind, [`NodeError::ConfigMismatch`], [`NodeError::Verify`] on a
    /// non-chaining tail), plus [`NodeError::ReorgTooDeep`] when the
    /// peer still diverges at the bottom of the reorg budget.
    pub fn sync_new<T: Transport + ?Sized>(
        &mut self,
        transport: &mut T,
    ) -> Result<ResyncOutcome, NodeError> {
        let tip = self.client.tip_height();
        let floor = tip.saturating_sub(self.max_reorg_depth);
        let mut probe = tip;
        loop {
            let anchor = self.client.hash_at(probe).expect("probe is at most tip");
            let request = Message::GetHeadersFrom {
                height: probe,
                tip_hash: anchor,
            }
            .encode();
            let (reply, _) = self.metered_exchange(transport, &request)?;
            match Self::decode_reply(&reply)? {
                Message::Headers(new_headers) => {
                    Self::check_commitment_policy(&new_headers, probe, self.client.config())?;
                    // Validate the tail's linkage onto the agreed
                    // header *before* discarding anything, so a bad
                    // tail leaves this client untouched.
                    let mut prev = anchor;
                    for (i, header) in new_headers.iter().enumerate() {
                        if header.prev_block != prev {
                            return Err(NodeError::Verify(
                                lvq_core::QueryError::BrokenHeaderChain {
                                    height: probe + i as u64 + 1,
                                },
                            ));
                        }
                        prev = header.block_hash();
                    }
                    let count = new_headers.len() as u64;
                    if probe == tip {
                        self.client.append_headers(new_headers)?;
                        return Ok(if count == 0 {
                            ResyncOutcome::PeerBehind
                        } else {
                            ResyncOutcome::Synced(count)
                        });
                    }
                    if count == 0 {
                        // The peer agreed at the probe but serves
                        // nothing above it (its chain moved between
                        // probes); keep our longer chain.
                        return Ok(ResyncOutcome::PeerBehind);
                    }
                    self.client.rollback_to(probe);
                    self.client.append_headers(new_headers)?;
                    return Ok(ResyncOutcome::Diverged { fork_height: probe });
                }
                Message::PeerBehind { .. } => return Ok(ResyncOutcome::PeerBehind),
                Message::HeadersDiverged { .. } => {
                    if probe == floor {
                        return Err(NodeError::ReorgTooDeep {
                            floor,
                            max_depth: self.max_reorg_depth,
                        });
                    }
                    probe -= 1;
                }
                _ => return Err(NodeError::UnexpectedMessage),
            }
        }
    }

    /// Runs one query described by `spec` and verifies the response.
    ///
    /// This is the single query entry point: a single-address spec
    /// ([`QuerySpec::address`]) exchanges a [`Message::QueryRequest`],
    /// a batched spec ([`QuerySpec::addresses`]) a
    /// [`Message::BatchQueryRequest`].
    ///
    /// # Errors
    ///
    /// Returns [`NodeError::Verify`] if the response fails verification
    /// — the caller should treat the full node as faulty or malicious;
    /// [`NodeError::Busy`] / [`NodeError::Server`] if the peer shed or
    /// refused the request; and other [`NodeError`] variants for
    /// transport-level problems. An empty batch spec and ranges outside
    /// `1..=tip` are rejected.
    pub fn run<T: Transport + ?Sized>(
        &mut self,
        spec: &QuerySpec,
        transport: &mut T,
    ) -> Result<QueryRun, NodeError> {
        let request = spec.to_message().encode();
        let (reply, traffic) = self.metered_exchange(transport, &request)?;
        let histories = self.verify_reply(spec, &reply)?;
        Ok(QueryRun { histories, traffic })
    }

    /// Runs several queries over a [`PipelinedTransport`], keeping up
    /// to the transport's negotiated window in flight at once.
    ///
    /// The requests are the same bytes [`LightNode::run`] would send
    /// one at a time; responses are matched back by request id, so the
    /// server may answer them in any order — a slow proof on one spec
    /// does not stall verification of the others. The returned runs
    /// are in `specs` order regardless of arrival order.
    ///
    /// # Errors
    ///
    /// As [`LightNode::run`], for whichever spec fails first (by
    /// arrival). On error the remaining in-flight requests are
    /// abandoned: the connection state is unknown and the transport
    /// should be dropped.
    pub fn run_pipelined<P: PipelinedTransport + ?Sized>(
        &mut self,
        specs: &[QuerySpec],
        transport: &mut P,
    ) -> Result<Vec<QueryRun>, NodeError> {
        let window = (transport.max_in_flight().max(1) as usize)
            .saturating_sub(transport.in_flight())
            .max(1);
        let mut runs: Vec<Option<QueryRun>> = specs.iter().map(|_| None).collect();
        let mut by_id: HashMap<ReqId, usize> = HashMap::new();
        let mut next = 0;
        let mut done = 0;
        while done < specs.len() {
            while next < specs.len() && by_id.len() < window {
                let id = transport.submit(&specs[next].to_message().encode())?;
                by_id.insert(id, next);
                next += 1;
            }
            let (id, reply, traffic) = transport.recv()?;
            self.cumulative.request_bytes += traffic.request_bytes;
            self.cumulative.response_bytes += traffic.response_bytes;
            self.exchanges += 1;
            let index = by_id
                .remove(&id)
                .ok_or(NodeError::UnknownRequestId { id })?;
            let histories = self.verify_reply(&specs[index], &reply)?;
            runs[index] = Some(QueryRun { histories, traffic });
            done += 1;
        }
        Ok(runs
            .into_iter()
            .map(|run| run.expect("every spec was answered"))
            .collect())
    }

    /// Decodes and verifies one reply against the spec that requested
    /// it — the shared back half of [`LightNode::run`] and
    /// [`LightNode::run_pipelined`].
    fn verify_reply(
        &self,
        spec: &QuerySpec,
        reply: &[u8],
    ) -> Result<Vec<VerifiedHistory>, NodeError> {
        let range = spec.height_range();
        match (Self::decode_reply(reply)?, spec.is_batch()) {
            (Message::QueryResponse(response), false) => {
                let address = &spec.targets()[0];
                Ok(vec![match range {
                    None => self.client.verify(address, &response)?,
                    Some((lo, hi)) => self.client.verify_range(address, lo, hi, &response)?,
                }])
            }
            (Message::BatchQueryResponse(response), true) => Ok(match range {
                None => self.client.verify_batch(spec.targets(), &response)?,
                Some((lo, hi)) => {
                    self.client
                        .verify_batch_range(spec.targets(), lo, hi, &response)?
                }
            }),
            _ => Err(NodeError::UnexpectedMessage),
        }
    }

    /// Runs one query under a retry policy: transient failures (a shed
    /// [`NodeError::Busy`], a dropped connection, a timeout, a server
    /// deadline miss) are retried with the retrier's seeded backoff;
    /// fatal errors — above all verification failures — are returned
    /// immediately and never replayed against the same peer.
    ///
    /// Replaying is sound because every request this node sends is a
    /// pure read; see [`NodeError::retryable`] for the full taxonomy.
    /// After a connection-shaped transient (disconnect, timeout, I/O)
    /// the node re-checks the peer's tip with [`LightNode::sync_new`]
    /// before retrying, so a peer that restarted with a longer chain
    /// still produces proofs this node can verify. Each re-check's
    /// typed outcome ([`crate::ResyncOutcome`]: synced N headers,
    /// peer-behind, or failed) is recorded in the retrier's
    /// [`crate::RetryStats`] — a failed re-check never fails the
    /// operation on its own, but it is no longer silent either.
    ///
    /// # Errors
    ///
    /// As [`LightNode::run`], except that a transient error surfaces
    /// only once the retrier's attempt cap or deadline budget is spent.
    pub fn run_with_retry<T: Transport + ?Sized>(
        &mut self,
        spec: &QuerySpec,
        transport: &mut T,
        retrier: &mut crate::retry::Retrier,
    ) -> Result<QueryRun, NodeError> {
        let mut resync = false;
        retrier.run_ctx(|_attempt, stats| {
            if std::mem::take(&mut resync) {
                stats.record_resync(match self.sync_new(transport) {
                    Ok(outcome) => outcome,
                    Err(_) => ResyncOutcome::Failed,
                });
            }
            let outcome = self.run(spec, transport);
            if matches!(
                outcome,
                Err(NodeError::Disconnected { .. })
                    | Err(NodeError::Timeout { .. })
                    | Err(NodeError::Io { .. })
            ) {
                resync = true;
            }
            outcome
        })
    }

    /// Decodes a reply, surfacing the server's flow-control and refusal
    /// messages as the matching [`NodeError`]s.
    fn decode_reply(reply: &[u8]) -> Result<Message, NodeError> {
        match decode_exact::<Message>(reply)? {
            Message::Busy => Err(NodeError::Busy),
            Message::Error(e) => Err(NodeError::Server(e)),
            message => Ok(message),
        }
    }

    /// Checks that `headers` (starting at chain height `offset + 1`)
    /// carry exactly the commitments the trusted configuration's scheme
    /// requires.
    fn check_commitment_policy(
        headers: &[BlockHeader],
        offset: u64,
        config: SchemeConfig,
    ) -> Result<(), NodeError> {
        let policy = config.scheme().policy();
        for (i, header) in headers.iter().enumerate() {
            let c = &header.commitments;
            if c.bf_hash.is_some() != policy.bf_hash
                || c.bmt_root.is_some() != policy.bmt
                || c.smt_commitment.is_some() != policy.smt
            {
                return Err(NodeError::ConfigMismatch {
                    height: offset + i as u64 + 1,
                });
            }
        }
        Ok(())
    }

    /// One exchange, folded into this node's cumulative accounting.
    fn metered_exchange<T: Transport + ?Sized>(
        &mut self,
        transport: &mut T,
        request: &[u8],
    ) -> Result<(Vec<u8>, Traffic), NodeError> {
        let (reply, traffic) = transport.exchange(request)?;
        self.cumulative.request_bytes += traffic.request_bytes;
        self.cumulative.response_bytes += traffic.response_bytes;
        self.exchanges += 1;
        Ok((reply, traffic))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::full::{FullNode, RequestKind};
    use crate::message::{envelope, WireError, WireErrorCode};
    use crate::transport::LocalTransport;
    use lvq_bloom::BloomParams;
    use lvq_chain::{ChainBuilder, Transaction, TxInput, TxOutPoint, TxOutput};
    use lvq_core::{Completeness, Scheme};
    use lvq_crypto::Hash256;

    fn transfer(from: &str, to: &str, value: u64, salt: u32) -> Transaction {
        Transaction {
            version: 1,
            inputs: vec![TxInput {
                prev_out: TxOutPoint {
                    txid: Hash256::hash(&salt.to_le_bytes()),
                    vout: 0,
                },
                address: Address::new(from),
                value,
            }],
            outputs: vec![TxOutput {
                address: Address::new(to),
                value,
            }],
            lock_time: 0,
        }
    }

    fn config_for(scheme: Scheme) -> SchemeConfig {
        SchemeConfig::new(scheme, BloomParams::new(64, 2).unwrap(), 8).unwrap()
    }

    fn full_node(scheme: Scheme, blocks: u64) -> FullNode {
        let config = config_for(scheme);
        let mut builder = ChainBuilder::new(config.chain_params()).unwrap();
        for h in 1..=blocks {
            let mut txs = vec![Transaction::coinbase(Address::new("1Miner"), 50, h as u32)];
            if h % 2 == 0 {
                txs.push(transfer("1Payer", "1Shop", h, h as u32));
            }
            builder.push_block(txs).unwrap();
        }
        FullNode::new(builder.finish()).unwrap()
    }

    fn query<T: Transport + ?Sized>(
        light: &mut LightNode,
        peer: &mut T,
        name: &str,
    ) -> Result<QueryRun, NodeError> {
        light.run(&QuerySpec::address(Address::new(name)), peer)
    }

    #[test]
    fn end_to_end_all_schemes() {
        for scheme in Scheme::ALL {
            let full = full_node(scheme, 10);
            let mut peer = LocalTransport::new(&full);
            let mut light = LightNode::sync_from(&mut peer, config_for(scheme)).unwrap();
            let run = query(&mut light, &mut peer, "1Shop").unwrap();
            let history = &run.histories[0];
            assert_eq!(
                history.transactions.len(),
                5,
                "scheme {scheme}: heights 2,4,6,8,10"
            );
            assert_eq!(history.balance.net(), (2 + 4 + 6 + 8 + 10) as i128);
            assert!(run.traffic.response_bytes > 0);
            let expected = if scheme == Scheme::Strawman {
                Completeness::CorrectnessOnly
            } else {
                Completeness::Complete
            };
            assert_eq!(history.completeness, expected, "scheme {scheme}");
        }
    }

    #[test]
    fn absent_address_yields_empty_complete_history() {
        for scheme in Scheme::ALL {
            let full = full_node(scheme, 10);
            let mut peer = LocalTransport::new(&full);
            let mut light = LightNode::sync_from(&mut peer, config_for(scheme)).unwrap();
            let history = query(&mut light, &mut peer, "1Ghost")
                .unwrap()
                .into_single();
            assert!(history.transactions.is_empty(), "scheme {scheme}");
            assert_eq!(history.balance.net(), 0);
        }
    }

    #[test]
    fn traffic_accumulates_across_queries_and_transports() {
        let full = full_node(Scheme::Lvq, 8);
        let mut peer = LocalTransport::new(&full);
        let mut light = LightNode::sync_from(&mut peer, config_for(Scheme::Lvq)).unwrap();
        let t0 = light.cumulative_traffic();
        assert!(t0.response_bytes > 0, "header sync is metered");
        query(&mut light, &mut peer, "1Shop").unwrap();
        // A second transport to the same node: the light node's own
        // accounting spans transports.
        let mut other = LocalTransport::new(&full);
        query(&mut light, &mut other, "1Miner").unwrap();
        let t1 = light.cumulative_traffic();
        assert!(t1.total() > t0.total());
        assert_eq!(light.exchanges(), 3);
        // And the per-transport view splits the same totals.
        assert_eq!(
            peer.cumulative_traffic().total() + other.cumulative_traffic().total(),
            t1.total()
        );
    }

    #[test]
    fn light_node_stores_headers_only() {
        let full = full_node(Scheme::Lvq, 8);
        let mut peer = LocalTransport::new(&full);
        let light = LightNode::sync_from(&mut peer, config_for(Scheme::Lvq)).unwrap();
        // The light node stores exactly the header bytes the chain's
        // own headers occupy — derived, not hard-coded, so changes to
        // the header layout don't silently break this test.
        let expected: u64 = full
            .chain()
            .headers()
            .iter()
            .map(|h| h.storage_len() as u64)
            .sum();
        assert_eq!(light.client().storage_bytes(), expected);
        // And that is much less than storing the blocks themselves.
        let chain_bytes: u64 = (1..=8)
            .map(|h| full.chain().block(h).unwrap().encoded_len() as u64)
            .sum();
        assert!(light.client().storage_bytes() < chain_bytes);
    }

    #[test]
    fn range_queries_verify_per_scheme() {
        for scheme in Scheme::ALL {
            let full = full_node(scheme, 10);
            let mut peer = LocalTransport::new(&full);
            let mut light = LightNode::sync_from(&mut peer, config_for(scheme)).unwrap();
            // "1Shop" receives in blocks 2,4,6,8,10; range 3..=7 covers 4,6.
            let run = light
                .run(
                    &QuerySpec::address(Address::new("1Shop")).range(3, 7),
                    &mut peer,
                )
                .unwrap();
            let heights: Vec<u64> = run.histories[0]
                .transactions
                .iter()
                .map(|(h, _)| *h)
                .collect();
            assert_eq!(heights, vec![4, 6], "scheme {scheme}");
            // A range query moves fewer bytes than the full query.
            let full_run = query(&mut light, &mut peer, "1Shop").unwrap();
            assert!(run.traffic.response_bytes <= full_run.traffic.response_bytes);
        }
    }

    #[test]
    fn invalid_range_rejected() {
        let full = full_node(Scheme::Lvq, 4);
        let mut peer = LocalTransport::new(&full);
        let mut light = LightNode::sync_from(&mut peer, config_for(Scheme::Lvq)).unwrap();
        for (lo, hi) in [(0u64, 2u64), (3, 2), (1, 9)] {
            assert!(
                light
                    .run(
                        &QuerySpec::address(Address::new("1Shop")).range(lo, hi),
                        &mut peer,
                    )
                    .is_err(),
                "range {lo}..={hi}"
            );
            assert!(
                light
                    .run(
                        &QuerySpec::addresses(vec![Address::new("1Shop")]).range(lo, hi),
                        &mut peer,
                    )
                    .is_err(),
                "batch range {lo}..={hi}"
            );
        }
    }

    #[test]
    fn batch_query_matches_singles_across_schemes() {
        for scheme in Scheme::ALL {
            let full = full_node(scheme, 10);
            let mut peer = LocalTransport::new(&full);
            let mut light = LightNode::sync_from(&mut peer, config_for(scheme)).unwrap();
            let addresses = [
                Address::new("1Shop"),
                Address::new("1Miner"),
                Address::new("1Ghost"),
            ];
            let batch = light
                .run(&QuerySpec::addresses(addresses.clone()), &mut peer)
                .unwrap();
            assert_eq!(batch.histories.len(), addresses.len());
            for (address, history) in addresses.iter().zip(&batch.histories) {
                let single = query(&mut light, &mut peer, address.as_str())
                    .unwrap()
                    .into_single();
                assert_eq!(history, &single, "scheme {scheme}, address {address}");
            }
        }
    }

    #[test]
    fn batch_range_matches_single_ranges_across_schemes() {
        for scheme in Scheme::ALL {
            let full = full_node(scheme, 10);
            let mut peer = LocalTransport::new(&full);
            let mut light = LightNode::sync_from(&mut peer, config_for(scheme)).unwrap();
            let addresses = [Address::new("1Shop"), Address::new("1Miner")];
            let (lo, hi) = (3u64, 7u64);
            let batch = light
                .run(
                    &QuerySpec::addresses(addresses.clone()).range(lo, hi),
                    &mut peer,
                )
                .unwrap();
            for (address, history) in addresses.iter().zip(&batch.histories) {
                let single = light
                    .run(
                        &QuerySpec::address(address.clone()).range(lo, hi),
                        &mut peer,
                    )
                    .unwrap()
                    .into_single();
                assert_eq!(history, &single, "scheme {scheme}, address {address}");
            }
        }
    }

    #[test]
    fn batch_moves_fewer_bytes_than_singles_under_lvq() {
        let full = full_node(Scheme::Lvq, 10);
        let mut peer = LocalTransport::new(&full);
        let mut light = LightNode::sync_from(&mut peer, config_for(Scheme::Lvq)).unwrap();
        let addresses: Vec<Address> =
            ["1Shop", "1Miner", "1Payer", "1GhostA", "1GhostB", "1GhostC"]
                .iter()
                .map(|s| Address::new(*s))
                .collect();
        let batch = light
            .run(&QuerySpec::addresses(addresses.clone()), &mut peer)
            .unwrap();
        let singles: u64 = addresses
            .iter()
            .map(|a| {
                query(&mut light, &mut peer, a.as_str())
                    .unwrap()
                    .traffic
                    .response_bytes
            })
            .sum();
        assert!(
            batch.traffic.response_bytes < singles,
            "batch of {} must beat {} singles on the wire ({} vs {})",
            addresses.len(),
            addresses.len(),
            batch.traffic.response_bytes,
            singles
        );
    }

    #[test]
    fn engine_stats_track_queries_and_cache() {
        let full = full_node(Scheme::Lvq, 10);
        let mut peer = LocalTransport::new(&full);
        let mut light = LightNode::sync_from(&mut peer, config_for(Scheme::Lvq)).unwrap();
        assert_eq!(full.engine_stats().queries, 0);
        query(&mut light, &mut peer, "1Shop").unwrap();
        light
            .run(
                &QuerySpec::addresses(vec![Address::new("1Shop"), Address::new("1Miner")]),
                &mut peer,
            )
            .unwrap();
        let stats = full.engine_stats();
        assert_eq!(stats.queries, 1);
        assert_eq!(stats.batch_queries, 1);
        assert_eq!(stats.batch_addresses, 2);
        assert!(stats.last.is_some());
        // The span-filter cache saw traffic, and repeat descents hit it.
        assert!(stats.cache.filters.misses > 0);
        assert!(stats.cache.filters.hits > 0);
    }

    #[test]
    fn mismatched_config_rejected() {
        // A full node on a weaker scheme (no SMT commitments in its
        // headers) cannot pass itself off to an LVQ-configured light
        // node: the out-of-band trust anchor catches it at sync time.
        let strawman_full = full_node(Scheme::Strawman, 6);
        assert!(matches!(
            LightNode::sync_from(
                &mut LocalTransport::new(&strawman_full),
                config_for(Scheme::Lvq)
            )
            .unwrap_err(),
            NodeError::ConfigMismatch { height: 1 }
        ));
        // And in the other direction: unexpected commitments are just
        // as much of a mismatch as missing ones.
        let lvq_full = full_node(Scheme::Lvq, 6);
        assert!(matches!(
            LightNode::sync_from(
                &mut LocalTransport::new(&lvq_full),
                config_for(Scheme::Strawman)
            )
            .unwrap_err(),
            NodeError::ConfigMismatch { height: 1 }
        ));
    }

    #[test]
    fn garbage_request_answered_with_structured_error() {
        let full = full_node(Scheme::Lvq, 2);
        // Byte 0xFF reads as an unsupported protocol version; the node
        // answers with a structured refusal instead of failing.
        let handled = full.handle_classified(&[0xFF, 0x00]);
        assert_eq!(handled.kind, RequestKind::Invalid);
        assert_eq!(handled.error, Some(WireErrorCode::UnsupportedVersion));
        assert_eq!(
            decode_exact::<Message>(&handled.bytes).unwrap(),
            Message::Error(WireError::with_detail(
                WireErrorCode::UnsupportedVersion,
                0xFF
            ))
        );
        // A response-kind message is not a valid request either.
        let msg = Message::Headers(Vec::new()).encode();
        let handled = full.handle_classified(&msg);
        assert_eq!(handled.error, Some(WireErrorCode::UnexpectedKind));
        // The compat wrapper hands back the same refusal bytes in `Ok`.
        assert_eq!(full.handle(&msg).unwrap(), handled.bytes);
    }

    #[test]
    fn light_node_surfaces_server_refusals_and_busy() {
        let full = full_node(Scheme::Lvq, 4);
        let mut peer = LocalTransport::new(&full);
        let mut light = LightNode::sync_from(&mut peer, config_for(Scheme::Lvq)).unwrap();
        // An empty batch is a well-formed request the prover refuses.
        assert_eq!(
            light
                .run(&QuerySpec::addresses(Vec::new()), &mut peer)
                .unwrap_err(),
            NodeError::Server(WireError::new(WireErrorCode::Unanswerable))
        );
        // A peer that sheds load surfaces as `NodeError::Busy`.
        let busy = |_req: &[u8]| -> Result<Vec<u8>, NodeError> { Ok(Message::Busy.encode()) };
        let mut shed = LocalTransport::new(busy);
        assert_eq!(
            light
                .run(&QuerySpec::address(Address::new("1Shop")), &mut shed)
                .unwrap_err(),
            NodeError::Busy
        );
    }

    #[test]
    fn run_with_retry_rides_out_transient_busy() {
        use crate::retry::{Retrier, RetryPolicy};
        use std::cell::Cell;
        use std::time::Duration;

        let full = full_node(Scheme::Lvq, 8);
        // A peer that sheds the first two query requests and then
        // behaves — exactly a saturated worker pool draining.
        let sheds = Cell::new(2u32);
        let flaky = |req: &[u8]| -> Result<Vec<u8>, NodeError> {
            let is_query = matches!(
                decode_exact::<Message>(req),
                Ok(Message::QueryRequest { .. } | Message::BatchQueryRequest { .. })
            );
            if is_query && sheds.get() > 0 {
                sheds.set(sheds.get() - 1);
                return Ok(Message::Busy.encode());
            }
            full.handle(req)
        };
        let mut peer = LocalTransport::new(flaky);
        let mut light = LightNode::sync_from(&mut peer, config_for(Scheme::Lvq)).unwrap();
        let policy =
            RetryPolicy::new(5).backoff(Duration::from_micros(10), Duration::from_micros(50));
        let mut retrier = Retrier::new(policy, 11);
        let spec = QuerySpec::address(Address::new("1Shop"));
        let run = light
            .run_with_retry(&spec, &mut peer, &mut retrier)
            .unwrap();
        assert_eq!(run.histories[0].transactions.len(), 4);
        assert_eq!(retrier.stats().attempts, 3, "two sheds, one success");

        // The same history a fault-free peer serves.
        let mut clean_peer = LocalTransport::new(&full);
        let mut clean = LightNode::sync_from(&mut clean_peer, config_for(Scheme::Lvq)).unwrap();
        assert_eq!(
            run.histories,
            clean.run(&spec, &mut clean_peer).unwrap().histories
        );

        // And a fatal error still short-circuits: a peer proving from
        // a different chain fails verification and is never retried.
        let liar = full_node(Scheme::Lvq, 4);
        let mut lying_peer = LocalTransport::new(&liar);
        let mut retrier = Retrier::new(policy, 12);
        assert!(light
            .run_with_retry(&spec, &mut lying_peer, &mut retrier)
            .is_err());
        assert_eq!(retrier.stats().attempts, 1);
        assert_eq!(retrier.stats().fatal, 1);
    }

    #[test]
    fn run_with_retry_records_typed_resync_outcomes() {
        use crate::retry::{ResyncOutcome, Retrier, RetryPolicy};
        use std::cell::Cell;
        use std::time::Duration;

        let config = config_for(Scheme::Lvq);
        let build = |blocks: u64| {
            let mut builder = ChainBuilder::new(config.chain_params()).unwrap();
            for h in 1..=blocks {
                builder
                    .push_block(vec![Transaction::coinbase(
                        Address::new("1Miner"),
                        50,
                        h as u32,
                    )])
                    .unwrap();
            }
            FullNode::new(builder.finish()).unwrap()
        };
        let short = build(6);
        let grown = build(10);
        let policy =
            RetryPolicy::new(5).backoff(Duration::from_micros(10), Duration::from_micros(50));
        let spec = QuerySpec::address(Address::new("1Miner"));

        let mut light = LightNode::sync_from(&mut LocalTransport::new(&short), config).unwrap();
        assert_eq!(light.client().tip_height(), 6);

        // The grown peer drops the first query; the retry's tip
        // re-check must surface the four new headers, typed.
        let drops = Cell::new(1u32);
        let flaky = |req: &[u8]| -> Result<Vec<u8>, NodeError> {
            let is_query = matches!(
                decode_exact::<Message>(req),
                Ok(Message::QueryRequest { .. } | Message::BatchQueryRequest { .. })
            );
            if is_query && drops.get() > 0 {
                drops.set(drops.get() - 1);
                return Err(NodeError::Disconnected { context: "test" });
            }
            grown.handle(req)
        };
        let mut peer = LocalTransport::new(flaky);
        let mut retrier = Retrier::new(policy, 21);
        let run = light
            .run_with_retry(&spec, &mut peer, &mut retrier)
            .unwrap();
        assert_eq!(run.histories[0].transactions.len(), 10);
        let stats = retrier.stats();
        assert_eq!(stats.resyncs, 1);
        assert_eq!(stats.resync_headers, 4);
        assert_eq!(stats.last_resync, Some(ResyncOutcome::Synced(4)));

        // Already at the peer's tip: the next re-check is peer-behind.
        drops.set(1);
        let mut retrier = Retrier::new(policy, 22);
        light
            .run_with_retry(&spec, &mut peer, &mut retrier)
            .unwrap();
        assert_eq!(retrier.stats().resyncs_peer_behind, 1);
        assert_eq!(retrier.stats().last_resync, Some(ResyncOutcome::PeerBehind));

        // A re-check that itself fails is recorded — not silent, and
        // not fatal: the operation still succeeds once the peer heals.
        let failures = Cell::new(2u32); // first query, then the re-check
        let flaky2 = |req: &[u8]| -> Result<Vec<u8>, NodeError> {
            if failures.get() > 0 {
                failures.set(failures.get() - 1);
                return Err(NodeError::Disconnected { context: "test" });
            }
            grown.handle(req)
        };
        let mut peer2 = LocalTransport::new(flaky2);
        let mut retrier = Retrier::new(policy, 23);
        let run = light
            .run_with_retry(&spec, &mut peer2, &mut retrier)
            .unwrap();
        assert_eq!(run.histories[0].transactions.len(), 10);
        let stats = retrier.stats();
        assert_eq!(stats.resyncs, 1);
        assert_eq!(stats.resyncs_failed, 1);
        assert_eq!(stats.last_resync, Some(ResyncOutcome::Failed));
    }

    /// An in-process [`PipelinedTransport`] that answers every submit
    /// immediately (via [`FullNode::handle_classified`], which speaks
    /// the v2 envelope) but delivers the buffered responses in
    /// *reverse* submission order — the worst-case reordering a
    /// readiness server could produce.
    struct ReversingPipeline<'a> {
        full: &'a FullNode,
        next_id: u64,
        window: u32,
        ready: Vec<(ReqId, Vec<u8>, Traffic)>,
    }

    impl PipelinedTransport for ReversingPipeline<'_> {
        fn submit(&mut self, request: &[u8]) -> Result<ReqId, NodeError> {
            let id = self.next_id;
            self.next_id += 1;
            let wire = envelope::wrap_v2(request, id);
            let reply = self.full.handle(&wire).unwrap();
            let traffic = Traffic {
                request_bytes: wire.len() as u64,
                response_bytes: reply.len() as u64,
            };
            let (got, v1) = envelope::unwrap_v2(&reply).expect("v2 in, v2 out");
            assert_eq!(got, id, "the node echoes the request id");
            self.ready.push((id, v1, traffic));
            Ok(id)
        }

        fn recv(&mut self) -> Result<(ReqId, Vec<u8>, Traffic), NodeError> {
            // LIFO: the most recently submitted request "finishes" first.
            self.ready.pop().ok_or(NodeError::PipelineViolation {
                context: "recv with nothing in flight",
            })
        }

        fn in_flight(&self) -> usize {
            self.ready.len()
        }

        fn max_in_flight(&self) -> u32 {
            self.window
        }
    }

    #[test]
    fn run_pipelined_reassembles_out_of_order_responses() {
        let full = full_node(Scheme::Lvq, 10);
        let config = config_for(Scheme::Lvq);
        let mut peer = LocalTransport::new(&full);
        let mut light = LightNode::sync_from(&mut peer, config).unwrap();

        let specs = vec![
            QuerySpec::address(Address::new("1Shop")),
            QuerySpec::addresses(vec![Address::new("1Miner"), Address::new("1Ghost")]),
            QuerySpec::address(Address::new("1Shop")).range(3, 7),
            QuerySpec::address(Address::new("1Payer")),
        ];
        // A window smaller than the spec list exercises the
        // submit-as-you-drain loop, and LIFO delivery exercises the
        // id-based reassembly.
        let mut pipe = ReversingPipeline {
            full: &full,
            next_id: 1,
            window: 2,
            ready: Vec::new(),
        };
        let exchanges_before = light.exchanges();
        let runs = light.run_pipelined(&specs, &mut pipe).unwrap();
        assert_eq!(runs.len(), specs.len());
        assert_eq!(light.exchanges() - exchanges_before, specs.len() as u64);

        // Each pipelined run verifies to exactly what the blocking API
        // produces, and its traffic is the v1 bytes plus the envelope
        // overhead on both directions.
        let overhead = (envelope::V2_HEAD - 1) as u64;
        for (spec, run) in specs.iter().zip(&runs) {
            let blocking = light.run(spec, &mut peer).unwrap();
            assert_eq!(run.histories, blocking.histories);
            assert_eq!(
                run.traffic.request_bytes,
                blocking.traffic.request_bytes + overhead
            );
            assert_eq!(
                run.traffic.response_bytes,
                blocking.traffic.response_bytes + overhead
            );
        }
    }

    #[test]
    fn sync_new_appends_only_the_missing_headers() {
        let config = config_for(Scheme::Lvq);
        let mut builder = ChainBuilder::new(config.chain_params()).unwrap();
        for h in 1..=6u64 {
            builder
                .push_block(vec![Transaction::coinbase(
                    Address::new("1Miner"),
                    50,
                    h as u32,
                )])
                .unwrap();
        }
        let short = FullNode::new(builder.finish()).unwrap();
        let mut peer = LocalTransport::new(&short);
        let mut light = LightNode::sync_from(&mut peer, config).unwrap();
        assert_eq!(light.client().tip_height(), 6);

        // The chain grows by four blocks; resume from the same prefix
        // so the first six headers stay identical.
        let mut builder = ChainBuilder::new(config.chain_params()).unwrap();
        for h in 1..=10u64 {
            builder
                .push_block(vec![Transaction::coinbase(
                    Address::new("1Miner"),
                    50,
                    h as u32,
                )])
                .unwrap();
        }
        let grown = FullNode::new(builder.finish()).unwrap();
        let mut grown_peer = LocalTransport::new(&grown);
        let synced_before = light.cumulative_traffic();
        assert_eq!(
            light.sync_new(&mut grown_peer).unwrap(),
            ResyncOutcome::Synced(4)
        );
        assert_eq!(light.client().tip_height(), 10);
        // Only the four new headers crossed the wire — far less than a
        // full re-sync.
        let incremental = light.cumulative_traffic().response_bytes - synced_before.response_bytes;
        let full_sync = LightNode::sync_from(&mut LocalTransport::new(&grown), config)
            .unwrap()
            .cumulative_traffic()
            .response_bytes;
        assert!(incremental < full_sync / 2);
        // Already at the tip: a no-op.
        assert_eq!(
            light.sync_new(&mut grown_peer).unwrap(),
            ResyncOutcome::PeerBehind
        );
        // And the grown history verifies end to end.
        let run = light
            .run(&QuerySpec::address(Address::new("1Miner")), &mut grown_peer)
            .unwrap();
        assert_eq!(run.histories[0].transactions.len(), 10);
    }

    #[test]
    fn sync_new_refuses_a_diverged_peer_without_a_reorg_budget() {
        let config = config_for(Scheme::Lvq);
        let full_a = full_node(Scheme::Lvq, 6);
        let mut peer_a = LocalTransport::new(&full_a);
        let mut light = LightNode::sync_from(&mut peer_a, config).unwrap();
        // A different chain of the same scheme: it shares no header
        // with ours, so every probe answers HeadersDiverged.
        let mut builder = ChainBuilder::new(config.chain_params()).unwrap();
        for h in 1..=9u64 {
            builder
                .push_block(vec![Transaction::coinbase(
                    Address::new("1Other"),
                    50,
                    h as u32,
                )])
                .unwrap();
        }
        let full_b = FullNode::new(builder.finish()).unwrap();
        // Default budget 0: the first divergence is already too deep.
        assert_eq!(
            light
                .sync_new(&mut LocalTransport::new(&full_b))
                .unwrap_err(),
            NodeError::ReorgTooDeep {
                floor: 6,
                max_depth: 0
            }
        );
        assert_eq!(light.client().tip_height(), 6);
        // A budget that still bottoms out above the (non-existent)
        // fork point refuses too — the walk stops at the floor, and
        // nothing was discarded.
        let mut light = light.with_max_reorg_depth(3);
        assert_eq!(
            light
                .sync_new(&mut LocalTransport::new(&full_b))
                .unwrap_err(),
            NodeError::ReorgTooDeep {
                floor: 3,
                max_depth: 3
            }
        );
        assert_eq!(light.client().tip_height(), 6);
    }

    #[test]
    fn sync_new_follows_a_reorg_within_budget() {
        let config = config_for(Scheme::Lvq);
        // Canonical and fork share heights 1..=5, then diverge; the
        // fork is longer (the winner after a reorg).
        let build = |total: u64, fork_tag: &str| {
            let mut builder = ChainBuilder::new(config.chain_params()).unwrap();
            for h in 1..=total {
                let tag = if h <= 5 { "1Miner" } else { fork_tag };
                builder
                    .push_block(vec![Transaction::coinbase(Address::new(tag), 50, h as u32)])
                    .unwrap();
            }
            FullNode::new(builder.finish()).unwrap()
        };
        let canonical = build(8, "1Miner");
        let winner = build(10, "1Winner");

        let mut light = LightNode::sync_from(&mut LocalTransport::new(&canonical), config)
            .unwrap()
            .with_max_reorg_depth(4);
        assert_eq!(light.client().tip_height(), 8);

        // The peer reorged: probes at 8, 7, 6 diverge, height 5 agrees.
        let mut winner_peer = LocalTransport::new(&winner);
        assert_eq!(
            light.sync_new(&mut winner_peer).unwrap(),
            ResyncOutcome::Diverged { fork_height: 5 }
        );
        assert_eq!(light.client().tip_height(), 10);
        // The adopted headers are exactly the winner's, and proofs
        // against the new chain verify end to end.
        assert_eq!(
            light.client().hash_at(10),
            Some(winner.chain().header(10).unwrap().block_hash())
        );
        let run = light
            .run(
                &QuerySpec::address(Address::new("1Winner")),
                &mut winner_peer,
            )
            .unwrap();
        assert_eq!(run.histories[0].transactions.len(), 5);

        // The displaced canonical peer is now simply behind: its tip
        // (8) is below the client's (10), so the client keeps the
        // longer chain instead of reorging back to a shorter one.
        assert_eq!(
            light
                .sync_new(&mut LocalTransport::new(&canonical))
                .unwrap(),
            ResyncOutcome::PeerBehind
        );
        assert_eq!(light.client().tip_height(), 10);
    }
}
