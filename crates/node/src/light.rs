//! The light node.

use lvq_chain::Address;
use lvq_codec::{decode_exact, Encodable};
use lvq_core::{LightClient, SchemeConfig, VerifiedHistory};

use crate::message::{Message, NodeError};
use crate::pipe::Traffic;
use crate::transport::Transport;

/// What one verified batched query produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchQueryOutcome {
    /// One verified history per queried address, in request order.
    pub histories: Vec<VerifiedHistory>,
    /// Bytes that crossed the wire for the whole batch.
    pub traffic: Traffic,
}

/// What one verified query produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryOutcome {
    /// The verified, complete transaction history.
    pub history: VerifiedHistory,
    /// Bytes that crossed the wire for this query.
    pub traffic: Traffic,
}

/// A light node: headers only, plus the verification engine.
///
/// Every networked operation takes a [`Transport`] — the same light
/// node can query an in-process [`crate::LocalTransport`] or a remote
/// [`crate::TcpTransport`] interchangeably, and the byte accounting is
/// identical either way.
///
/// # Examples
///
/// See the [crate-level example](crate).
#[derive(Debug)]
pub struct LightNode {
    client: LightClient,
    cumulative: Traffic,
    exchanges: u64,
}

impl LightNode {
    /// Creates a light node from a configuration and headers obtained
    /// out of band.
    pub fn new(config: SchemeConfig, headers: Vec<lvq_chain::BlockHeader>) -> Self {
        LightNode {
            client: LightClient::new(config, headers),
            cumulative: Traffic::default(),
            exchanges: 0,
        }
    }

    /// Bootstraps a light node by downloading headers over `transport`
    /// (initial block download, headers only).
    ///
    /// `config` is the light node's **out-of-band trust anchor** — the
    /// scheme, Bloom parameters, and segment length it obtained when
    /// the network was set up, never from the peer it is syncing from.
    /// (Trusting the peer's advertised configuration would let a
    /// malicious full node substitute a weaker scheme — e.g. one whose
    /// headers carry no SMT commitment — and then "prove" histories
    /// that omit transactions.) The downloaded headers are checked to
    /// carry exactly the commitments `config`'s scheme requires.
    ///
    /// # Errors
    ///
    /// Returns a [`NodeError`] if the exchange fails or the reply is
    /// not a header list, and [`NodeError::ConfigMismatch`] if any
    /// header's commitments do not match `config`'s policy.
    pub fn sync_from<T: Transport + ?Sized>(
        transport: &mut T,
        config: SchemeConfig,
    ) -> Result<Self, NodeError> {
        let request = Message::GetHeaders.encode();
        let (reply, traffic) = transport.exchange(&request)?;
        let Message::Headers(headers) = decode_exact::<Message>(&reply)? else {
            return Err(NodeError::UnexpectedMessage);
        };
        // The served headers must carry exactly the commitments the
        // trusted configuration's scheme requires.
        let policy = config.scheme().policy();
        for (i, header) in headers.iter().enumerate() {
            let c = &header.commitments;
            if c.bf_hash.is_some() != policy.bf_hash
                || c.bmt_root.is_some() != policy.bmt
                || c.smt_commitment.is_some() != policy.smt
            {
                return Err(NodeError::ConfigMismatch {
                    height: i as u64 + 1,
                });
            }
        }
        let client = LightClient::new(config, headers);
        // SPV sanity: the downloaded headers must form a hash chain.
        client.validate_header_chain()?;
        Ok(LightNode {
            client,
            cumulative: traffic,
            exchanges: 1,
        })
    }

    /// The verification engine (e.g. to inspect
    /// [`LightClient::storage_bytes`]).
    pub fn client(&self) -> &LightClient {
        &self.client
    }

    /// Cumulative traffic across all exchanges this node performed
    /// (including its initial header sync), on any transport.
    pub fn cumulative_traffic(&self) -> Traffic {
        self.cumulative
    }

    /// Number of request/response exchanges this node performed.
    pub fn exchanges(&self) -> u64 {
        self.exchanges
    }

    /// Queries the peer behind `transport` for the history of `address`
    /// and verifies the response.
    ///
    /// # Errors
    ///
    /// Returns [`NodeError::Verify`] if the response fails verification
    /// — the caller should treat the full node as faulty or malicious —
    /// and other [`NodeError`] variants for transport-level problems.
    pub fn query<T: Transport + ?Sized>(
        &mut self,
        transport: &mut T,
        address: &Address,
    ) -> Result<QueryOutcome, NodeError> {
        self.query_inner(transport, address, None)
    }

    /// Queries for the history of `address` restricted to blocks
    /// `lo..=hi` and verifies the response over exactly that range.
    ///
    /// # Errors
    ///
    /// As [`LightNode::query`], plus verification rejects ranges outside
    /// `1..=tip`.
    pub fn query_range<T: Transport + ?Sized>(
        &mut self,
        transport: &mut T,
        address: &Address,
        lo: u64,
        hi: u64,
    ) -> Result<QueryOutcome, NodeError> {
        self.query_inner(transport, address, Some((lo, hi)))
    }

    /// Queries for the histories of several addresses in one round trip
    /// and verifies every per-address section.
    ///
    /// Under the BMT schemes, the response shares one descent per
    /// segment across all addresses, so the batch moves fewer bytes
    /// than the equivalent sequence of [`LightNode::query`] calls.
    ///
    /// # Errors
    ///
    /// As [`LightNode::query`]; an empty `addresses` list is rejected
    /// by the prover ([`NodeError::Prove`]).
    pub fn query_batch<T: Transport + ?Sized>(
        &mut self,
        transport: &mut T,
        addresses: &[Address],
    ) -> Result<BatchQueryOutcome, NodeError> {
        self.query_batch_inner(transport, addresses, None)
    }

    /// Queries for the histories of several addresses restricted to
    /// blocks `lo..=hi` in one round trip — the batch counterpart of
    /// [`LightNode::query_range`].
    ///
    /// # Errors
    ///
    /// As [`LightNode::query_batch`], plus verification rejects ranges
    /// outside `1..=tip`.
    pub fn query_batch_range<T: Transport + ?Sized>(
        &mut self,
        transport: &mut T,
        addresses: &[Address],
        lo: u64,
        hi: u64,
    ) -> Result<BatchQueryOutcome, NodeError> {
        self.query_batch_inner(transport, addresses, Some((lo, hi)))
    }

    fn query_batch_inner<T: Transport + ?Sized>(
        &mut self,
        transport: &mut T,
        addresses: &[Address],
        range: Option<(u64, u64)>,
    ) -> Result<BatchQueryOutcome, NodeError> {
        let request = Message::BatchQueryRequest {
            addresses: addresses.to_vec(),
            range,
        }
        .encode();
        let (reply, traffic) = self.metered_exchange(transport, &request)?;
        let Message::BatchQueryResponse(response) = decode_exact::<Message>(&reply)? else {
            return Err(NodeError::UnexpectedMessage);
        };
        let histories = match range {
            None => self.client.verify_batch(addresses, &response)?,
            Some((lo, hi)) => self
                .client
                .verify_batch_range(addresses, lo, hi, &response)?,
        };
        Ok(BatchQueryOutcome { histories, traffic })
    }

    fn query_inner<T: Transport + ?Sized>(
        &mut self,
        transport: &mut T,
        address: &Address,
        range: Option<(u64, u64)>,
    ) -> Result<QueryOutcome, NodeError> {
        let request = Message::QueryRequest {
            address: address.clone(),
            range,
        }
        .encode();
        let (reply, traffic) = self.metered_exchange(transport, &request)?;
        let Message::QueryResponse(response) = decode_exact::<Message>(&reply)? else {
            return Err(NodeError::UnexpectedMessage);
        };
        let history = match range {
            None => self.client.verify(address, &response)?,
            Some((lo, hi)) => self.client.verify_range(address, lo, hi, &response)?,
        };
        Ok(QueryOutcome { history, traffic })
    }

    /// One exchange, folded into this node's cumulative accounting.
    fn metered_exchange<T: Transport + ?Sized>(
        &mut self,
        transport: &mut T,
        request: &[u8],
    ) -> Result<(Vec<u8>, Traffic), NodeError> {
        let (reply, traffic) = transport.exchange(request)?;
        self.cumulative.request_bytes += traffic.request_bytes;
        self.cumulative.response_bytes += traffic.response_bytes;
        self.exchanges += 1;
        Ok((reply, traffic))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::full::FullNode;
    use crate::transport::LocalTransport;
    use lvq_bloom::BloomParams;
    use lvq_chain::{ChainBuilder, Transaction, TxInput, TxOutPoint, TxOutput};
    use lvq_core::{Completeness, Scheme};
    use lvq_crypto::Hash256;

    fn transfer(from: &str, to: &str, value: u64, salt: u32) -> Transaction {
        Transaction {
            version: 1,
            inputs: vec![TxInput {
                prev_out: TxOutPoint {
                    txid: Hash256::hash(&salt.to_le_bytes()),
                    vout: 0,
                },
                address: Address::new(from),
                value,
            }],
            outputs: vec![TxOutput {
                address: Address::new(to),
                value,
            }],
            lock_time: 0,
        }
    }

    fn config_for(scheme: Scheme) -> SchemeConfig {
        SchemeConfig::new(scheme, BloomParams::new(64, 2).unwrap(), 8).unwrap()
    }

    fn full_node(scheme: Scheme, blocks: u64) -> FullNode {
        let config = config_for(scheme);
        let mut builder = ChainBuilder::new(config.chain_params()).unwrap();
        for h in 1..=blocks {
            let mut txs = vec![Transaction::coinbase(Address::new("1Miner"), 50, h as u32)];
            if h % 2 == 0 {
                txs.push(transfer("1Payer", "1Shop", h, h as u32));
            }
            builder.push_block(txs).unwrap();
        }
        FullNode::new(builder.finish()).unwrap()
    }

    #[test]
    fn end_to_end_all_schemes() {
        for scheme in Scheme::ALL {
            let full = full_node(scheme, 10);
            let mut peer = LocalTransport::new(&full);
            let mut light = LightNode::sync_from(&mut peer, config_for(scheme)).unwrap();
            let outcome = light.query(&mut peer, &Address::new("1Shop")).unwrap();
            assert_eq!(
                outcome.history.transactions.len(),
                5,
                "scheme {scheme}: heights 2,4,6,8,10"
            );
            assert_eq!(outcome.history.balance.net(), (2 + 4 + 6 + 8 + 10) as i128);
            assert!(outcome.traffic.response_bytes > 0);
            let expected = if scheme == Scheme::Strawman {
                Completeness::CorrectnessOnly
            } else {
                Completeness::Complete
            };
            assert_eq!(outcome.history.completeness, expected, "scheme {scheme}");
        }
    }

    #[test]
    fn absent_address_yields_empty_complete_history() {
        for scheme in Scheme::ALL {
            let full = full_node(scheme, 10);
            let mut peer = LocalTransport::new(&full);
            let mut light = LightNode::sync_from(&mut peer, config_for(scheme)).unwrap();
            let outcome = light.query(&mut peer, &Address::new("1Ghost")).unwrap();
            assert!(outcome.history.transactions.is_empty(), "scheme {scheme}");
            assert_eq!(outcome.history.balance.net(), 0);
        }
    }

    #[test]
    fn traffic_accumulates_across_queries_and_transports() {
        let full = full_node(Scheme::Lvq, 8);
        let mut peer = LocalTransport::new(&full);
        let mut light = LightNode::sync_from(&mut peer, config_for(Scheme::Lvq)).unwrap();
        let t0 = light.cumulative_traffic();
        assert!(t0.response_bytes > 0, "header sync is metered");
        light.query(&mut peer, &Address::new("1Shop")).unwrap();
        // A second transport to the same node: the light node's own
        // accounting spans transports.
        let mut other = LocalTransport::new(&full);
        light.query(&mut other, &Address::new("1Miner")).unwrap();
        let t1 = light.cumulative_traffic();
        assert!(t1.total() > t0.total());
        assert_eq!(light.exchanges(), 3);
        // And the per-transport view splits the same totals.
        assert_eq!(
            peer.cumulative_traffic().total() + other.cumulative_traffic().total(),
            t1.total()
        );
    }

    #[test]
    fn light_node_stores_headers_only() {
        let full = full_node(Scheme::Lvq, 8);
        let mut peer = LocalTransport::new(&full);
        let light = LightNode::sync_from(&mut peer, config_for(Scheme::Lvq)).unwrap();
        // The light node stores exactly the header bytes the chain's
        // own headers occupy — derived, not hard-coded, so changes to
        // the header layout don't silently break this test.
        let expected: u64 = full
            .chain()
            .headers()
            .iter()
            .map(|h| h.storage_len() as u64)
            .sum();
        assert_eq!(light.client().storage_bytes(), expected);
        // And that is much less than storing the blocks themselves.
        let chain_bytes: u64 = (1..=8)
            .map(|h| full.chain().block(h).unwrap().encoded_len() as u64)
            .sum();
        assert!(light.client().storage_bytes() < chain_bytes);
    }

    #[test]
    fn range_queries_verify_per_scheme() {
        for scheme in Scheme::ALL {
            let full = full_node(scheme, 10);
            let mut peer = LocalTransport::new(&full);
            let mut light = LightNode::sync_from(&mut peer, config_for(scheme)).unwrap();
            // "1Shop" receives in blocks 2,4,6,8,10; range 3..=7 covers 4,6.
            let outcome = light
                .query_range(&mut peer, &Address::new("1Shop"), 3, 7)
                .unwrap();
            let heights: Vec<u64> = outcome
                .history
                .transactions
                .iter()
                .map(|(h, _)| *h)
                .collect();
            assert_eq!(heights, vec![4, 6], "scheme {scheme}");
            // A range query moves fewer bytes than the full query.
            let full_outcome = light.query(&mut peer, &Address::new("1Shop")).unwrap();
            assert!(outcome.traffic.response_bytes <= full_outcome.traffic.response_bytes);
        }
    }

    #[test]
    fn invalid_range_rejected() {
        let full = full_node(Scheme::Lvq, 4);
        let mut peer = LocalTransport::new(&full);
        let mut light = LightNode::sync_from(&mut peer, config_for(Scheme::Lvq)).unwrap();
        for (lo, hi) in [(0u64, 2u64), (3, 2), (1, 9)] {
            assert!(
                light
                    .query_range(&mut peer, &Address::new("1Shop"), lo, hi)
                    .is_err(),
                "range {lo}..={hi}"
            );
            assert!(
                light
                    .query_batch_range(&mut peer, &[Address::new("1Shop")], lo, hi)
                    .is_err(),
                "batch range {lo}..={hi}"
            );
        }
    }

    #[test]
    fn batch_query_matches_singles_across_schemes() {
        for scheme in Scheme::ALL {
            let full = full_node(scheme, 10);
            let mut peer = LocalTransport::new(&full);
            let mut light = LightNode::sync_from(&mut peer, config_for(scheme)).unwrap();
            let addresses = [
                Address::new("1Shop"),
                Address::new("1Miner"),
                Address::new("1Ghost"),
            ];
            let batch = light.query_batch(&mut peer, &addresses).unwrap();
            assert_eq!(batch.histories.len(), addresses.len());
            for (address, history) in addresses.iter().zip(&batch.histories) {
                let single = light.query(&mut peer, address).unwrap();
                assert_eq!(
                    history, &single.history,
                    "scheme {scheme}, address {address}"
                );
            }
        }
    }

    #[test]
    fn batch_range_matches_single_ranges_across_schemes() {
        for scheme in Scheme::ALL {
            let full = full_node(scheme, 10);
            let mut peer = LocalTransport::new(&full);
            let mut light = LightNode::sync_from(&mut peer, config_for(scheme)).unwrap();
            let addresses = [Address::new("1Shop"), Address::new("1Miner")];
            let (lo, hi) = (3u64, 7u64);
            let batch = light
                .query_batch_range(&mut peer, &addresses, lo, hi)
                .unwrap();
            for (address, history) in addresses.iter().zip(&batch.histories) {
                let single = light.query_range(&mut peer, address, lo, hi).unwrap();
                assert_eq!(
                    history, &single.history,
                    "scheme {scheme}, address {address}"
                );
            }
        }
    }

    #[test]
    fn batch_moves_fewer_bytes_than_singles_under_lvq() {
        let full = full_node(Scheme::Lvq, 10);
        let mut peer = LocalTransport::new(&full);
        let mut light = LightNode::sync_from(&mut peer, config_for(Scheme::Lvq)).unwrap();
        let addresses: Vec<Address> =
            ["1Shop", "1Miner", "1Payer", "1GhostA", "1GhostB", "1GhostC"]
                .iter()
                .map(|s| Address::new(*s))
                .collect();
        let batch = light.query_batch(&mut peer, &addresses).unwrap();
        let singles: u64 = addresses
            .iter()
            .map(|a| light.query(&mut peer, a).unwrap().traffic.response_bytes)
            .sum();
        assert!(
            batch.traffic.response_bytes < singles,
            "batch of {} must beat {} singles on the wire ({} vs {})",
            addresses.len(),
            addresses.len(),
            batch.traffic.response_bytes,
            singles
        );
    }

    #[test]
    fn engine_stats_track_queries_and_cache() {
        let full = full_node(Scheme::Lvq, 10);
        let mut peer = LocalTransport::new(&full);
        let mut light = LightNode::sync_from(&mut peer, config_for(Scheme::Lvq)).unwrap();
        assert_eq!(full.engine_stats().queries, 0);
        light.query(&mut peer, &Address::new("1Shop")).unwrap();
        light
            .query_batch(&mut peer, &[Address::new("1Shop"), Address::new("1Miner")])
            .unwrap();
        let stats = full.engine_stats();
        assert_eq!(stats.queries, 1);
        assert_eq!(stats.batch_queries, 1);
        assert_eq!(stats.batch_addresses, 2);
        assert!(stats.last.is_some());
        // The span-filter cache saw traffic, and repeat descents hit it.
        assert!(stats.cache.filters.misses > 0);
        assert!(stats.cache.filters.hits > 0);
    }

    #[test]
    fn mismatched_config_rejected() {
        // A full node on a weaker scheme (no SMT commitments in its
        // headers) cannot pass itself off to an LVQ-configured light
        // node: the out-of-band trust anchor catches it at sync time.
        let strawman_full = full_node(Scheme::Strawman, 6);
        assert!(matches!(
            LightNode::sync_from(
                &mut LocalTransport::new(&strawman_full),
                config_for(Scheme::Lvq)
            )
            .unwrap_err(),
            NodeError::ConfigMismatch { height: 1 }
        ));
        // And in the other direction: unexpected commitments are just
        // as much of a mismatch as missing ones.
        let lvq_full = full_node(Scheme::Lvq, 6);
        assert!(matches!(
            LightNode::sync_from(
                &mut LocalTransport::new(&lvq_full),
                config_for(Scheme::Strawman)
            )
            .unwrap_err(),
            NodeError::ConfigMismatch { height: 1 }
        ));
    }

    #[test]
    fn garbage_request_rejected() {
        let full = full_node(Scheme::Lvq, 2);
        assert!(matches!(
            full.handle(&[0xFF, 0x00]).unwrap_err(),
            NodeError::Wire(_)
        ));
        // A response-kind message is not a valid request either.
        let msg = Message::Headers(Vec::new()).encode();
        assert!(matches!(
            full.handle(&msg).unwrap_err(),
            NodeError::UnexpectedMessage
        ));
    }
}
