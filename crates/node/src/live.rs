//! A full node whose chain grows while it serves.
//!
//! [`crate::FullNode`] answers queries through `&self` and is shared
//! across a [`crate::NodeServer`]'s whole worker pool, so its chain is
//! frozen at whatever tip it had when the server was bound — a node
//! following the live network cannot use it directly. [`LiveNode`]
//! wraps the full node in a reader-writer lock:
//!
//! * every request is answered under a **read** lock held for the whole
//!   exchange, so the proving height a query observes is pinned — a
//!   proof never straddles a mid-append tip, and the headers, the BMT
//!   spans, and the per-block witnesses it combines all describe one
//!   consistent chain state;
//! * the ingest pipeline ([`crate::TipIngester`]) extends the chain
//!   under the **write** lock, which waits for in-flight proofs and
//!   blocks new ones only for the duration of the (cheap, incremental)
//!   [`lvq_chain::Chain::extend_batch`] call — the expensive parts of
//!   ingest (fetching, decoding, appending to the store) happen outside
//!   the lock.
//!
//! A client that wants end-to-end stability across *several* requests
//! pins its own height: it syncs headers, notes the tip `T`, and issues
//! range queries clamped to `T` ([`crate::QuerySpec::range`]) — the
//! server keeps growing underneath, but everything at or below `T` is
//! immutable.

use std::sync::Arc;

use lvq_chain::{BlockSource, ChainError, InMemoryBlocks, InMemoryTables, TableSource};
use lvq_core::SchemeConfig;
use lvq_crypto::Hash256;
use parking_lot::RwLock;

use crate::full::{FullNode, Handled};
use crate::server::ServeNode;

/// A [`FullNode`] behind a reader-writer lock: queries share read
/// access, the ingester extends the chain under write access. See the
/// module docs for the consistency discipline.
#[derive(Debug)]
pub struct LiveNode<S: BlockSource = InMemoryBlocks, T: TableSource = InMemoryTables> {
    inner: RwLock<FullNode<S, T>>,
}

impl<S: BlockSource, T: TableSource> LiveNode<S, T> {
    /// Wraps a full node for concurrent serve-while-growing use.
    pub fn new(node: FullNode<S, T>) -> Self {
        LiveNode {
            inner: RwLock::new(node),
        }
    }

    /// The scheme the node serves (immutable over the node's life).
    pub fn config(&self) -> SchemeConfig {
        self.inner.read().config()
    }

    /// The currently served tip height.
    pub fn tip_height(&self) -> u64 {
        self.inner.read().chain().tip_height()
    }

    /// Hash of the currently served tip header — what the next
    /// ingested block's `prev_block` must carry.
    pub fn tip_hash(&self) -> Hash256 {
        self.inner.read().chain().tip_hash()
    }

    /// Runs `f` against the node under the read lock — e.g. for
    /// ground-truth checks or [`FullNode::engine_stats`]. The chain
    /// cannot advance while `f` runs; keep it short.
    pub fn with_node<R>(&self, f: impl FnOnce(&FullNode<S, T>) -> R) -> R {
        f(&self.inner.read())
    }

    /// Absorbs up to `max` blocks the node's block source has gained,
    /// under the write lock. Returns how many were absorbed.
    ///
    /// # Errors
    ///
    /// Propagates [`ChainError`] from [`FullNode::extend_batch`]; the
    /// chain stays at the last successfully absorbed height and keeps
    /// serving there.
    pub fn extend_batch(&self, max: u64) -> Result<u64, ChainError> {
        self.inner.write().extend_batch(max)
    }

    /// Flushes the chain's table source and anchors it at the served
    /// tip, under the read lock (durability needs no exclusivity — the
    /// table source synchronizes internally, and extension only happens
    /// under the write lock, which excludes this).
    ///
    /// # Errors
    ///
    /// Propagates [`ChainError::Source`] on storage failure.
    pub fn sync_derived(&self) -> Result<(), ChainError> {
        self.inner.read().sync_derived()
    }

    /// Switches the served chain to a competing branch under the write
    /// lock (see [`FullNode::reorg_to`]). In-flight proofs finish
    /// against the old branch before the switch; every request that
    /// starts afterwards observes the new one — no proof ever mixes
    /// headers from both. Returns the new tip height.
    ///
    /// # Errors
    ///
    /// As [`lvq_chain::Chain::reorg_to`].
    pub fn reorg_to(
        &self,
        fork_height: u64,
        branch: &[Arc<lvq_chain::Block>],
    ) -> Result<u64, ChainError> {
        self.inner.write().reorg_to(fork_height, branch)
    }

    /// Unwraps the inner full node (e.g. after ingest has stopped).
    pub fn into_inner(self) -> FullNode<S, T> {
        self.inner.into_inner()
    }
}

impl<S: BlockSource + 'static, T: TableSource + 'static> ServeNode for LiveNode<S, T> {
    /// Answers under the read lock held for the whole exchange, so the
    /// proving height is pinned for this request.
    fn handle_classified(&self, request: &[u8]) -> Handled {
        self.inner.read().handle_classified(request)
    }

    fn tip_hash(&self) -> Hash256 {
        LiveNode::tip_hash(self)
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use lvq_chain::Address;
    use lvq_codec::{decode_exact, Encodable};

    use super::*;
    use crate::message::Message;
    use crate::testutil::live_fixture;

    #[test]
    fn extension_is_visible_to_get_headers_from() {
        let fixture = live_fixture("live-headers", 6, 10);
        let (live, store) = (Arc::clone(&fixture.live), Arc::clone(&fixture.store));
        let pending = fixture.pending().to_vec();
        assert_eq!(live.tip_height(), 6);

        // Pin our header at the probe height, as a real client would.
        let request = Message::GetHeadersFrom {
            height: 6,
            tip_hash: live.tip_hash(),
        }
        .encode();
        let handled = live.handle_classified(&request);
        let Ok(Message::Headers(headers)) = decode_exact::<Message>(&handled.bytes) else {
            panic!("expected headers");
        };
        assert!(headers.is_empty(), "nothing beyond the tip yet");

        for block in &pending {
            store.append(block).unwrap();
        }
        assert_eq!(live.extend_batch(64).unwrap(), 4);
        assert_eq!(live.tip_height(), 10);

        let handled = live.handle_classified(&request);
        let Ok(Message::Headers(headers)) = decode_exact::<Message>(&handled.bytes) else {
            panic!("expected headers");
        };
        assert_eq!(headers.len(), 4, "the live tip is served incrementally");
    }

    #[test]
    fn concurrent_queries_verify_while_the_chain_grows() {
        let fixture = live_fixture("live-concurrent", 4, 10);
        let (live, store) = (Arc::clone(&fixture.live), Arc::clone(&fixture.store));
        let pending = fixture.pending().to_vec();
        let config = live.config();
        let mut handles = Vec::new();
        for _ in 0..3 {
            let live = Arc::clone(&live);
            handles.push(std::thread::spawn(move || {
                let mut transport = crate::LocalTransport::new(move |req: &[u8]| {
                    Ok(live.handle_classified(req).bytes)
                });
                let mut light = crate::LightNode::sync_from(&mut transport, config).unwrap();
                let spec = crate::QuerySpec::address(Address::new("1Miner"));
                for _ in 0..20 {
                    // Pin the proving height to the client's own synced
                    // tip: the verified history must be exactly that
                    // prefix, whatever the server's tip is by now.
                    let tip = light.client().tip_height();
                    let run = light
                        .run(&spec.clone().range(1, tip), &mut transport)
                        .unwrap();
                    assert_eq!(run.histories[0].transactions.len(), tip as usize);
                    light.sync_new(&mut transport).unwrap();
                }
            }));
        }
        for block in &pending {
            store.append(block).unwrap();
            live.extend_batch(1).unwrap();
            std::thread::yield_now();
        }
        for handle in handles {
            handle.join().expect("query thread panicked");
        }
        assert_eq!(live.tip_height(), 10);
    }
}
