//! Deterministic fault injection for any [`Transport`].
//!
//! [`FaultyTransport`] wraps a real transport and, driven by a seeded
//! RNG and a [`FaultPlan`], perturbs individual exchanges the way a
//! misbehaving network or peer would: injected latency, connections
//! dropped before or after the request reached the peer, truncated
//! reply frames, payload bit flips, spurious [`Message::Busy`] sheds,
//! and stale replies (the previous response replayed). Any test,
//! experiment, or CLI run can therefore execute under *reproducible*
//! chaos — the same seed and plan produce the same fault schedule,
//! byte for byte.
//!
//! The wrapper sits **above** framing: it perturbs request/response
//! payloads, never the transport's own length prefixes, so it composes
//! with both [`crate::LocalTransport`] and [`crate::TcpTransport`]
//! (and with [`crate::ReconnectingTcpTransport`], whose self-healing
//! it exists to exercise).
//!
//! Soundness is the point: the verification layer must treat every
//! perturbed reply as either a decode failure or a verification
//! failure — never as an acceptable answer. The chaos proptest in the
//! integration suite and the `repro chaos` experiment both lean on
//! this module for that guarantee.

use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use lvq_codec::Encodable;

use crate::message::{Message, NodeError};
use crate::pipe::Traffic;
use crate::transport::Transport;

/// Per-exchange fault probabilities and magnitudes.
///
/// All probabilities are independent per exchange and must lie in
/// `0.0..=1.0`. At most one *corruption* fault (drop, busy, stale,
/// truncate, flip) fires per exchange — they are drawn from one roll
/// against cumulative thresholds, so their probabilities should sum to
/// at most 1. Latency is rolled independently and stacks with any
/// corruption.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Probability of injecting extra latency into an exchange.
    pub latency_prob: f64,
    /// Injected latency range in milliseconds (uniform, inclusive).
    pub latency_ms: (u64, u64),
    /// Probability of dropping the connection (half before the request
    /// is forwarded — the peer never saw it — and half after — the
    /// peer processed it but the reply was lost, the case that makes
    /// idempotent replay interesting).
    pub drop_prob: f64,
    /// Probability of answering with a spurious [`Message::Busy`]
    /// without consulting the peer.
    pub busy_prob: f64,
    /// Probability of delivering a stale reply: the previous response
    /// seen on this transport (or garbage bytes on the first
    /// exchange).
    pub stale_prob: f64,
    /// Probability of truncating the reply payload.
    pub truncate_prob: f64,
    /// Probability of flipping 1–3 random bits in the reply payload.
    pub flip_prob: f64,
}

impl FaultPlan {
    /// No faults at all: the wrapper becomes a transparent pass-through
    /// (useful as the 0% point of a sweep).
    pub fn none() -> Self {
        FaultPlan {
            latency_prob: 0.0,
            latency_ms: (0, 0),
            drop_prob: 0.0,
            busy_prob: 0.0,
            stale_prob: 0.0,
            truncate_prob: 0.0,
            flip_prob: 0.0,
        }
    }

    /// A composite plan: each exchange is corrupted with probability
    /// `rate` (split evenly across drops, spurious busy, stale
    /// replies, truncations, and bit flips) and delayed 1–3 ms with
    /// probability `rate`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= rate <= 1.0`.
    pub fn composite(rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "fault rate out of range");
        let each = rate / 5.0;
        FaultPlan {
            latency_prob: rate,
            latency_ms: (1, 3),
            drop_prob: each,
            busy_prob: each,
            stale_prob: each,
            truncate_prob: each,
            flip_prob: each,
        }
    }

    /// The summed probability that an exchange is corrupted (latency
    /// excluded — a late clean reply is still a clean reply).
    pub fn corruption_prob(&self) -> f64 {
        self.drop_prob + self.busy_prob + self.stale_prob + self.truncate_prob + self.flip_prob
    }

    fn validate(&self) {
        for (name, p) in [
            ("latency_prob", self.latency_prob),
            ("drop_prob", self.drop_prob),
            ("busy_prob", self.busy_prob),
            ("stale_prob", self.stale_prob),
            ("truncate_prob", self.truncate_prob),
            ("flip_prob", self.flip_prob),
        ] {
            assert!((0.0..=1.0).contains(&p), "{name} out of range: {p}");
        }
        assert!(
            self.corruption_prob() <= 1.0 + 1e-9,
            "corruption probabilities must sum to at most 1"
        );
    }
}

/// How many of each fault kind a [`FaultyTransport`] actually injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultStats {
    /// Exchanges attempted through the wrapper.
    pub exchanges: u64,
    /// Exchanges delivered unperturbed (latency-only counts as clean).
    pub clean: u64,
    /// Latency injections.
    pub delayed: u64,
    /// Connections dropped before the request reached the peer.
    pub dropped_before: u64,
    /// Connections dropped after the peer processed the request.
    pub dropped_after: u64,
    /// Spurious busy replies fabricated.
    pub spurious_busy: u64,
    /// Stale replies delivered.
    pub stale: u64,
    /// Reply payloads truncated.
    pub truncated: u64,
    /// Reply payloads bit-flipped.
    pub flipped: u64,
}

impl FaultStats {
    /// Total corruptions injected (latency excluded).
    pub fn injected(&self) -> u64 {
        self.dropped_before
            + self.dropped_after
            + self.spurious_busy
            + self.stale
            + self.truncated
            + self.flipped
    }
}

/// Which corruption (if any) one exchange drew.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Corruption {
    None,
    Drop,
    Busy,
    Stale,
    Truncate,
    Flip,
}

/// A [`Transport`] wrapper that injects seeded, reproducible faults.
///
/// # Examples
///
/// ```
/// use lvq_bloom::BloomParams;
/// use lvq_chain::{Address, ChainBuilder, Transaction};
/// use lvq_core::{Scheme, SchemeConfig};
/// use lvq_node::{FaultPlan, FaultyTransport, FullNode, LightNode, LocalTransport, QuerySpec};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let config = SchemeConfig::new(Scheme::Lvq, BloomParams::new(128, 2)?, 4)?;
/// let mut builder = ChainBuilder::new(config.chain_params())?;
/// builder.push_block(vec![Transaction::coinbase(Address::new("1Miner"), 50, 1)])?;
/// let full = FullNode::new(builder.finish())?;
///
/// // A fault-free plan is a transparent pass-through.
/// let mut peer = FaultyTransport::new(LocalTransport::new(&full), FaultPlan::none(), 7);
/// let mut light = LightNode::sync_from(&mut peer, config)?;
/// let run = light.run(&QuerySpec::address(Address::new("1Miner")), &mut peer)?;
/// assert_eq!(run.histories[0].transactions.len(), 1);
/// assert_eq!(peer.stats().injected(), 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct FaultyTransport<T> {
    inner: T,
    plan: FaultPlan,
    rng: StdRng,
    stats: FaultStats,
    cumulative: Traffic,
    exchanges: u64,
    last_reply: Option<Vec<u8>>,
}

impl<T: Transport> FaultyTransport<T> {
    /// Wraps `inner` under `plan`, with the whole fault schedule
    /// derived from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if any probability in `plan` is outside `0.0..=1.0` or
    /// the corruption probabilities sum past 1.
    pub fn new(inner: T, plan: FaultPlan, seed: u64) -> Self {
        plan.validate();
        FaultyTransport {
            inner,
            plan,
            rng: StdRng::seed_from_u64(seed),
            stats: FaultStats::default(),
            cumulative: Traffic::default(),
            exchanges: 0,
            last_reply: None,
        }
    }

    /// Counters of the faults injected so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// The plan this wrapper runs under.
    pub fn plan(&self) -> FaultPlan {
        self.plan
    }

    /// The wrapped transport.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// Unwraps back into the inner transport.
    pub fn into_inner(self) -> T {
        self.inner
    }

    /// Draws this exchange's corruption from one roll against the
    /// plan's cumulative thresholds, so at most one fires and the RNG
    /// stream stays identical across runs of the same plan and seed.
    fn draw_corruption(&mut self) -> Corruption {
        let roll: f64 = self.rng.gen();
        let mut threshold = self.plan.drop_prob;
        if roll < threshold {
            return Corruption::Drop;
        }
        threshold += self.plan.busy_prob;
        if roll < threshold {
            return Corruption::Busy;
        }
        threshold += self.plan.stale_prob;
        if roll < threshold {
            return Corruption::Stale;
        }
        threshold += self.plan.truncate_prob;
        if roll < threshold {
            return Corruption::Truncate;
        }
        threshold += self.plan.flip_prob;
        if roll < threshold {
            return Corruption::Flip;
        }
        Corruption::None
    }

    /// Accounts and returns one delivered reply.
    fn deliver(&mut self, request_len: usize, reply: Vec<u8>) -> (Vec<u8>, Traffic) {
        let traffic = Traffic {
            request_bytes: request_len as u64,
            response_bytes: reply.len() as u64,
        };
        self.cumulative.request_bytes += traffic.request_bytes;
        self.cumulative.response_bytes += traffic.response_bytes;
        self.exchanges += 1;
        (reply, traffic)
    }
}

impl<T: Transport> Transport for FaultyTransport<T> {
    fn exchange(&mut self, request: &[u8]) -> Result<(Vec<u8>, Traffic), NodeError> {
        self.stats.exchanges += 1;

        // Latency is independent of corruption and stacks with it.
        if self.plan.latency_prob > 0.0 && self.rng.gen_bool(self.plan.latency_prob) {
            self.stats.delayed += 1;
            let (lo, hi) = self.plan.latency_ms;
            let ms = if hi > lo {
                self.rng.gen_range(lo..=hi)
            } else {
                lo
            };
            if ms > 0 {
                std::thread::sleep(Duration::from_millis(ms));
            }
        }

        let corruption = self.draw_corruption();

        // A drop-before never reaches the peer at all.
        if corruption == Corruption::Drop && self.rng.gen_bool(0.5) {
            self.stats.dropped_before += 1;
            return Err(NodeError::Disconnected {
                context: "fault: connection dropped before send",
            });
        }
        // A spurious busy is fabricated locally; the peer is never
        // consulted, exactly like an accept-queue shed.
        if corruption == Corruption::Busy {
            self.stats.spurious_busy += 1;
            let reply = Message::Busy.encode();
            return Ok(self.deliver(request.len(), reply));
        }

        // Every other outcome forwards the request — the peer really
        // does the work; the network then mistreats the reply.
        let (reply, _) = self.inner.exchange(request)?;
        let fresh = reply.clone();

        let delivered = match corruption {
            Corruption::None => {
                self.stats.clean += 1;
                reply
            }
            Corruption::Drop => {
                self.stats.dropped_after += 1;
                self.last_reply = Some(fresh);
                return Err(NodeError::Disconnected {
                    context: "fault: connection dropped before reply",
                });
            }
            Corruption::Stale => {
                self.stats.stale += 1;
                // Replay the previous reply; garbage on the first
                // exchange (nothing to replay yet).
                self.last_reply.clone().unwrap_or_else(|| vec![0xFF; 8])
            }
            Corruption::Truncate => {
                self.stats.truncated += 1;
                let cut = if reply.is_empty() {
                    0
                } else {
                    self.rng.gen_range(0..reply.len())
                };
                let mut truncated = reply;
                truncated.truncate(cut);
                truncated
            }
            Corruption::Flip => {
                self.stats.flipped += 1;
                let mut flipped = reply;
                if !flipped.is_empty() {
                    let flips = self.rng.gen_range(1..=3usize);
                    for _ in 0..flips {
                        let at = self.rng.gen_range(0..flipped.len());
                        let bit = self.rng.gen_range(0..8u32);
                        flipped[at] ^= 1 << bit;
                    }
                }
                flipped
            }
            Corruption::Busy => unreachable!("handled before forwarding"),
        };
        self.last_reply = Some(fresh);
        Ok(self.deliver(request.len(), delivered))
    }

    fn cumulative_traffic(&self) -> Traffic {
        self.cumulative
    }

    fn exchanges(&self) -> u64 {
        self.exchanges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::LocalTransport;

    fn echo_transport() -> LocalTransport<impl Fn(&[u8]) -> Result<Vec<u8>, NodeError>> {
        LocalTransport::new(|req: &[u8]| Ok(req.repeat(4)))
    }

    #[test]
    fn no_faults_is_a_pass_through() {
        let mut t = FaultyTransport::new(echo_transport(), FaultPlan::none(), 1);
        for _ in 0..50 {
            let (reply, traffic) = t.exchange(b"ping").unwrap();
            assert_eq!(reply, b"pingpingpingping");
            assert_eq!(traffic.request_bytes, 4);
            assert_eq!(traffic.response_bytes, 16);
        }
        assert_eq!(t.stats().injected(), 0);
        assert_eq!(t.stats().clean, 50);
        assert_eq!(t.exchanges(), 50);
        assert_eq!(t.cumulative_traffic().response_bytes, 800);
    }

    #[test]
    fn fault_schedule_is_reproducible() {
        let run = |seed: u64| {
            let mut t = FaultyTransport::new(echo_transport(), FaultPlan::composite(0.4), seed);
            let mut outcomes = Vec::new();
            for i in 0..200u32 {
                let request = i.to_le_bytes();
                outcomes.push(match t.exchange(&request) {
                    Ok((reply, _)) => Ok(reply),
                    Err(e) => Err(e),
                });
            }
            (outcomes, t.stats())
        };
        let (a_out, a_stats) = run(42);
        let (b_out, b_stats) = run(42);
        assert_eq!(a_out, b_out, "same seed, same schedule, same bytes");
        assert_eq!(a_stats, b_stats);
        let (c_out, _) = run(43);
        assert_ne!(a_out, c_out, "different seeds diverge");
    }

    #[test]
    fn composite_rate_injects_roughly_that_many_faults() {
        let mut t = FaultyTransport::new(echo_transport(), FaultPlan::composite(0.2), 7);
        let n = 1000;
        for i in 0..n as u32 {
            let _ = t.exchange(&i.to_le_bytes());
        }
        let injected = t.stats().injected();
        // 20% ± a generous margin; the point is "some but not all".
        assert!(
            (100..=320).contains(&injected),
            "expected ~200 corruptions of {n}, got {injected}"
        );
        // Every kind fired at a 20% composite rate over 1000 tries.
        let s = t.stats();
        for (name, count) in [
            ("drop before", s.dropped_before),
            ("drop after", s.dropped_after),
            ("busy", s.spurious_busy),
            ("stale", s.stale),
            ("truncate", s.truncated),
            ("flip", s.flipped),
        ] {
            assert!(count > 0, "{name} never fired");
        }
        assert_eq!(
            s.exchanges,
            s.clean + s.injected(),
            "every exchange is either clean or injected"
        );
    }

    #[test]
    fn stale_replays_the_previous_reply() {
        let plan = FaultPlan {
            stale_prob: 1.0,
            ..FaultPlan::none()
        };
        let mut t = FaultyTransport::new(echo_transport(), plan, 3);
        // First exchange: nothing to replay, delivers garbage.
        let (first, _) = t.exchange(b"a").unwrap();
        assert_eq!(first, vec![0xFF; 8]);
        // Second: replays the real reply of the first request.
        let (second, _) = t.exchange(b"b").unwrap();
        assert_eq!(second, b"aaaa");
        assert_eq!(t.stats().stale, 2);
    }

    #[test]
    fn invalid_plans_are_rejected() {
        let mut plan = FaultPlan::none();
        plan.drop_prob = 1.5;
        assert!(
            std::panic::catch_unwind(|| FaultyTransport::new(echo_transport(), plan, 0)).is_err()
        );
        let mut plan = FaultPlan::none();
        plan.drop_prob = 0.6;
        plan.flip_prob = 0.6;
        assert!(
            std::panic::catch_unwind(|| FaultyTransport::new(echo_transport(), plan, 0)).is_err()
        );
    }
}
