//! Follow-the-tip ingest: grow the chain into the store while serving.
//!
//! A [`crate::LiveNode`] can extend, but something has to drive it.
//! [`TipIngester`] is that driver: a background thread that pulls new
//! blocks from a [`BlockFeed`], appends them to the [`BlockStore`]
//! **first** (the store is the durable truth — after a crash it leads
//! every derived structure), and only then extends the in-memory chain
//! under the live node's write lock, making the new tip visible to
//! [`crate::Message::GetHeadersFrom`] clients.
//!
//! The loop is deliberately boring and robust:
//!
//! * **adaptive batching** — the fetch size doubles after every
//!   successful batch and halves on a transient feed failure, bounded
//!   by [`IngestConfig::min_batch`]`..=`[`IngestConfig::max_batch`], so
//!   a healthy feed is drained in large strides and a flaky one is
//!   probed gently;
//! * **seeded-jitter retry** — transient feed failures back off
//!   exponentially with deterministic jitter
//!   ([`IngestConfig::seed`]), so two ingesters recovering from the
//!   same outage do not hammer the source in lockstep, and a test can
//!   replay the exact schedule;
//! * **linkage validation before persistence** — each fetched block's
//!   `prev_block` is checked against the running tip hash *before*
//!   anything touches the store, so a byzantine feed cannot poison the
//!   durable state;
//! * **resume from the last persisted height** — the next fetch always
//!   starts at `store.len() + 1`. A restart after a crash (or a
//!   [`IngestHandle::stop`] mid-stream) reopens the store, reassembles
//!   the chain from it, and continues exactly where durability left
//!   off: no block is re-appended, none is skipped.
//!
//! # Equivocation mode
//!
//! With [`IngestConfig::max_reorg_depth`] > 0 the pipeline stops
//! assuming the feed is a straight line. The fetch cursor counts
//! *announcements* instead of heights (a feed may announce competing
//! blocks at the same height), and every announced block runs through
//! a [`ForkTree`]: canonical extensions take the usual durable-first
//! path, competing blocks are journaled to the store's fork sidecar
//! log ([`BlockStore::log_fork_block`]) and stored on a side branch,
//! and when a branch out-lengths the canonical chain the ingester
//! reorgs the live node onto it ([`crate::LiveNode::reorg_to`]) under
//! the write lock — queries in flight finish on the old branch, every
//! later one observes the new one. Blocks that link nowhere (garbage,
//! or forks beyond the reorg budget) are dropped and counted rather
//! than treated as fatal: a real network contains both. After a
//! restart the announcement cursor starts over from 1; replayed
//! announcements classify as duplicates (or fall below the fork
//! window and are dropped), so replay converges on the same chain.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use lvq_chain::{Block, BlockSource, ChainError, ForkEvent, ForkTree, TableSource};
use lvq_store::{BlockStore, StoreError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::live::LiveNode;
use crate::supervise::{HealthCell, Supervised, SupervisorConfig, TaskSpec, WorkCtx};

/// Supervision labels for the ingest pipeline.
const INGEST_SPEC: TaskSpec = TaskSpec {
    name: "lvq-ingest",
    restart_reason: "ingest pipeline restarted after a crash",
    stall_reason: "ingest pipeline stalled and was replaced",
    fail_reason: "ingest pipeline died repeatedly; chain stopped growing",
};

/// How a [`BlockFeed`] fetch can fail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeedError {
    /// The source hiccuped (network blip, upstream busy); retrying the
    /// same fetch can succeed.
    Transient {
        /// What the feed was doing.
        context: &'static str,
    },
}

impl std::fmt::Display for FeedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FeedError::Transient { context } => write!(f, "transient feed failure ({context})"),
        }
    }
}

/// Where new blocks come from.
///
/// The contract is pull-based and height-addressed: `fetch(from, max)`
/// returns up to `max` consecutive blocks starting at height `from`,
/// and an empty vector means the feed has nothing past `from - 1` yet
/// (the ingester is caught up and will poll again). The feed is *not*
/// trusted: the ingester validates header linkage before persisting.
pub trait BlockFeed: Send + 'static {
    /// Fetches up to `max` consecutive blocks starting at `from`.
    ///
    /// # Errors
    ///
    /// Returns [`FeedError::Transient`] when the source hiccuped and
    /// the same fetch should be retried after a backoff.
    fn fetch(&mut self, from: u64, max: u64) -> Result<Vec<Block>, FeedError>;
}

/// An in-memory feed over a pre-built block sequence whose visible tip
/// a [`FeedPublisher`] advances — the test and experiment stand-in for
/// a network peer announcing blocks.
#[derive(Debug, Clone)]
pub struct MemoryFeed {
    blocks: Arc<Vec<Block>>,
    published: Arc<AtomicU64>,
}

impl MemoryFeed {
    /// Wraps `blocks` (heights `1..=blocks.len()`); nothing is
    /// published yet.
    pub fn new(blocks: Vec<Block>) -> Self {
        MemoryFeed {
            blocks: Arc::new(blocks),
            published: Arc::new(AtomicU64::new(0)),
        }
    }

    /// A handle that advances the feed's visible tip.
    pub fn publisher(&self) -> FeedPublisher {
        FeedPublisher {
            total: self.blocks.len() as u64,
            published: Arc::clone(&self.published),
        }
    }
}

impl BlockFeed for MemoryFeed {
    fn fetch(&mut self, from: u64, max: u64) -> Result<Vec<Block>, FeedError> {
        let published = self.published.load(Ordering::Acquire);
        if from > published {
            return Ok(Vec::new());
        }
        let hi = published.min(from.saturating_add(max).saturating_sub(1));
        Ok(self.blocks[(from - 1) as usize..hi as usize].to_vec())
    }
}

/// Advances a [`MemoryFeed`]'s visible tip.
#[derive(Debug, Clone)]
pub struct FeedPublisher {
    total: u64,
    published: Arc<AtomicU64>,
}

impl FeedPublisher {
    /// Publishes `n` more blocks (clamped to the sequence length);
    /// returns the new visible tip.
    pub fn publish(&self, n: u64) -> u64 {
        let mut tip = self.published.load(Ordering::Acquire);
        loop {
            let next = tip.saturating_add(n).min(self.total);
            match self
                .published
                .compare_exchange(tip, next, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return next,
                Err(actual) => tip = actual,
            }
        }
    }

    /// Publishes everything.
    pub fn publish_all(&self) -> u64 {
        self.publish(self.total)
    }

    /// The currently visible tip.
    pub fn published(&self) -> u64 {
        self.published.load(Ordering::Acquire)
    }

    /// Heights in the sequence.
    pub fn total(&self) -> u64 {
        self.total
    }
}

/// A feed wrapper that injects seeded transient failures — the
/// fault-injection stand-in for an unreliable upstream.
#[derive(Debug)]
pub struct FlakyFeed<F> {
    inner: F,
    rng: StdRng,
    failure_prob: f64,
}

impl<F: BlockFeed> FlakyFeed<F> {
    /// Fails each fetch with probability `failure_prob`, deterministic
    /// in `seed`.
    pub fn new(inner: F, failure_prob: f64, seed: u64) -> Self {
        FlakyFeed {
            inner,
            rng: StdRng::seed_from_u64(seed),
            failure_prob,
        }
    }
}

impl<F: BlockFeed> BlockFeed for FlakyFeed<F> {
    fn fetch(&mut self, from: u64, max: u64) -> Result<Vec<Block>, FeedError> {
        if self.rng.gen_bool(self.failure_prob) {
            return Err(FeedError::Transient {
                context: "injected",
            });
        }
        self.inner.fetch(from, max)
    }
}

/// Tuning knobs for a [`TipIngester`].
///
/// `#[non_exhaustive]`: construct with [`IngestConfig::default`] (or
/// the [`IngestConfig::new`] alias) and chain `with_*` setters, so new
/// knobs can be added without breaking callers.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub struct IngestConfig {
    /// Smallest fetch batch (also the size after repeated failures).
    pub min_batch: u64,
    /// Largest fetch batch a healthy feed is drained with.
    pub max_batch: u64,
    /// Sleep between fetches while caught up with the feed.
    pub poll: Duration,
    /// Base backoff after a transient feed failure; doubles per
    /// consecutive failure up to `max_backoff`, plus seeded jitter of
    /// up to half the current backoff.
    pub backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Consecutive transient failures tolerated before the ingester
    /// gives up with [`IngestError::FeedGaveUp`]; `None` retries
    /// forever.
    pub max_consecutive_failures: Option<u32>,
    /// Seed of the retry jitter.
    pub seed: u64,
    /// Deepest reorg the pipeline will follow. 0 (the default) keeps
    /// the legacy straight-line contract: any non-linking block is
    /// [`IngestError::BrokenFeed`]. Greater than 0 enables
    /// equivocation mode (see the module docs).
    pub max_reorg_depth: u64,
}

impl Default for IngestConfig {
    /// Batches 4..=64, 2 ms poll, 1 ms base backoff capped at 100 ms,
    /// unlimited retries, seed 0.
    fn default() -> Self {
        IngestConfig {
            min_batch: 4,
            max_batch: 64,
            poll: Duration::from_millis(2),
            backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(100),
            max_consecutive_failures: None,
            seed: 0,
            max_reorg_depth: 0,
        }
    }
}

impl IngestConfig {
    /// Alias for [`IngestConfig::default`], reading better at the head
    /// of a `with_*` chain.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the smallest fetch batch.
    #[must_use]
    pub fn with_min_batch(mut self, min_batch: u64) -> Self {
        self.min_batch = min_batch;
        self
    }

    /// Sets the largest fetch batch.
    #[must_use]
    pub fn with_max_batch(mut self, max_batch: u64) -> Self {
        self.max_batch = max_batch;
        self
    }

    /// Sets the caught-up poll interval.
    #[must_use]
    pub fn with_poll(mut self, poll: Duration) -> Self {
        self.poll = poll;
        self
    }

    /// Sets the base backoff after a transient feed failure.
    #[must_use]
    pub fn with_backoff(mut self, backoff: Duration) -> Self {
        self.backoff = backoff;
        self
    }

    /// Sets the backoff ceiling.
    #[must_use]
    pub fn with_max_backoff(mut self, max_backoff: Duration) -> Self {
        self.max_backoff = max_backoff;
        self
    }

    /// Sets how many consecutive transient failures are tolerated
    /// before [`IngestError::FeedGaveUp`]; `None` retries forever.
    #[must_use]
    pub fn with_max_consecutive_failures(mut self, max: Option<u32>) -> Self {
        self.max_consecutive_failures = max;
        self
    }

    /// Sets the retry-jitter seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the deepest reorg the pipeline will follow (0 disables
    /// equivocation mode).
    #[must_use]
    pub fn with_max_reorg_depth(mut self, depth: u64) -> Self {
        self.max_reorg_depth = depth;
        self
    }
}

/// Point-in-time counters of an ingest pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IngestStats {
    /// Blocks appended to the store (and made visible) by this
    /// ingester — excludes what it found already persisted.
    pub blocks_appended: u64,
    /// Successful append batches.
    pub batches: u64,
    /// Transient feed failures retried.
    pub retries: u64,
    /// The persisted height the ingester resumed from at startup.
    pub resume_height: u64,
    /// The current persisted (and served) tip height.
    pub tip_height: u64,
    /// Whether the last fetch found the feed drained.
    pub caught_up: bool,
    /// Branch switches performed (equivocation mode only): a side
    /// branch out-lengthed the canonical chain and was adopted.
    pub reorgs: u64,
    /// Blocks journaled to the fork sidecar log and stored on side
    /// branches — excludes the canonical appends in
    /// [`IngestStats::blocks_appended`] (blocks a reorg promotes to
    /// canonical stay counted here, not there).
    pub fork_blocks: u64,
    /// Deepest reorg performed (old tip minus fork height).
    pub deepest_reorg: u64,
    /// Announced blocks dropped: linking nowhere the fork tree knows,
    /// or forking beyond the reorg budget.
    pub dropped_blocks: u64,
}

#[derive(Debug, Default)]
struct IngestShared {
    blocks_appended: AtomicU64,
    batches: AtomicU64,
    retries: AtomicU64,
    resume_height: AtomicU64,
    tip_height: AtomicU64,
    caught_up: AtomicBool,
    reorgs: AtomicU64,
    fork_blocks: AtomicU64,
    deepest_reorg: AtomicU64,
    dropped_blocks: AtomicU64,
}

impl IngestShared {
    fn snapshot(&self) -> IngestStats {
        IngestStats {
            blocks_appended: self.blocks_appended.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            resume_height: self.resume_height.load(Ordering::Relaxed),
            tip_height: self.tip_height.load(Ordering::Relaxed),
            caught_up: self.caught_up.load(Ordering::Relaxed),
            reorgs: self.reorgs.load(Ordering::Relaxed),
            fork_blocks: self.fork_blocks.load(Ordering::Relaxed),
            deepest_reorg: self.deepest_reorg.load(Ordering::Relaxed),
            dropped_blocks: self.dropped_blocks.load(Ordering::Relaxed),
        }
    }
}

/// A cloneable, read-only view of a running ingester's counters —
/// attach one to a [`crate::NodeServer`]
/// ([`crate::NodeServer::attach_ingest`]) so
/// [`crate::ServerStats::ingest`] reports ingest progress alongside
/// serving counters.
#[derive(Debug, Clone)]
pub struct IngestMonitor {
    shared: Arc<IngestShared>,
}

impl IngestMonitor {
    /// The current counters.
    pub fn snapshot(&self) -> IngestStats {
        self.shared.snapshot()
    }
}

/// How an ingest pipeline can die.
#[derive(Debug)]
pub enum IngestError {
    /// Appending to the store failed (disk full, I/O error) — fatal,
    /// because durability can no longer lead the served state.
    Store(StoreError),
    /// Extending the chain over the appended blocks failed.
    Chain(ChainError),
    /// A fetched block's `prev_block` does not chain onto the tip; the
    /// offending batch was discarded *before* anything was persisted.
    BrokenFeed {
        /// Height of the first non-linking block.
        height: u64,
    },
    /// More consecutive transient feed failures than
    /// [`IngestConfig::max_consecutive_failures`] tolerates.
    FeedGaveUp {
        /// Consecutive failures observed.
        failures: u32,
    },
    /// The ingest thread panicked.
    Panicked,
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::Store(e) => write!(f, "ingest store append failed: {e}"),
            IngestError::Chain(e) => write!(f, "ingest chain extension failed: {e}"),
            IngestError::BrokenFeed { height } => {
                write!(f, "feed block {height} does not chain onto the tip")
            }
            IngestError::FeedGaveUp { failures } => {
                write!(f, "feed failed {failures} consecutive times")
            }
            IngestError::Panicked => write!(f, "ingest thread panicked"),
        }
    }
}

impl std::error::Error for IngestError {}

impl From<StoreError> for IngestError {
    fn from(e: StoreError) -> Self {
        IngestError::Store(e)
    }
}

impl From<ChainError> for IngestError {
    fn from(e: ChainError) -> Self {
        IngestError::Chain(e)
    }
}

/// The follow-the-tip ingest pipeline. See the module docs.
pub struct TipIngester;

impl TipIngester {
    /// Spawns the ingest thread: fetch from `feed`, append to `store`,
    /// extend `node`.
    ///
    /// `node`'s block source must observe `store`'s appends — the
    /// intended pairing is a [`lvq_store::DiskBlockSource`] over the
    /// same `Arc<BlockStore>` (what [`lvq_store::open_chain`]
    /// produces). The ingester resumes from the store's persisted
    /// height; it never re-appends or skips a block.
    pub fn spawn<S, T, F>(
        node: Arc<LiveNode<S, T>>,
        store: Arc<BlockStore>,
        feed: F,
        config: IngestConfig,
    ) -> IngestHandle
    where
        S: BlockSource + 'static,
        T: TableSource + 'static,
        F: BlockFeed,
    {
        let shared = Arc::new(IngestShared::default());
        let stop = Arc::new(AtomicBool::new(false));
        let thread_shared = Arc::clone(&shared);
        let thread_stop = Arc::clone(&stop);
        let join = std::thread::spawn(move || {
            let ctx = WorkCtx::unsupervised();
            ingest_loop(
                &node,
                &store,
                feed,
                config,
                &thread_shared,
                &thread_stop,
                &ctx,
            )
        });
        IngestHandle {
            stop,
            shared,
            join: Some(join),
        }
    }

    /// Spawns the ingest pipeline under a [`Supervised`] monitor:
    /// panics and fatal errors restart it with seeded backoff (resuming
    /// from the store's persisted height, the same resume rule as a
    /// process restart), a stalled attempt is abandoned and replaced by
    /// the watchdog, and an exhausted restart budget parks the pipeline
    /// as [`crate::HealthState::Failed`].
    ///
    /// `make_feed` builds a fresh feed per attempt — an abandoned
    /// attempt may still be wedged inside its old feed, so feeds are
    /// never shared across attempts. Wire the returned handle's
    /// [`SupervisedIngest::health`] into a server with
    /// [`crate::NodeServer::watch_health`].
    pub fn spawn_supervised<S, T, F, M>(
        node: Arc<LiveNode<S, T>>,
        store: Arc<BlockStore>,
        make_feed: M,
        config: IngestConfig,
        supervisor: SupervisorConfig,
    ) -> SupervisedIngest
    where
        S: BlockSource + 'static,
        T: TableSource + 'static,
        F: BlockFeed,
        M: Fn() -> F + Send + Sync + 'static,
    {
        let shared = Arc::new(IngestShared::default());
        let health = HealthCell::new();
        let restarts = Arc::new(AtomicU64::new(0));
        let body_shared = Arc::clone(&shared);
        let task = Supervised::spawn(
            INGEST_SPEC,
            supervisor,
            health.clone(),
            restarts,
            move |ctx| {
                let feed = make_feed();
                let stop = Arc::clone(ctx.stop_flag());
                ingest_loop(&node, &store, feed, config, &body_shared, &stop, &ctx)
                    .map_err(|e| e.to_string())
            },
        );
        SupervisedIngest {
            shared,
            health,
            task,
        }
    }
}

/// Controls a supervised ingest pipeline
/// ([`TipIngester::spawn_supervised`]); dropping it stops the
/// supervisor and the current attempt.
#[derive(Debug)]
pub struct SupervisedIngest {
    shared: Arc<IngestShared>,
    health: HealthCell,
    task: Supervised,
}

impl SupervisedIngest {
    /// Live counters (cumulative across restarts — the counters belong
    /// to the pipeline, not to any one attempt).
    pub fn stats(&self) -> IngestStats {
        self.shared.snapshot()
    }

    /// A cloneable counters view for [`crate::NodeServer::attach_ingest`].
    pub fn monitor(&self) -> IngestMonitor {
        IngestMonitor {
            shared: Arc::clone(&self.shared),
        }
    }

    /// The pipeline's health cell, for
    /// [`crate::NodeServer::watch_health`].
    pub fn health(&self) -> &HealthCell {
        &self.health
    }

    /// Restarts the supervisor has performed.
    pub fn restarts(&self) -> u64 {
        self.task.restarts()
    }

    /// Whether the supervisor is still keeping the pipeline alive
    /// (`false` once it gave up or finished a clean stop).
    pub fn is_running(&self) -> bool {
        self.task.is_running()
    }

    /// Stops the pipeline (bounded even if an attempt is wedged) and
    /// returns the final counters.
    pub fn stop(mut self) -> IngestStats {
        self.task.shutdown();
        self.shared.snapshot()
    }
}

/// Controls a running [`TipIngester`]; dropping it stops the thread.
#[derive(Debug)]
pub struct IngestHandle {
    stop: Arc<AtomicBool>,
    shared: Arc<IngestShared>,
    join: Option<JoinHandle<Result<(), IngestError>>>,
}

impl IngestHandle {
    /// Live counters.
    pub fn stats(&self) -> IngestStats {
        self.shared.snapshot()
    }

    /// A cloneable counters view for [`crate::NodeServer::attach_ingest`].
    pub fn monitor(&self) -> IngestMonitor {
        IngestMonitor {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Whether the ingest thread is still running.
    pub fn is_running(&self) -> bool {
        self.join.as_ref().is_some_and(|j| !j.is_finished())
    }

    /// Signals the thread to stop after the in-flight batch, joins it,
    /// and returns the final counters.
    ///
    /// # Errors
    ///
    /// Returns the [`IngestError`] the pipeline died with, if it died
    /// before the stop request.
    pub fn stop(mut self) -> Result<IngestStats, IngestError> {
        self.stop.store(true, Ordering::SeqCst);
        match self.join.take().map(JoinHandle::join) {
            Some(Ok(Ok(()))) | None => Ok(self.shared.snapshot()),
            Some(Ok(Err(e))) => Err(e),
            Some(Err(_)) => Err(IngestError::Panicked),
        }
    }
}

impl Drop for IngestHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

/// Sleeps for `total`, waking early if `stop` is raised.
fn interruptible_sleep(total: Duration, stop: &AtomicBool) {
    let mut remaining = total;
    let chunk = Duration::from_millis(5);
    while !remaining.is_zero() && !stop.load(Ordering::SeqCst) {
        let step = remaining.min(chunk);
        std::thread::sleep(step);
        remaining = remaining.saturating_sub(step);
    }
}

fn ingest_loop<S, T, F>(
    node: &LiveNode<S, T>,
    store: &BlockStore,
    mut feed: F,
    config: IngestConfig,
    shared: &IngestShared,
    stop: &AtomicBool,
    ctx: &WorkCtx,
) -> Result<(), IngestError>
where
    S: BlockSource + 'static,
    T: TableSource + 'static,
    F: BlockFeed,
{
    let min_batch = config.min_batch.max(1);
    let max_batch = config.max_batch.max(min_batch);
    let mut rng = StdRng::seed_from_u64(config.seed);

    // Resume from durability: the store's height is the truth. A chain
    // reassembled from this store is already there; a chain that lags
    // (the store outlived a previous in-memory tip) catches up now.
    let resume = store.len();
    shared.resume_height.store(resume, Ordering::Relaxed);
    shared.tip_height.store(resume, Ordering::Relaxed);
    node.extend_batch(u64::MAX)?;
    node.sync_derived()?;

    // Equivocation mode: a fork tree seeded with the chain's recent
    // headers, and an announcement cursor replacing the height cursor.
    let mut tree = if config.max_reorg_depth > 0 {
        // Startup compaction: journaled fork blocks older than the
        // reorg window can never be re-adopted, so they only cost
        // reopen scans. Dropping them here bounds the sidecar log over
        // a long follow lifetime.
        store.compact_fork_log(config.max_reorg_depth)?;
        Some(seed_tree(node, config.max_reorg_depth)?)
    } else {
        None
    };
    let mut cursor = 1u64;

    let mut batch = min_batch;
    let mut consecutive_failures = 0u32;
    while !stop.load(Ordering::SeqCst) {
        let from = if tree.is_some() {
            cursor
        } else {
            store.len() + 1
        };
        // Heartbeat: entering a fetch/persist round. A hung feed or a
        // wedged append freezes the beat while busy, which is exactly
        // what the supervisor's watchdog looks for.
        ctx.busy();
        let fetched = feed.fetch(from, batch);
        // A stop (or a supervisor abandoning a stalled worker) can
        // land while the feed call was in flight; re-check before
        // persisting anything, so an abandoned ingester never races
        // its replacement's writes.
        if stop.load(Ordering::SeqCst) {
            break;
        }
        match fetched {
            Ok(blocks) if blocks.is_empty() => {
                shared.caught_up.store(true, Ordering::Relaxed);
                consecutive_failures = 0;
                ctx.idle();
                interruptible_sleep(config.poll, stop);
            }
            Ok(blocks) => {
                shared.caught_up.store(false, Ordering::Relaxed);
                consecutive_failures = 0;

                if let Some(tree) = tree.as_mut() {
                    cursor += blocks.len() as u64;
                    absorb_forked(node, store, tree, blocks, shared)?;
                } else {
                    // Validate linkage against the served tip before
                    // the first byte is persisted.
                    let mut prev = node.tip_hash();
                    for (i, block) in blocks.iter().enumerate() {
                        if block.header.prev_block != prev {
                            return Err(IngestError::BrokenFeed {
                                height: from + i as u64,
                            });
                        }
                        prev = block.header.block_hash();
                    }

                    // Durable first, visible second: store, then chain
                    // — and only once the blocks are in the store does
                    // the derived index anchor at the new tip, so the
                    // index can never lead the durable chain.
                    for block in &blocks {
                        store.append(block)?;
                    }
                    node.extend_batch(u64::MAX)?;
                    node.sync_derived()?;
                    shared
                        .blocks_appended
                        .fetch_add(blocks.len() as u64, Ordering::Relaxed);
                }

                shared.batches.fetch_add(1, Ordering::Relaxed);
                shared.tip_height.store(store.len(), Ordering::Relaxed);
                batch = batch.saturating_mul(2).min(max_batch);
            }
            Err(FeedError::Transient { .. }) => {
                shared.caught_up.store(false, Ordering::Relaxed);
                shared.retries.fetch_add(1, Ordering::Relaxed);
                consecutive_failures += 1;
                if let Some(limit) = config.max_consecutive_failures {
                    if consecutive_failures > limit {
                        return Err(IngestError::FeedGaveUp {
                            failures: consecutive_failures,
                        });
                    }
                }
                batch = (batch / 2).max(min_batch);
                let exp = consecutive_failures.saturating_sub(1).min(10);
                let base = config
                    .backoff
                    .saturating_mul(1u32 << exp)
                    .min(config.max_backoff);
                let jitter_us = (base.as_micros() / 2) as u64;
                let jitter = Duration::from_micros(if jitter_us == 0 {
                    0
                } else {
                    rng.gen_range(0..=jitter_us)
                });
                ctx.idle();
                interruptible_sleep(base + jitter, stop);
            }
        }
    }
    Ok(())
}

/// A fork tree whose canonical window holds the chain's most recent
/// headers — enough to classify any fork within the reorg budget.
fn seed_tree<S, T>(node: &LiveNode<S, T>, max_reorg_depth: u64) -> Result<ForkTree, IngestError>
where
    S: BlockSource + 'static,
    T: TableSource + 'static,
{
    let mut tree = ForkTree::new(max_reorg_depth);
    let tip = node.tip_height();
    let lo = tip.saturating_sub(2 * max_reorg_depth + 1);
    node.with_node(|n| {
        for height in lo..=tip {
            tree.advance(height, n.chain().hash_at(height)?);
        }
        Ok::<_, ChainError>(())
    })?;
    Ok(tree)
}

/// One equivocation-mode batch: classify every announced block through
/// the fork tree, appending canonical extensions durable-first,
/// journaling fork blocks to the sidecar log, and reorging when a
/// branch wins the longest-chain rule.
fn absorb_forked<S, T>(
    node: &LiveNode<S, T>,
    store: &BlockStore,
    tree: &mut ForkTree,
    blocks: Vec<Block>,
    shared: &IngestShared,
) -> Result<(), IngestError>
where
    S: BlockSource + 'static,
    T: TableSource + 'static,
{
    for block in blocks {
        let block = Arc::new(block);
        match tree.observe(Arc::clone(&block)) {
            ForkEvent::ExtendsCanonical => {
                store.append(&block)?;
                node.extend_batch(u64::MAX)?;
                tree.advance(node.tip_height(), node.tip_hash());
                shared.blocks_appended.fetch_add(1, Ordering::Relaxed);
            }
            ForkEvent::Stored { branch, best } => {
                let height = tree.branches()[branch].tip_height();
                store.log_fork_block(height, &block)?;
                shared.fork_blocks.fetch_add(1, Ordering::Relaxed);
                if best {
                    reorg_to_branch(node, store, tree, branch, shared)?;
                }
            }
            ForkEvent::Duplicate => {}
            ForkEvent::TooDeep { .. } | ForkEvent::Unknown => {
                shared.dropped_blocks.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
    node.sync_derived()?;
    Ok(())
}

/// Switches the live node onto winning branch `idx`: journals the
/// about-to-be-displaced canonical suffix to the fork sidecar (so both
/// sides of the fork survive on disk), reorgs the node under its write
/// lock — which truncates the store to the fork point and re-appends
/// the branch, keeping the store the leading truth — and finally tells
/// the tree the branch is canonical now, keeping the old suffix
/// adoptable in case the network reorgs straight back.
fn reorg_to_branch<S, T>(
    node: &LiveNode<S, T>,
    store: &BlockStore,
    tree: &mut ForkTree,
    idx: usize,
    shared: &IngestShared,
) -> Result<(), IngestError>
where
    S: BlockSource + 'static,
    T: TableSource + 'static,
{
    let branch = tree.branches()[idx].clone();
    let fork_height = branch.fork_height;
    let old_tip = node.tip_height();
    let mut old_suffix = Vec::with_capacity((old_tip - fork_height) as usize);
    node.with_node(|n| {
        for height in fork_height + 1..=old_tip {
            old_suffix.push(n.chain().block(height)?);
        }
        Ok::<_, ChainError>(())
    })?;
    for (i, block) in old_suffix.iter().enumerate() {
        store.log_fork_block(fork_height + 1 + i as u64, block)?;
    }

    node.reorg_to(fork_height, &branch.blocks)?;
    tree.adopt(idx, old_suffix);

    shared.reorgs.fetch_add(1, Ordering::Relaxed);
    shared
        .deepest_reorg
        .fetch_max(old_tip - fork_height, Ordering::Relaxed);
    Ok(())
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use lvq_chain::Address;

    use super::*;
    use crate::testutil::live_fixture;

    fn fast_config() -> IngestConfig {
        IngestConfig {
            min_batch: 2,
            max_batch: 8,
            poll: Duration::from_micros(200),
            backoff: Duration::from_micros(100),
            max_backoff: Duration::from_millis(2),
            ..IngestConfig::default()
        }
    }

    fn wait_for_tip(live: &LiveNode<lvq_store::DiskBlockSource>, tip: u64) {
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while live.tip_height() < tip {
            assert!(
                std::time::Instant::now() < deadline,
                "ingester never reached height {tip} (at {})",
                live.tip_height()
            );
            std::thread::sleep(Duration::from_micros(200));
        }
    }

    #[test]
    fn follows_a_progressively_published_feed() {
        let fixture = live_fixture("ingest-follow", 0, 24);
        let feed = MemoryFeed::new(fixture.blocks.clone());
        let publisher = feed.publisher();
        let handle = TipIngester::spawn(
            Arc::clone(&fixture.live),
            Arc::clone(&fixture.store),
            feed,
            fast_config(),
        );

        // Publish in dribs and drabs; the ingester follows each step.
        for step in [3u64, 1, 7, 5, 8] {
            let published = publisher.publish(step);
            wait_for_tip(&fixture.live, published);
        }
        assert_eq!(publisher.published(), 24);
        wait_for_tip(&fixture.live, 24);

        let stats = handle.stop().expect("clean pipeline");
        assert_eq!(stats.blocks_appended, 24);
        assert_eq!(stats.resume_height, 0);
        assert_eq!(stats.tip_height, 24);
        assert!(stats.batches >= 5, "at least one batch per publish step");
        assert_eq!(stats.retries, 0);
        assert_eq!(fixture.store.len(), 24);
        assert_eq!(fixture.store.verify_all().unwrap(), 24);

        // The served chain is byte-identical to ground truth.
        fixture.live.with_node(|node| {
            for (i, block) in fixture.blocks.iter().enumerate() {
                assert_eq!(&*node.chain().block(i as u64 + 1).unwrap(), block);
            }
        });
    }

    #[test]
    fn rides_out_transient_feed_failures() {
        let fixture = live_fixture("ingest-flaky", 0, 20);
        let inner = MemoryFeed::new(fixture.blocks.clone());
        inner.publisher().publish_all();
        let feed = FlakyFeed::new(inner, 0.4, 7);
        let handle = TipIngester::spawn(
            Arc::clone(&fixture.live),
            Arc::clone(&fixture.store),
            feed,
            fast_config(),
        );
        wait_for_tip(&fixture.live, 20);
        let stats = handle.stop().expect("transients are survivable");
        assert_eq!(stats.blocks_appended, 20);
        assert!(stats.retries > 0, "a 40% failure rate must be observed");
        assert_eq!(fixture.store.verify_all().unwrap(), 20);
    }

    #[test]
    fn gives_up_after_the_failure_budget() {
        let fixture = live_fixture("ingest-giveup", 0, 4);
        let feed = FlakyFeed::new(MemoryFeed::new(fixture.blocks.clone()), 1.0, 1);
        let config = IngestConfig {
            max_consecutive_failures: Some(3),
            ..fast_config()
        };
        let handle = TipIngester::spawn(
            Arc::clone(&fixture.live),
            Arc::clone(&fixture.store),
            feed,
            config,
        );
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while handle.is_running() && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        match handle.stop() {
            Err(IngestError::FeedGaveUp { failures: 4 }) => {}
            other => panic!("expected FeedGaveUp after 4 failures, got {other:?}"),
        }
        assert_eq!(fixture.store.len(), 0, "nothing was persisted");
    }

    #[test]
    fn rejects_a_feed_that_breaks_the_chain() {
        let fixture = live_fixture("ingest-broken", 3, 10);
        let mut blocks = fixture.blocks.clone();
        // Corrupt the linkage of the first block past the tip.
        blocks[3].header.prev_block = lvq_crypto::Hash256::ZERO;
        let feed = MemoryFeed::new(blocks);
        feed.publisher().publish_all();
        let handle = TipIngester::spawn(
            Arc::clone(&fixture.live),
            Arc::clone(&fixture.store),
            feed,
            fast_config(),
        );
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while handle.is_running() && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        match handle.stop() {
            Err(IngestError::BrokenFeed { height: 4 }) => {}
            other => panic!("expected BrokenFeed at height 4, got {other:?}"),
        }
        // The poisoned batch never touched the store or the chain.
        assert_eq!(fixture.store.len(), 3);
        assert_eq!(fixture.live.tip_height(), 3);
    }

    #[test]
    fn adopts_a_longer_fork_and_reorgs_the_served_chain() {
        let fixture = live_fixture("ingest-reorg", 0, 8);
        let rival = crate::testutil::rival_chain(5, 10);

        // Announcement script: the canonical chain 1..=8 first, then a
        // rival branch forked off height 5 overtaking it at height 9.
        let mut script = fixture.blocks.clone();
        script.extend(rival[5..].iter().cloned());
        let feed = MemoryFeed::new(script);
        feed.publisher().publish_all();

        let config = fast_config().with_max_reorg_depth(4);
        let handle = TipIngester::spawn(
            Arc::clone(&fixture.live),
            Arc::clone(&fixture.store),
            feed,
            config,
        );
        // Height 10 only exists on the rival branch, so reaching it
        // proves the reorg happened.
        wait_for_tip(&fixture.live, 10);
        let stats = handle.stop().expect("clean pipeline");

        assert_eq!(stats.reorgs, 1);
        assert_eq!(stats.deepest_reorg, 3, "old tip 8 back to fork height 5");
        // Rival 6..=9 arrived as fork blocks; rival 10 extended the
        // already-reorged canonical chain.
        assert_eq!(stats.fork_blocks, 4);
        assert_eq!(stats.blocks_appended, 8 + 1);
        assert_eq!(stats.dropped_blocks, 0);
        assert_eq!(stats.tip_height, 10);

        // The store is the reorged chain, every record intact, and the
        // fork sidecar holds both sides: rival 6..=9 (journaled on
        // arrival) plus the displaced canonical 6..=8.
        assert_eq!(fixture.store.len(), 10);
        assert_eq!(fixture.store.verify_all().unwrap(), 10);
        let fork_log = fixture.store.fork_log().unwrap();
        assert_eq!(fork_log.len(), 4 + 3);

        // The served chain is byte-identical to the rival ground truth.
        assert_eq!(fixture.live.tip_hash(), rival[9].header.block_hash());
        fixture.live.with_node(|node| {
            for (i, block) in rival.iter().enumerate() {
                assert_eq!(&*node.chain().block(i as u64 + 1).unwrap(), block);
            }
            assert_eq!(node.chain().history_of(&Address::new("1Rival")).len(), 5);
            assert_eq!(node.chain().history_of(&Address::new("1Miner")).len(), 5);
            node.chain().validate().expect("post-reorg chain validates");
        });
    }

    #[test]
    fn reorgs_back_when_the_old_branch_overtakes_again() {
        let fixture = live_fixture("ingest-reorg-back", 0, 9);
        let rival = crate::testutil::rival_chain(5, 8);

        // Canonical 1..=7 arrives, the rival (forked off 5) overtakes
        // at 8, then the original chain's 8..=9 win the tip back.
        let mut script: Vec<Block> = fixture.blocks[..7].to_vec();
        script.extend(rival[5..].iter().cloned());
        script.extend(fixture.blocks[7..].iter().cloned());
        let feed = MemoryFeed::new(script);
        feed.publisher().publish_all();

        let config = fast_config().with_max_reorg_depth(4);
        let handle = TipIngester::spawn(
            Arc::clone(&fixture.live),
            Arc::clone(&fixture.store),
            feed,
            config,
        );
        wait_for_tip(&fixture.live, 9);
        let stats = handle.stop().expect("clean pipeline");

        assert_eq!(stats.reorgs, 2, "there and back again");
        assert_eq!(stats.tip_height, 9);
        assert_eq!(fixture.store.verify_all().unwrap(), 9);
        assert_eq!(
            fixture.live.tip_hash(),
            fixture.blocks[8].header.block_hash(),
            "the original chain won in the end"
        );
        fixture.live.with_node(|node| {
            assert!(node.chain().history_of(&Address::new("1Rival")).is_empty());
            assert_eq!(node.chain().history_of(&Address::new("1Miner")).len(), 9);
            node.chain().validate().expect("post-reorg chain validates");
        });
    }

    #[test]
    fn resumes_from_the_persisted_height_after_a_stop() {
        let fixture = live_fixture("ingest-resume", 0, 30);
        let feed = MemoryFeed::new(fixture.blocks.clone());
        let publisher = feed.publisher();
        publisher.publish(17);
        let handle = TipIngester::spawn(
            Arc::clone(&fixture.live),
            Arc::clone(&fixture.store),
            feed.clone(),
            fast_config(),
        );
        wait_for_tip(&fixture.live, 17);
        let stats = handle.stop().expect("clean stop mid-stream");
        assert_eq!(stats.blocks_appended, 17);

        // "Restart": let every handle on the store go (the last drop
        // syncs the index), then reopen from disk, reassemble the
        // chain, and spawn a fresh ingester over the same feed.
        let crate::testutil::LiveFixture {
            scratch,
            live,
            store,
            blocks,
            ..
        } = fixture;
        drop(live);
        drop(store);
        let (chain, report) =
            lvq_store::open_chain(scratch.path(), lvq_store::StoreConfig::default()).unwrap();
        assert!(report.is_clean(), "clean stop leaves a clean store");
        assert_eq!(
            chain.tip_height(),
            17,
            "reassembled at the persisted height"
        );
        let store = Arc::clone(chain.source().store());
        let live = Arc::new(LiveNode::new(crate::FullNode::new(chain).unwrap()));
        publisher.publish_all();
        let handle = TipIngester::spawn(Arc::clone(&live), store.clone(), feed, fast_config());
        wait_for_tip(&live, 30);
        let stats = handle.stop().expect("clean pipeline");

        // Resumed exactly where durability left off: 13 new blocks, no
        // duplicates, no gaps, every record intact.
        assert_eq!(stats.resume_height, 17);
        assert_eq!(stats.blocks_appended, 13);
        assert_eq!(store.len(), 30);
        assert_eq!(store.verify_all().unwrap(), 30);
        live.with_node(|node| {
            for (i, block) in blocks.iter().enumerate() {
                assert_eq!(&*node.chain().block(i as u64 + 1).unwrap(), block);
            }
            let history = node.chain().history_of(&Address::new("1Miner"));
            assert_eq!(history.len(), 30);
        });
    }
}
