//! RPC message envelope and node-level errors.

use std::error::Error;
use std::fmt;

use lvq_chain::{Address, BlockHeader};
use lvq_codec::{Decodable, DecodeError, Encodable, Reader};
use lvq_core::{BatchQueryResponse, ProveError, QueryError, QueryResponse};

/// The wire protocol between a light node and a full node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// Ask for all headers (initial light-node sync).
    GetHeaders,
    /// All headers, height 1 first.
    Headers(Vec<BlockHeader>),
    /// Ask for the verifiable transaction history of an address,
    /// optionally restricted to a block-height range.
    QueryRequest {
        /// The requested address (the paper's RA).
        address: Address,
        /// `Some((lo, hi))` restricts the query to blocks `lo..=hi`;
        /// `None` queries the whole chain.
        range: Option<(u64, u64)>,
    },
    /// The scheme-specific proof bundle.
    QueryResponse(Box<QueryResponse>),
    /// Ask for the verifiable histories of several addresses in one
    /// round trip (always non-empty), optionally restricted to a
    /// block-height range.
    BatchQueryRequest {
        /// The requested addresses, in response-section order.
        addresses: Vec<Address>,
        /// `Some((lo, hi))` restricts the batch to blocks `lo..=hi`;
        /// `None` queries the whole chain.
        range: Option<(u64, u64)>,
    },
    /// The batched proof bundle: shared BMT descents (or shared
    /// per-block filters) plus one fragment section per address.
    BatchQueryResponse(Box<BatchQueryResponse>),
}

const TAG_GET_HEADERS: u8 = 0;
const TAG_HEADERS: u8 = 1;
const TAG_QUERY_REQ: u8 = 2;
const TAG_QUERY_RESP: u8 = 3;
const TAG_BATCH_QUERY_REQ: u8 = 4;
const TAG_BATCH_QUERY_RESP: u8 = 5;

impl Encodable for Message {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            Message::GetHeaders => out.push(TAG_GET_HEADERS),
            Message::Headers(headers) => {
                out.push(TAG_HEADERS);
                headers.encode_into(out);
            }
            Message::QueryRequest { address, range } => {
                out.push(TAG_QUERY_REQ);
                address.encode_into(out);
                range.encode_into(out);
            }
            Message::QueryResponse(response) => {
                out.push(TAG_QUERY_RESP);
                response.encode_into(out);
            }
            Message::BatchQueryRequest { addresses, range } => {
                out.push(TAG_BATCH_QUERY_REQ);
                addresses.encode_into(out);
                range.encode_into(out);
            }
            Message::BatchQueryResponse(response) => {
                out.push(TAG_BATCH_QUERY_RESP);
                response.encode_into(out);
            }
        }
    }

    fn encoded_len(&self) -> usize {
        1 + match self {
            Message::GetHeaders => 0,
            Message::Headers(headers) => headers.encoded_len(),
            Message::QueryRequest { address, range } => address.encoded_len() + range.encoded_len(),
            Message::QueryResponse(response) => response.encoded_len(),
            Message::BatchQueryRequest { addresses, range } => {
                addresses.encoded_len() + range.encoded_len()
            }
            Message::BatchQueryResponse(response) => response.encoded_len(),
        }
    }
}

impl Decodable for Message {
    fn decode_from(reader: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(match reader.read_u8()? {
            TAG_GET_HEADERS => Message::GetHeaders,
            TAG_HEADERS => Message::Headers(Vec::<BlockHeader>::decode_from(reader)?),
            TAG_QUERY_REQ => Message::QueryRequest {
                address: Address::decode_from(reader)?,
                range: Option::<(u64, u64)>::decode_from(reader)?,
            },
            TAG_QUERY_RESP => Message::QueryResponse(Box::new(QueryResponse::decode_from(reader)?)),
            TAG_BATCH_QUERY_REQ => Message::BatchQueryRequest {
                addresses: Vec::<Address>::decode_from(reader)?,
                range: Option::<(u64, u64)>::decode_from(reader)?,
            },
            TAG_BATCH_QUERY_RESP => {
                Message::BatchQueryResponse(Box::new(BatchQueryResponse::decode_from(reader)?))
            }
            other => {
                return Err(DecodeError::InvalidValue {
                    what: "message tag",
                    found: u64::from(other),
                })
            }
        })
    }
}

/// Errors surfaced by the node layer.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NodeError {
    /// A peer sent bytes that do not decode as a [`Message`].
    Wire(DecodeError),
    /// A peer answered with the wrong message kind.
    UnexpectedMessage,
    /// The full node could not produce a response.
    Prove(ProveError),
    /// The light node rejected the response.
    Verify(QueryError),
    /// The full node's chain does not correspond to a known scheme.
    UnknownScheme,
    /// The headers a full node served do not carry the commitments the
    /// light node's out-of-band scheme configuration requires — the
    /// peer is on a different scheme (or lying about it).
    ConfigMismatch {
        /// Height of the first non-conforming header.
        height: u64,
    },
    /// A transport-level I/O operation failed.
    ///
    /// Carries the [`std::io::ErrorKind`] rather than the
    /// [`std::io::Error`] itself so the error stays `Clone + PartialEq`
    /// like every other node error.
    Io {
        /// What the transport was doing (e.g. `"connect"`).
        context: &'static str,
        /// The kind of I/O failure.
        kind: std::io::ErrorKind,
    },
    /// A peer announced a frame longer than the transport accepts —
    /// either a protocol violation or a resource-exhaustion attempt.
    FrameTooLarge {
        /// The announced payload length.
        len: u64,
        /// The transport's limit.
        max: u64,
    },
    /// The connection closed in the middle of a frame.
    Disconnected {
        /// What the transport was doing when the peer vanished.
        context: &'static str,
    },
}

impl fmt::Display for NodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeError::Wire(e) => write!(f, "wire decode error: {e}"),
            NodeError::UnexpectedMessage => f.write_str("peer sent an unexpected message kind"),
            NodeError::Prove(e) => write!(f, "prover failed: {e}"),
            NodeError::Verify(e) => write!(f, "verification failed: {e}"),
            NodeError::UnknownScheme => f.write_str("chain matches no known scheme"),
            NodeError::ConfigMismatch { height } => write!(
                f,
                "header {height} does not carry the commitments the configured scheme requires"
            ),
            NodeError::Io { context, kind } => {
                write!(f, "transport i/o failed ({context}): {kind}")
            }
            NodeError::FrameTooLarge { len, max } => {
                write!(f, "peer announced a {len}-byte frame (limit {max})")
            }
            NodeError::Disconnected { context } => {
                write!(f, "peer disconnected mid-frame ({context})")
            }
        }
    }
}

impl Error for NodeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NodeError::Wire(e) => Some(e),
            NodeError::Prove(e) => Some(e),
            NodeError::Verify(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DecodeError> for NodeError {
    fn from(e: DecodeError) -> Self {
        NodeError::Wire(e)
    }
}

impl From<ProveError> for NodeError {
    fn from(e: ProveError) -> Self {
        NodeError::Prove(e)
    }
}

impl From<QueryError> for NodeError {
    fn from(e: QueryError) -> Self {
        NodeError::Verify(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lvq_codec::decode_exact;

    #[test]
    fn message_roundtrip() {
        let messages = vec![
            Message::GetHeaders,
            Message::Headers(Vec::new()),
            Message::QueryRequest {
                address: Address::new("1Probe"),
                range: None,
            },
            Message::QueryRequest {
                address: Address::new("1Probe"),
                range: Some((3, 17)),
            },
            Message::BatchQueryRequest {
                addresses: vec![Address::new("1Probe"), Address::new("1Other")],
                range: None,
            },
            Message::BatchQueryRequest {
                addresses: vec![Address::new("1Probe")],
                range: Some((2, 9)),
            },
        ];
        for m in messages {
            let bytes = m.encode();
            assert_eq!(bytes.len(), m.encoded_len());
            assert_eq!(decode_exact::<Message>(&bytes).unwrap(), m);
        }
    }

    #[test]
    fn bad_tag_rejected() {
        assert!(decode_exact::<Message>(&[200]).is_err());
    }
}
