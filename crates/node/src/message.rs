//! RPC message envelope and node-level errors.
//!
//! Every encoded [`Message`] begins with a one-byte protocol version
//! ([`PROTOCOL_VERSION`]) followed by a one-byte message tag. The
//! version byte lives in the *payload*, not the transport frame
//! header, so both the in-process and the TCP transport carry it and
//! `Traffic` accounting stays byte-identical across transports. A
//! server that receives an unsupported version or an unknown tag
//! answers with a structured [`Message::Error`] instead of dropping
//! the connection.

use std::error::Error;
use std::fmt;
use std::time::Duration;

use lvq_chain::{Address, BlockHeader};
use lvq_codec::{decode_exact, Decodable, DecodeError, Encodable, Reader};
use lvq_core::{BatchQueryResponse, ProveError, QueryError, QueryResponse};
use lvq_crypto::Hash256;

/// The wire-protocol version every encoded [`Message`] is prefixed
/// with. Bump on any incompatible change to the message layout.
pub const PROTOCOL_VERSION: u8 = 1;

/// The pipelined wire-protocol version: the same tag + body layout as
/// v1, but with a little-endian `u64` request id between the version
/// byte and the tag, so several requests can be in flight on one
/// connection and responses can arrive out of order. See [`envelope`].
pub const PROTOCOL_V2: u8 = 2;

/// The wire protocol between a light node and a full node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// Ask for all headers (initial light-node sync).
    GetHeaders,
    /// All headers, height 1 first.
    Headers(Vec<BlockHeader>),
    /// Ask for the verifiable transaction history of an address,
    /// optionally restricted to a block-height range.
    QueryRequest {
        /// The requested address (the paper's RA).
        address: Address,
        /// `Some((lo, hi))` restricts the query to blocks `lo..=hi`;
        /// `None` queries the whole chain.
        range: Option<(u64, u64)>,
    },
    /// The scheme-specific proof bundle.
    QueryResponse(Box<QueryResponse>),
    /// Ask for the verifiable histories of several addresses in one
    /// round trip (always non-empty), optionally restricted to a
    /// block-height range.
    BatchQueryRequest {
        /// The requested addresses, in response-section order.
        addresses: Vec<Address>,
        /// `Some((lo, hi))` restricts the batch to blocks `lo..=hi`;
        /// `None` queries the whole chain.
        range: Option<(u64, u64)>,
    },
    /// The batched proof bundle: shared BMT descents (or shared
    /// per-block filters) plus one fragment section per address.
    BatchQueryResponse(Box<BatchQueryResponse>),
    /// Ask only for the headers at heights strictly above `height`
    /// (incremental sync for a long-lived light client). The client
    /// pins the request to its own header at `height` so a server on a
    /// different fork answers [`Message::HeadersDiverged`] instead of a
    /// tail that silently grafts onto the wrong prefix.
    GetHeadersFrom {
        /// The client's probe height; the response continues from
        /// `height + 1`.
        height: u64,
        /// The block hash of the client's header at `height`
        /// ([`lvq_crypto::Hash256::ZERO`] when `height` is 0, where
        /// every chain agrees).
        tip_hash: Hash256,
    },
    /// The server's accept queue is full; retry later. Sent instead of
    /// letting the connection hang when the worker pool sheds load.
    Busy,
    /// A structured server-side refusal: the request was received but
    /// cannot be answered (bad version, unknown tag, malformed
    /// payload, missed deadline, ...). The connection stays open.
    Error(WireError),
    /// Feature negotiation, sent by a v2 client as the first frame on
    /// a connection (inside a v2 [`envelope`]): the client proposes how
    /// many requests it wants in flight. A v1 client never sends this,
    /// which is exactly how a v2 server detects it and falls back to
    /// one-in-flight compatibility mode.
    Hello(HelloInfo),
    /// The server's answer to [`Message::Hello`]: the *negotiated*
    /// in-flight cap (`min(client proposal, server cap)`, at least 1)
    /// and the feature bits both sides share.
    HelloAck(HelloInfo),
    /// The server's header at the probed height is not the one the
    /// client pinned in [`Message::GetHeadersFrom`] — the two sit on
    /// different forks. The client walks its probe downward (bounded
    /// by its reorg budget) until the chains agree.
    HeadersDiverged {
        /// The probed height whose header did not match; the fork
        /// point lies strictly below it.
        fork_height: u64,
    },
    /// The server's tip is below the probed height, so it cannot judge
    /// agreement there — the peer is simply behind.
    PeerBehind {
        /// The server's current tip height.
        tip_height: u64,
    },
}

/// The body of [`Message::Hello`] / [`Message::HelloAck`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HelloInfo {
    /// Requests the sender wants (Hello) or grants (HelloAck) in
    /// flight on this connection at once.
    pub max_in_flight: u32,
    /// Feature bit set; no bits are defined yet, so both sides send 0
    /// and ignore unknown bits (forward compatibility).
    pub features: u64,
}

impl Encodable for HelloInfo {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.max_in_flight.encode_into(out);
        self.features.encode_into(out);
    }

    fn encoded_len(&self) -> usize {
        self.max_in_flight.encoded_len() + self.features.encoded_len()
    }
}

impl Decodable for HelloInfo {
    fn decode_from(reader: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(HelloInfo {
            max_in_flight: u32::decode_from(reader)?,
            features: u64::decode_from(reader)?,
        })
    }
}

const TAG_GET_HEADERS: u8 = 0;
const TAG_HEADERS: u8 = 1;
const TAG_QUERY_REQ: u8 = 2;
const TAG_QUERY_RESP: u8 = 3;
const TAG_BATCH_QUERY_REQ: u8 = 4;
const TAG_BATCH_QUERY_RESP: u8 = 5;
const TAG_GET_HEADERS_FROM: u8 = 6;
const TAG_BUSY: u8 = 7;
const TAG_ERROR: u8 = 8;
const TAG_HELLO: u8 = 9;
const TAG_HELLO_ACK: u8 = 10;
const TAG_HEADERS_DIVERGED: u8 = 11;
const TAG_PEER_BEHIND: u8 = 12;

/// Why a server refused a request, carried inside [`Message::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum WireErrorCode {
    /// The request's protocol-version byte is not one this server
    /// speaks; `detail` is the offending version.
    UnsupportedVersion = 0,
    /// The request's message tag is not one this server knows;
    /// `detail` is the offending tag.
    UnknownTag = 1,
    /// The version and tag were fine but the payload body did not
    /// decode.
    Malformed = 2,
    /// The message decoded but is a response kind, not a request.
    UnexpectedKind = 3,
    /// A well-formed request the prover could not answer.
    Unanswerable = 4,
    /// The response was ready only after the server's per-request
    /// deadline had passed, so the payload was withheld.
    DeadlineExceeded = 5,
    /// A pipelined (v2) request reused a request id that is still in
    /// flight on the same connection; `detail` is the offending id.
    DuplicateRequestId = 6,
    /// The request handler panicked inside the server. The panic was
    /// contained to this one request — the connection and the process
    /// both survive — but the request itself is not retryable: the
    /// same bytes would poison the handler again.
    Internal = 7,
}

impl WireErrorCode {
    fn from_u8(value: u8) -> Option<Self> {
        Some(match value {
            0 => WireErrorCode::UnsupportedVersion,
            1 => WireErrorCode::UnknownTag,
            2 => WireErrorCode::Malformed,
            3 => WireErrorCode::UnexpectedKind,
            4 => WireErrorCode::Unanswerable,
            5 => WireErrorCode::DeadlineExceeded,
            6 => WireErrorCode::DuplicateRequestId,
            7 => WireErrorCode::Internal,
            _ => return None,
        })
    }
}

impl fmt::Display for WireErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            WireErrorCode::UnsupportedVersion => "unsupported protocol version",
            WireErrorCode::UnknownTag => "unknown message tag",
            WireErrorCode::Malformed => "malformed payload",
            WireErrorCode::UnexpectedKind => "unexpected message kind",
            WireErrorCode::Unanswerable => "unanswerable request",
            WireErrorCode::DeadlineExceeded => "request deadline exceeded",
            WireErrorCode::DuplicateRequestId => "duplicate in-flight request id",
            WireErrorCode::Internal => "internal server error (request handler panicked)",
        })
    }
}

/// A structured server-side refusal: a coarse [`WireErrorCode`] plus
/// one code-specific detail value (offending version byte, offending
/// tag, ... — zero when the code has nothing to pin down).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WireError {
    /// What went wrong.
    pub code: WireErrorCode,
    /// Code-specific detail (offending byte value, zero otherwise).
    pub detail: u64,
}

impl WireError {
    /// A refusal with no meaningful detail value.
    pub fn new(code: WireErrorCode) -> Self {
        WireError { code, detail: 0 }
    }

    /// A refusal pinning down the offending value.
    pub fn with_detail(code: WireErrorCode, detail: u64) -> Self {
        WireError { code, detail }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.code {
            WireErrorCode::UnsupportedVersion
            | WireErrorCode::UnknownTag
            | WireErrorCode::DuplicateRequestId => {
                write!(f, "{} ({})", self.code, self.detail)
            }
            _ => self.code.fmt(f),
        }
    }
}

impl Encodable for WireError {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.push(self.code as u8);
        self.detail.encode_into(out);
    }

    fn encoded_len(&self) -> usize {
        1 + self.detail.encoded_len()
    }
}

impl Decodable for WireError {
    fn decode_from(reader: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let raw = reader.read_u8()?;
        let code = WireErrorCode::from_u8(raw).ok_or(DecodeError::InvalidValue {
            what: "wire error code",
            found: u64::from(raw),
        })?;
        Ok(WireError {
            code,
            detail: u64::decode_from(reader)?,
        })
    }
}

impl Encodable for Message {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.push(PROTOCOL_VERSION);
        match self {
            Message::GetHeaders => out.push(TAG_GET_HEADERS),
            Message::Headers(headers) => {
                out.push(TAG_HEADERS);
                headers.encode_into(out);
            }
            Message::QueryRequest { address, range } => {
                out.push(TAG_QUERY_REQ);
                address.encode_into(out);
                range.encode_into(out);
            }
            Message::QueryResponse(response) => {
                out.push(TAG_QUERY_RESP);
                response.encode_into(out);
            }
            Message::BatchQueryRequest { addresses, range } => {
                out.push(TAG_BATCH_QUERY_REQ);
                addresses.encode_into(out);
                range.encode_into(out);
            }
            Message::BatchQueryResponse(response) => {
                out.push(TAG_BATCH_QUERY_RESP);
                response.encode_into(out);
            }
            Message::GetHeadersFrom { height, tip_hash } => {
                out.push(TAG_GET_HEADERS_FROM);
                height.encode_into(out);
                tip_hash.encode_into(out);
            }
            Message::Busy => out.push(TAG_BUSY),
            Message::Error(error) => {
                out.push(TAG_ERROR);
                error.encode_into(out);
            }
            Message::Hello(info) => {
                out.push(TAG_HELLO);
                info.encode_into(out);
            }
            Message::HelloAck(info) => {
                out.push(TAG_HELLO_ACK);
                info.encode_into(out);
            }
            Message::HeadersDiverged { fork_height } => {
                out.push(TAG_HEADERS_DIVERGED);
                fork_height.encode_into(out);
            }
            Message::PeerBehind { tip_height } => {
                out.push(TAG_PEER_BEHIND);
                tip_height.encode_into(out);
            }
        }
    }

    fn encoded_len(&self) -> usize {
        2 + match self {
            Message::GetHeaders | Message::Busy => 0,
            Message::Headers(headers) => headers.encoded_len(),
            Message::QueryRequest { address, range } => address.encoded_len() + range.encoded_len(),
            Message::QueryResponse(response) => response.encoded_len(),
            Message::BatchQueryRequest { addresses, range } => {
                addresses.encoded_len() + range.encoded_len()
            }
            Message::BatchQueryResponse(response) => response.encoded_len(),
            Message::GetHeadersFrom { height, tip_hash } => {
                height.encoded_len() + tip_hash.encoded_len()
            }
            Message::Error(error) => error.encoded_len(),
            Message::Hello(info) | Message::HelloAck(info) => info.encoded_len(),
            Message::HeadersDiverged {
                fork_height: height,
            }
            | Message::PeerBehind { tip_height: height } => height.encoded_len(),
        }
    }
}

impl Decodable for Message {
    fn decode_from(reader: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let version = reader.read_u8()?;
        if version != PROTOCOL_VERSION {
            return Err(DecodeError::InvalidValue {
                what: "protocol version",
                found: u64::from(version),
            });
        }
        Ok(match reader.read_u8()? {
            TAG_GET_HEADERS => Message::GetHeaders,
            TAG_HEADERS => Message::Headers(Vec::<BlockHeader>::decode_from(reader)?),
            TAG_QUERY_REQ => Message::QueryRequest {
                address: Address::decode_from(reader)?,
                range: Option::<(u64, u64)>::decode_from(reader)?,
            },
            TAG_QUERY_RESP => Message::QueryResponse(Box::new(QueryResponse::decode_from(reader)?)),
            TAG_BATCH_QUERY_REQ => Message::BatchQueryRequest {
                addresses: Vec::<Address>::decode_from(reader)?,
                range: Option::<(u64, u64)>::decode_from(reader)?,
            },
            TAG_BATCH_QUERY_RESP => {
                Message::BatchQueryResponse(Box::new(BatchQueryResponse::decode_from(reader)?))
            }
            TAG_GET_HEADERS_FROM => Message::GetHeadersFrom {
                height: u64::decode_from(reader)?,
                tip_hash: Hash256::decode_from(reader)?,
            },
            TAG_BUSY => Message::Busy,
            TAG_ERROR => Message::Error(WireError::decode_from(reader)?),
            TAG_HELLO => Message::Hello(HelloInfo::decode_from(reader)?),
            TAG_HELLO_ACK => Message::HelloAck(HelloInfo::decode_from(reader)?),
            TAG_HEADERS_DIVERGED => Message::HeadersDiverged {
                fork_height: u64::decode_from(reader)?,
            },
            TAG_PEER_BEHIND => Message::PeerBehind {
                tip_height: u64::decode_from(reader)?,
            },
            other => {
                return Err(DecodeError::InvalidValue {
                    what: "message tag",
                    found: u64::from(other),
                })
            }
        })
    }
}

impl Message {
    /// Decodes request bytes, mapping every decode failure to the
    /// structured [`WireError`] a server should answer with: an
    /// unsupported version byte, an unknown tag, or (for anything
    /// deeper) a malformed payload.
    ///
    /// # Errors
    ///
    /// [`WireError`] with [`WireErrorCode::UnsupportedVersion`],
    /// [`WireErrorCode::UnknownTag`], or [`WireErrorCode::Malformed`].
    pub fn decode_classified(bytes: &[u8]) -> Result<Message, WireError> {
        decode_exact::<Message>(bytes).map_err(|e| match e {
            DecodeError::InvalidValue {
                what: "protocol version",
                found,
            } => WireError::with_detail(WireErrorCode::UnsupportedVersion, found),
            DecodeError::InvalidValue {
                what: "message tag",
                found,
            } => WireError::with_detail(WireErrorCode::UnknownTag, found),
            _ => WireError::new(WireErrorCode::Malformed),
        })
    }
}

/// The v2 request-id envelope.
///
/// A v2 payload is a byte-level *splice* of a v1 payload:
///
/// ```text
/// v1:  [version=1][tag][body...]
/// v2:  [version=2][request id: LE u64][tag][body...]
/// ```
///
/// Tag and body bytes are identical between the two versions — the
/// property the `v2 ≡ v1 modulo id` proptests pin — so wrapping and
/// unwrapping never re-encode the message, and `Traffic` accounting on
/// a v2 connection differs from v1 by exactly [`V2_HEAD`]` - 1` bytes
/// per message.
pub mod envelope {
    use super::{Message, PROTOCOL_V2, PROTOCOL_VERSION};
    use lvq_codec::Encodable;

    /// Length of the v2 envelope head: one version byte plus the
    /// little-endian `u64` request id.
    pub const V2_HEAD: usize = 9;

    /// Encodes `message` in a v2 envelope carrying `id`.
    pub fn encode_v2(message: &Message, id: u64) -> Vec<u8> {
        wrap_v2(&message.encode(), id)
    }

    /// Splices a v1-encoded payload into a v2 envelope carrying `id`.
    ///
    /// # Panics
    ///
    /// If `v1` is empty (a v1 payload always has a version byte).
    #[must_use]
    pub fn wrap_v2(v1: &[u8], id: u64) -> Vec<u8> {
        assert!(!v1.is_empty(), "a v1 payload always has a version byte");
        let mut out = Vec::with_capacity(v1.len() + V2_HEAD - 1);
        out.push(PROTOCOL_V2);
        out.extend_from_slice(&id.to_le_bytes());
        out.extend_from_slice(&v1[1..]);
        out
    }

    /// Splits a v2 payload into its request id and the equivalent
    /// v1-encoded payload. Returns `None` when the payload is not v2
    /// or too short to carry the envelope head.
    pub fn unwrap_v2(payload: &[u8]) -> Option<(u64, Vec<u8>)> {
        let id = request_id(payload)?;
        let mut v1 = Vec::with_capacity(payload.len() + 1 - V2_HEAD);
        v1.push(PROTOCOL_VERSION);
        v1.extend_from_slice(&payload[V2_HEAD..]);
        Some((id, v1))
    }

    /// The version byte of a payload, if it has one.
    pub fn version(payload: &[u8]) -> Option<u8> {
        payload.first().copied()
    }

    /// The request id of a v2 payload (`None` when not v2 or when the
    /// envelope head is truncated).
    pub fn request_id(payload: &[u8]) -> Option<u64> {
        if payload.len() < V2_HEAD || payload[0] != PROTOCOL_V2 {
            return None;
        }
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&payload[1..V2_HEAD]);
        Some(u64::from_le_bytes(raw))
    }

    /// Whether a v2 payload carries a [`Message::Hello`] — a cheap tag
    /// peek, so a server can intercept negotiation without decoding
    /// every pipelined request twice.
    pub fn is_hello(payload: &[u8]) -> bool {
        request_id(payload).is_some() && payload.get(V2_HEAD) == Some(&super::TAG_HELLO)
    }
}

/// Errors surfaced by the node layer.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NodeError {
    /// A peer sent bytes that do not decode as a [`Message`].
    Wire(DecodeError),
    /// A peer answered with the wrong message kind.
    UnexpectedMessage,
    /// The full node could not produce a response.
    Prove(ProveError),
    /// The light node rejected the response.
    Verify(QueryError),
    /// The full node's chain does not correspond to a known scheme.
    UnknownScheme,
    /// The headers a full node served do not carry the commitments the
    /// light node's out-of-band scheme configuration requires — the
    /// peer is on a different scheme (or lying about it).
    ConfigMismatch {
        /// Height of the first non-conforming header.
        height: u64,
    },
    /// A transport-level I/O operation failed.
    ///
    /// Carries the [`std::io::ErrorKind`] rather than the
    /// [`std::io::Error`] itself so the error stays `Clone + PartialEq`
    /// like every other node error.
    Io {
        /// What the transport was doing (e.g. `"connect"`).
        context: &'static str,
        /// The kind of I/O failure.
        kind: std::io::ErrorKind,
    },
    /// A peer announced a frame longer than the transport accepts —
    /// either a protocol violation or a resource-exhaustion attempt.
    FrameTooLarge {
        /// The announced payload length.
        len: u64,
        /// The transport's limit.
        max: u64,
    },
    /// The connection closed in the middle of a frame.
    Disconnected {
        /// What the transport was doing when the peer vanished.
        context: &'static str,
    },
    /// A read deadline expired before the peer produced a frame. The
    /// typed sibling of `Io { kind: TimedOut }`: retry classification
    /// and user-facing messages can name the elapsed wait precisely.
    Timeout {
        /// How long the transport waited before giving up.
        elapsed: Duration,
    },
    /// The server answered a request with [`Message::Busy`] — its
    /// dispatch queue or this connection's in-flight window was full.
    /// The request was never processed; back off and retry.
    Busy,
    /// The server answered with a structured [`Message::Error`]
    /// refusal instead of the expected response.
    Server(WireError),
    /// A pipelined response carried a request id that is not in
    /// flight on this transport — the reply stream is corrupt (or the
    /// server is confused); the exchange is refused, never trusted.
    UnknownRequestId {
        /// The id the response carried.
        id: u64,
    },
    /// A pipelined transport was used out of protocol: a submit past
    /// the negotiated in-flight window, or a receive with nothing in
    /// flight. A caller bug, not a peer fault — never retried.
    PipelineViolation {
        /// What the caller did.
        context: &'static str,
    },
    /// The peer's chain diverges from this client's prefix deeper than
    /// the client's reorg budget: every probe down to
    /// `tip - max_reorg_depth` still answered
    /// [`Message::HeadersDiverged`]. Rolling back further would let a
    /// malicious peer rewrite arbitrary history, so the sync is
    /// refused. Not a verification failure — the peer may honestly sit
    /// on a fork this client is configured not to follow.
    ReorgTooDeep {
        /// The deepest height the client was willing to probe.
        floor: u64,
        /// The client's configured reorg budget.
        max_depth: u64,
    },
}

impl NodeError {
    /// Whether retrying the same request can plausibly succeed.
    ///
    /// The split is the client's whole failure model in one method:
    ///
    /// * **Transient** (`true`) — the *transport or scheduling* failed,
    ///   not the protocol: the server shed load ([`NodeError::Busy`]),
    ///   the connection dropped ([`NodeError::Disconnected`]), a read
    ///   deadline passed ([`NodeError::Timeout`], I/O timeouts), the
    ///   server answered after its own deadline
    ///   ([`WireErrorCode::DeadlineExceeded`]), or the reply was
    ///   corrupted in flight ([`NodeError::Wire`],
    ///   [`NodeError::UnexpectedMessage`], [`NodeError::FrameTooLarge`]
    ///   — a garbled frame is refused, never trusted, so asking again
    ///   is sound). Every request in the protocol is a pure read, so
    ///   replaying one is idempotent.
    /// * **Fatal** (`false`) — the *content* failed: a response that
    ///   decoded cleanly but did not verify ([`NodeError::Verify`]),
    ///   headers that break the out-of-band trust anchor
    ///   ([`NodeError::ConfigMismatch`], [`NodeError::UnknownScheme`]),
    ///   a structured refusal the server will deterministically repeat
    ///   (bad version, unknown tag, unanswerable request), or a local
    ///   prover failure. Retrying the same peer cannot help; a caller
    ///   holding several peers should fail over instead (see
    ///   [`crate::query_quorum_spec`]).
    pub fn retryable(&self) -> bool {
        match self {
            NodeError::Busy
            | NodeError::Disconnected { .. }
            | NodeError::Timeout { .. }
            | NodeError::Io { .. }
            | NodeError::Wire(_)
            | NodeError::UnexpectedMessage
            | NodeError::UnknownRequestId { .. }
            | NodeError::FrameTooLarge { .. } => true,
            NodeError::Server(e) => e.code == WireErrorCode::DeadlineExceeded,
            NodeError::Prove(_)
            | NodeError::Verify(_)
            | NodeError::UnknownScheme
            | NodeError::PipelineViolation { .. }
            | NodeError::ReorgTooDeep { .. }
            | NodeError::ConfigMismatch { .. } => false,
        }
    }

    /// Whether this error means a peer served content that failed
    /// verification — the never-retry class that should also mark the
    /// peer unhealthy in a quorum.
    pub fn is_verification_failure(&self) -> bool {
        matches!(
            self,
            NodeError::Verify(_) | NodeError::ConfigMismatch { .. }
        )
    }
}

impl fmt::Display for NodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeError::Wire(e) => write!(f, "wire decode error: {e}"),
            NodeError::UnexpectedMessage => f.write_str("peer sent an unexpected message kind"),
            NodeError::Prove(e) => write!(f, "prover failed: {e}"),
            NodeError::Verify(e) => write!(f, "verification failed: {e}"),
            NodeError::UnknownScheme => f.write_str("chain matches no known scheme"),
            NodeError::ConfigMismatch { height } => write!(
                f,
                "header {height} does not carry the commitments the configured scheme requires"
            ),
            NodeError::Io { context, kind } => {
                write!(f, "transport i/o failed ({context}): {kind}")
            }
            NodeError::FrameTooLarge { len, max } => {
                write!(f, "peer announced a {len}-byte frame (limit {max})")
            }
            NodeError::Disconnected { context } => {
                write!(f, "peer disconnected mid-frame ({context})")
            }
            NodeError::Timeout { elapsed } => {
                write!(f, "peer produced no frame within {elapsed:?}")
            }
            NodeError::Busy => f.write_str("server is at capacity (busy); retry later"),
            NodeError::Server(e) => write!(f, "server refused the request: {e}"),
            NodeError::UnknownRequestId { id } => {
                write!(f, "peer answered with unknown request id {id}")
            }
            NodeError::PipelineViolation { context } => {
                write!(f, "pipelined transport misuse: {context}")
            }
            NodeError::ReorgTooDeep { floor, max_depth } => {
                write!(
                    f,
                    "peer diverges below height {floor} (reorg budget {max_depth})"
                )
            }
        }
    }
}

impl Error for NodeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NodeError::Wire(e) => Some(e),
            NodeError::Prove(e) => Some(e),
            NodeError::Verify(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DecodeError> for NodeError {
    fn from(e: DecodeError) -> Self {
        NodeError::Wire(e)
    }
}

impl From<ProveError> for NodeError {
    fn from(e: ProveError) -> Self {
        NodeError::Prove(e)
    }
}

impl From<QueryError> for NodeError {
    fn from(e: QueryError) -> Self {
        NodeError::Verify(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lvq_codec::decode_exact;

    #[test]
    fn message_roundtrip() {
        let messages = vec![
            Message::GetHeaders,
            Message::Headers(Vec::new()),
            Message::QueryRequest {
                address: Address::new("1Probe"),
                range: None,
            },
            Message::QueryRequest {
                address: Address::new("1Probe"),
                range: Some((3, 17)),
            },
            Message::BatchQueryRequest {
                addresses: vec![Address::new("1Probe"), Address::new("1Other")],
                range: None,
            },
            Message::BatchQueryRequest {
                addresses: vec![Address::new("1Probe")],
                range: Some((2, 9)),
            },
            Message::GetHeadersFrom {
                height: 42,
                tip_hash: Hash256::hash(b"tip"),
            },
            Message::GetHeadersFrom {
                height: 0,
                tip_hash: Hash256::ZERO,
            },
            Message::HeadersDiverged { fork_height: 17 },
            Message::PeerBehind { tip_height: 9 },
            Message::Busy,
            Message::Error(WireError::with_detail(WireErrorCode::UnknownTag, 200)),
            Message::Error(WireError::new(WireErrorCode::DeadlineExceeded)),
            Message::Error(WireError::with_detail(WireErrorCode::DuplicateRequestId, 7)),
            Message::Hello(HelloInfo {
                max_in_flight: 32,
                features: 0,
            }),
            Message::HelloAck(HelloInfo {
                max_in_flight: 8,
                features: 0,
            }),
        ];
        for m in messages {
            let bytes = m.encode();
            assert_eq!(bytes.len(), m.encoded_len());
            assert_eq!(bytes[0], PROTOCOL_VERSION);
            assert_eq!(decode_exact::<Message>(&bytes).unwrap(), m);
        }
    }

    #[test]
    fn bad_version_rejected() {
        // Byte 200 is read as the protocol version, not a tag.
        assert!(decode_exact::<Message>(&[200]).is_err());
        assert_eq!(
            Message::decode_classified(&[200, 0]),
            Err(WireError::with_detail(
                WireErrorCode::UnsupportedVersion,
                200
            ))
        );
    }

    #[test]
    fn bad_tag_rejected() {
        assert!(decode_exact::<Message>(&[PROTOCOL_VERSION, 200]).is_err());
        assert_eq!(
            Message::decode_classified(&[PROTOCOL_VERSION, 200]),
            Err(WireError::with_detail(WireErrorCode::UnknownTag, 200))
        );
    }

    #[test]
    fn retry_classification_splits_transport_from_content() {
        let transient = [
            NodeError::Busy,
            NodeError::Disconnected { context: "read" },
            NodeError::Timeout {
                elapsed: Duration::from_millis(200),
            },
            NodeError::Io {
                context: "connect",
                kind: std::io::ErrorKind::ConnectionRefused,
            },
            NodeError::Wire(DecodeError::UnexpectedEof {
                needed: 4,
                remaining: 0,
            }),
            NodeError::UnexpectedMessage,
            NodeError::FrameTooLarge { len: 9, max: 4 },
            NodeError::Server(WireError::new(WireErrorCode::DeadlineExceeded)),
            NodeError::UnknownRequestId { id: 7 },
        ];
        for e in transient {
            assert!(e.retryable(), "{e} must be retryable");
            assert!(!e.is_verification_failure(), "{e}");
        }
        let fatal = [
            NodeError::UnknownScheme,
            NodeError::ConfigMismatch { height: 3 },
            NodeError::ReorgTooDeep {
                floor: 10,
                max_depth: 4,
            },
            NodeError::PipelineViolation {
                context: "submit past the negotiated window",
            },
            NodeError::Server(WireError::new(WireErrorCode::Unanswerable)),
            NodeError::Server(WireError::with_detail(WireErrorCode::UnsupportedVersion, 9)),
        ];
        for e in fatal {
            assert!(!e.retryable(), "{e} must be fatal");
        }
        assert!(NodeError::ConfigMismatch { height: 3 }.is_verification_failure());
        // A too-deep fork is a policy refusal, not proof of dishonesty.
        assert!(!NodeError::ReorgTooDeep {
            floor: 10,
            max_depth: 4
        }
        .is_verification_failure());
    }

    #[test]
    fn v2_envelope_is_a_byte_splice_of_v1() {
        let m = Message::QueryRequest {
            address: Address::new("1Probe"),
            range: Some((3, 17)),
        };
        let v1 = m.encode();
        let v2 = envelope::encode_v2(&m, 0xDEAD_BEEF_0BAD_F00D);
        assert_eq!(v2[0], PROTOCOL_V2);
        assert_eq!(v2.len(), v1.len() + envelope::V2_HEAD - 1);
        // Tag and body bytes are identical: v2 ≡ v1 modulo the id.
        assert_eq!(&v2[envelope::V2_HEAD..], &v1[1..]);
        assert_eq!(envelope::request_id(&v2), Some(0xDEAD_BEEF_0BAD_F00D));
        let (id, back) = envelope::unwrap_v2(&v2).unwrap();
        assert_eq!(id, 0xDEAD_BEEF_0BAD_F00D);
        assert_eq!(back, v1);
        // A v1 payload never unwraps; a truncated v2 head never unwraps.
        assert_eq!(envelope::unwrap_v2(&v1), None);
        assert_eq!(envelope::unwrap_v2(&v2[..8]), None);
        // The v1-strict classifier refuses v2 with a structured error,
        // which is exactly what a real v1 server answers a v2 Hello
        // with (the downgrade trigger).
        assert_eq!(
            Message::decode_classified(&v2),
            Err(WireError::with_detail(
                WireErrorCode::UnsupportedVersion,
                u64::from(PROTOCOL_V2)
            ))
        );
    }

    #[test]
    fn deep_decode_faults_classify_as_malformed() {
        // Version and tag fine, body truncated.
        assert_eq!(
            Message::decode_classified(&[PROTOCOL_VERSION, TAG_QUERY_REQ, 0xFF]),
            Err(WireError::new(WireErrorCode::Malformed))
        );
        // Trailing garbage after a complete message is also malformed.
        let mut bytes = Message::GetHeaders.encode();
        bytes.push(0);
        assert_eq!(
            Message::decode_classified(&bytes),
            Err(WireError::new(WireErrorCode::Malformed))
        );
    }
}
