//! The transport abstraction: request bytes in, response bytes out.
//!
//! Everything above this layer ([`crate::LightNode`], the quorum
//! helpers) speaks encoded [`crate::Message`] payloads and never cares
//! how they reach the full node. Everything below it decides: in the
//! same process through a [`crate::MeteredPipe`]
//! ([`LocalTransport`], the original simulated wire), or over a real
//! socket with length-prefixed frames ([`crate::TcpTransport`]).
//!
//! Both transports account [`Traffic`] identically — **payload bytes
//! only**, never framing overhead — so an experiment measured over TCP
//! reports exactly the byte counts the in-process simulation does, and
//! both match the paper's "size of query results".

use crate::message::NodeError;
use crate::pipe::{MeteredPipe, Traffic};
use crate::quorum::QueryPeer;

/// A bidirectional request/response channel to one full node.
///
/// Implementations are stateful (they accumulate cumulative traffic,
/// and a TCP transport owns its socket), hence `&mut self`.
pub trait Transport {
    /// Ships one encoded request and returns the encoded response plus
    /// the payload bytes that crossed in each direction.
    ///
    /// # Errors
    ///
    /// Returns a [`NodeError`] for transport failures (I/O, framing)
    /// or, for in-process transports, whatever the peer's handler
    /// returned.
    fn exchange(&mut self, request: &[u8]) -> Result<(Vec<u8>, Traffic), NodeError>;

    /// Payload bytes accumulated across all exchanges on this
    /// transport.
    fn cumulative_traffic(&self) -> Traffic;

    /// Number of completed exchanges on this transport.
    fn exchanges(&self) -> u64;
}

/// The in-process transport: a [`QueryPeer`] (typically a
/// [`crate::FullNode`]) behind a [`MeteredPipe`].
///
/// This is the original simulated wire of the reproduction, unchanged
/// at the byte level: requests and responses really encode and decode,
/// and the pipe records exactly their payload lengths.
///
/// # Examples
///
/// ```
/// use lvq_bloom::BloomParams;
/// use lvq_chain::{Address, ChainBuilder, Transaction};
/// use lvq_core::{Scheme, SchemeConfig};
/// use lvq_node::{FullNode, LightNode, LocalTransport, QuerySpec};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let config = SchemeConfig::new(Scheme::Lvq, BloomParams::new(128, 2)?, 4)?;
/// let mut builder = ChainBuilder::new(config.chain_params())?;
/// builder.push_block(vec![Transaction::coinbase(Address::new("1Miner"), 50, 1)])?;
/// let full = FullNode::new(builder.finish())?;
///
/// let mut peer = LocalTransport::new(&full);
/// let mut light = LightNode::sync_from(&mut peer, config)?;
/// let run = light.run(&QuerySpec::address(Address::new("1Miner")), &mut peer)?;
/// assert_eq!(run.histories[0].transactions.len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct LocalTransport<P> {
    peer: P,
    pipe: MeteredPipe,
}

impl<P: QueryPeer> LocalTransport<P> {
    /// Wraps a peer (usually `&FullNode`, or a closure test double)
    /// behind a fresh metered pipe.
    pub fn new(peer: P) -> Self {
        LocalTransport {
            peer,
            pipe: MeteredPipe::new(),
        }
    }

    /// The wrapped peer.
    pub fn peer(&self) -> &P {
        &self.peer
    }
}

impl<P: QueryPeer> Transport for LocalTransport<P> {
    fn exchange(&mut self, request: &[u8]) -> Result<(Vec<u8>, Traffic), NodeError> {
        self.pipe
            .exchange(request, |bytes| self.peer.handle_request(bytes))
    }

    fn cumulative_traffic(&self) -> Traffic {
        self.pipe.cumulative
    }

    fn exchanges(&self) -> u64 {
        self.pipe.exchanges
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_transport_counts_payload_bytes() {
        let echo = |req: &[u8]| -> Result<Vec<u8>, NodeError> { Ok(req.repeat(3)) };
        let mut t = LocalTransport::new(echo);
        let (resp, traffic) = t.exchange(b"ab").unwrap();
        assert_eq!(resp, b"ababab");
        assert_eq!(traffic.request_bytes, 2);
        assert_eq!(traffic.response_bytes, 6);
        t.exchange(b"xyz").unwrap();
        assert_eq!(t.exchanges(), 2);
        assert_eq!(t.cumulative_traffic().request_bytes, 5);
        assert_eq!(t.cumulative_traffic().response_bytes, 15);
    }

    #[test]
    fn peer_error_propagates_without_counting() {
        let broken =
            |_req: &[u8]| -> Result<Vec<u8>, NodeError> { Err(NodeError::UnexpectedMessage) };
        let mut t = LocalTransport::new(broken);
        assert!(t.exchange(b"hello").is_err());
        assert_eq!(t.exchanges(), 0);
        assert_eq!(t.cumulative_traffic().total(), 0);
    }
}
