//! Shared helpers for the crate's unit tests.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use lvq_bloom::BloomParams;
use lvq_chain::{Address, Block, ChainBuilder, Transaction};
use lvq_core::{Scheme, SchemeConfig};
use lvq_store::{BlockStore, DiskBlockSource, StoreConfig};

use crate::full::FullNode;
use crate::live::LiveNode;

static NEXT_DIR: AtomicU64 = AtomicU64::new(0);

/// A unique temp directory removed on drop.
pub struct ScratchDir(PathBuf);

impl ScratchDir {
    pub fn new(tag: &str) -> Self {
        let n = NEXT_DIR.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("lvq-node-{tag}-{}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        ScratchDir(dir)
    }

    pub fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

/// A live node serving the first `assembled` of `total` ground-truth
/// blocks off a disk store — the serve-while-growing setup shared by
/// the live-node and ingest tests.
pub struct LiveFixture {
    pub scratch: ScratchDir,
    pub live: Arc<LiveNode<DiskBlockSource>>,
    pub store: Arc<BlockStore>,
    /// The full ground-truth sequence, heights `1..=total`.
    pub blocks: Vec<Block>,
    pub assembled: u64,
}

impl LiveFixture {
    /// The not-yet-persisted tail, heights `assembled + 1..=total`.
    pub fn pending(&self) -> &[Block] {
        &self.blocks[self.assembled as usize..]
    }
}

/// The fixtures' shared scheme: LVQ, 128-byte/2-hash Blooms, M = 16.
pub fn fixture_config() -> SchemeConfig {
    SchemeConfig::new(Scheme::Lvq, BloomParams::new(128, 2).unwrap(), 16).unwrap()
}

/// The canonical ground-truth transactions for height `h`: a `1Miner`
/// coinbase, plus a `1Sparse` one every third block.
fn truth_txs(h: u64) -> Vec<Transaction> {
    let mut txs = vec![Transaction::coinbase(Address::new("1Miner"), 50, h as u32)];
    if h.is_multiple_of(3) {
        txs.push(Transaction::coinbase(
            Address::new("1Sparse"),
            1,
            (1000 + h) as u32,
        ));
    }
    txs
}

/// A competing branch sharing the fixtures' canonical prefix up to
/// `fork` and then diverging onto `1Rival` blocks up to `total` —
/// identical transactions produce identical blocks, so the prefixes
/// agree byte for byte.
pub fn rival_chain(fork: u64, total: u64) -> Vec<Block> {
    let mut builder = ChainBuilder::new(fixture_config().chain_params()).unwrap();
    for h in 1..=total {
        let txs = if h <= fork {
            truth_txs(h)
        } else {
            vec![Transaction::coinbase(
                Address::new("1Rival"),
                50,
                (2000 + h) as u32,
            )]
        };
        builder.push_block(txs).unwrap();
    }
    let truth = builder.finish();
    (1..=total)
        .map(|h| (*truth.block(h).unwrap()).clone())
        .collect()
}

pub fn live_fixture(tag: &str, assembled: u64, total: u64) -> LiveFixture {
    let config = fixture_config();
    let mut builder = ChainBuilder::new(config.chain_params()).unwrap();
    for h in 1..=total {
        builder.push_block(truth_txs(h)).unwrap();
    }
    let truth = builder.finish();
    let blocks: Vec<Block> = (1..=total)
        .map(|h| (*truth.block(h).unwrap()).clone())
        .collect();

    let scratch = ScratchDir::new(tag);
    let store = BlockStore::create(scratch.path(), truth.params(), StoreConfig::default()).unwrap();
    for block in &blocks[..assembled as usize] {
        store.append(block).unwrap();
    }
    drop(store);
    let (chain, report) = lvq_store::open_chain(scratch.path(), StoreConfig::default()).unwrap();
    assert!(report.is_clean());
    let store = Arc::clone(chain.source().store());
    let live = Arc::new(LiveNode::new(FullNode::new(chain).unwrap()));
    LiveFixture {
        scratch,
        live,
        store,
        blocks,
        assembled,
    }
}
