//! The byte-metered wire.

/// Bytes that crossed the wire for one exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Traffic {
    /// Bytes the light node sent.
    pub request_bytes: u64,
    /// Bytes the full node returned — the paper's "size of query
    /// results".
    pub response_bytes: u64,
}

impl Traffic {
    /// Total bytes in both directions.
    pub fn total(&self) -> u64 {
        self.request_bytes + self.response_bytes
    }
}

/// A simulated request/response channel that measures every byte.
///
/// Exchanges pass through real encode/decode cycles; the pipe itself
/// only counts lengths and accumulates totals across exchanges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MeteredPipe {
    /// Totals across all exchanges on this pipe.
    pub cumulative: Traffic,
    /// Number of exchanges performed.
    pub exchanges: u64,
}

impl MeteredPipe {
    /// Creates a fresh pipe.
    pub fn new() -> Self {
        Self::default()
    }

    /// Performs one metered exchange: ships `request` to `server`,
    /// returns the response bytes, and records both sizes.
    pub fn exchange<E>(
        &mut self,
        request: &[u8],
        mut server: impl FnMut(&[u8]) -> Result<Vec<u8>, E>,
    ) -> Result<(Vec<u8>, Traffic), E> {
        let response = server(request)?;
        let traffic = Traffic {
            request_bytes: request.len() as u64,
            response_bytes: response.len() as u64,
        };
        self.cumulative.request_bytes += traffic.request_bytes;
        self.cumulative.response_bytes += traffic.response_bytes;
        self.exchanges += 1;
        Ok((response, traffic))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_accumulate() {
        let mut pipe = MeteredPipe::new();
        let (resp, t) = pipe
            .exchange::<()>(b"abc", |req| Ok(req.repeat(2)))
            .unwrap();
        assert_eq!(resp, b"abcabc");
        assert_eq!(t.request_bytes, 3);
        assert_eq!(t.response_bytes, 6);
        assert_eq!(t.total(), 9);
        pipe.exchange::<()>(b"x", |_| Ok(vec![])).unwrap();
        assert_eq!(pipe.exchanges, 2);
        assert_eq!(pipe.cumulative.request_bytes, 4);
        assert_eq!(pipe.cumulative.response_bytes, 6);
    }

    #[test]
    fn server_error_propagates() {
        let mut pipe = MeteredPipe::new();
        let result = pipe.exchange(b"abc", |_| Err("down"));
        assert_eq!(result.unwrap_err(), "down");
        assert_eq!(pipe.exchanges, 0);
    }
}
