//! A self-healing TCP transport: re-dial, replay, carry on.
//!
//! [`ReconnectingTcpTransport`] wraps the address of a
//! [`crate::NodeServer`] rather than one socket. When an exchange dies
//! a connection-shaped death — the peer vanished
//! ([`NodeError::Disconnected`]), went quiet ([`NodeError::Timeout`]),
//! or the socket failed ([`NodeError::Io`]) — it drops the dead
//! connection, re-dials (with a bounded number of attempts and a fixed
//! pause between them), and **replays the in-flight request** on the
//! fresh connection.
//!
//! Replaying is safe because every message a light node sends is a
//! pure read: headers and proofs depend only on the peer's chain, so
//! asking twice returns the same answer (or a newer, still-verifiable
//! one if the chain grew — [`crate::LightNode::run_with_retry`]
//! re-checks the tip after a reconnect for exactly that case).
//!
//! Everything else passes through untouched: [`NodeError::Busy`] and
//! server refusals belong to the retry policy above, and verification
//! failures to the caller — a fresh socket cannot fix a bad proof.

use std::net::ToSocketAddrs;
use std::time::Duration;

use crate::frame::MAX_FRAME_LEN;
use crate::message::NodeError;
use crate::pipe::Traffic;
use crate::tcp::{TcpOptions, TcpTransport};
use crate::transport::Transport;

/// A [`Transport`] that survives its connection: dead sockets are
/// re-dialed and the in-flight request replayed.
///
/// Traffic and exchange counts span connections — the accounting is
/// per *peer*, not per socket, so a run interrupted by a server
/// restart reports the same byte totals a fault-free run does plus
/// whatever the replay itself moved.
#[derive(Debug)]
pub struct ReconnectingTcpTransport {
    addr: String,
    conn: Option<TcpTransport>,
    options: TcpOptions,
    max_frame_len: u32,
    max_redials: u32,
    redial_delay: Duration,
    cumulative: Traffic,
    exchanges: u64,
    reconnects: u64,
}

impl ReconnectingTcpTransport {
    /// Connects to a serving full node at `addr` (kept for re-dialing).
    ///
    /// Defaults: 3 re-dials per exchange, 20ms apart, no socket
    /// timeouts, [`MAX_FRAME_LEN`] frame cap.
    ///
    /// # Errors
    ///
    /// Returns [`NodeError::Io`] if the initial connection cannot be
    /// established.
    pub fn connect(addr: impl Into<String>) -> Result<Self, NodeError> {
        Self::connect_with(addr, TcpOptions::default())
    }

    /// Connects with explicit socket options; the connect timeout
    /// applies to the initial dial *and every re-dial*, so a server
    /// that black-holes mid-run cannot stall an exchange for the OS
    /// connect default.
    ///
    /// # Errors
    ///
    /// Returns [`NodeError::Io`] if the initial connection cannot be
    /// established within the options' connect timeout.
    pub fn connect_with(addr: impl Into<String>, options: TcpOptions) -> Result<Self, NodeError> {
        let mut transport = ReconnectingTcpTransport {
            addr: addr.into(),
            conn: None,
            options,
            max_frame_len: MAX_FRAME_LEN,
            max_redials: 3,
            redial_delay: Duration::from_millis(20),
            cumulative: Traffic::default(),
            exchanges: 0,
            reconnects: 0,
        };
        transport.conn = Some(transport.dial()?);
        Ok(transport)
    }

    /// Applies read/write timeouts to the current and every future
    /// connection. `None` blocks indefinitely.
    ///
    /// # Errors
    ///
    /// Returns [`NodeError::Io`] if the live socket rejects the option.
    pub fn set_timeouts(
        &mut self,
        read: Option<Duration>,
        write: Option<Duration>,
    ) -> Result<(), NodeError> {
        self.options = self
            .options
            .with_read_timeout(read)
            .with_write_timeout(write);
        if let Some(conn) = &mut self.conn {
            conn.set_timeouts(read, write)?;
        }
        Ok(())
    }

    /// Caps the largest response frame accepted, now and after every
    /// reconnect.
    pub fn set_max_frame_len(&mut self, max: u32) {
        self.max_frame_len = max;
        if let Some(conn) = &mut self.conn {
            conn.set_max_frame_len(max);
        }
    }

    /// Sets how persistently one exchange re-dials: up to `max_redials`
    /// fresh connections, `delay` apart.
    pub fn set_redial(&mut self, max_redials: u32, delay: Duration) {
        self.max_redials = max_redials;
        self.redial_delay = delay;
    }

    /// The address this transport (re)connects to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// How many times a dead connection was replaced so far.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// Whether a connection is currently held (it may still be dead on
    /// the wire — TCP only tells on use).
    pub fn is_connected(&self) -> bool {
        self.conn.is_some()
    }

    /// Hangs up politely. The next exchange re-dials lazily (and counts
    /// in [`reconnects`](Self::reconnects) like any other replacement).
    ///
    /// Closing from the client side matters operationally: the client,
    /// as the active closer, absorbs the `TIME_WAIT` state, so a server
    /// restarted immediately afterwards can rebind its port.
    pub fn disconnect(&mut self) {
        self.conn = None;
    }

    fn dial(&self) -> Result<TcpTransport, NodeError> {
        let addrs = self
            .addr
            .to_socket_addrs()
            .map_err(|e| NodeError::Io {
                context: "resolve address",
                kind: e.kind(),
            })?
            .collect::<Vec<_>>();
        let mut conn = TcpTransport::connect_with(addrs.as_slice(), self.options)?;
        conn.set_max_frame_len(self.max_frame_len);
        Ok(conn)
    }

    /// Whether `error` means the *connection* (not the request) failed,
    /// so a fresh socket plus a replay can fix it.
    fn connection_failed(error: &NodeError) -> bool {
        matches!(
            error,
            NodeError::Disconnected { .. } | NodeError::Timeout { .. } | NodeError::Io { .. }
        )
    }
}

impl Transport for ReconnectingTcpTransport {
    fn exchange(&mut self, request: &[u8]) -> Result<(Vec<u8>, Traffic), NodeError> {
        let mut redials_left = self.max_redials;
        loop {
            // (Re)connect lazily: the previous exchange may have left
            // the connection torn down.
            let conn = match &mut self.conn {
                Some(conn) => conn,
                None => match self.dial() {
                    Ok(conn) => {
                        self.reconnects += 1;
                        self.conn.insert(conn)
                    }
                    Err(e) => {
                        if redials_left == 0 {
                            return Err(e);
                        }
                        redials_left -= 1;
                        std::thread::sleep(self.redial_delay);
                        continue;
                    }
                },
            };
            match conn.exchange(request) {
                Ok((reply, traffic)) => {
                    self.cumulative.request_bytes += traffic.request_bytes;
                    self.cumulative.response_bytes += traffic.response_bytes;
                    self.exchanges += 1;
                    return Ok((reply, traffic));
                }
                Err(e) if Self::connection_failed(&e) => {
                    // The socket is gone or desynchronized: drop it and
                    // replay on a fresh one (all requests are pure
                    // reads, so the replay is idempotent).
                    self.conn = None;
                    if redials_left == 0 {
                        return Err(e);
                    }
                    redials_left -= 1;
                    std::thread::sleep(self.redial_delay);
                }
                Err(e) => {
                    // An oversized frame leaves unread payload bytes in
                    // the stream; no later frame would parse. Start
                    // clean next exchange, but surface the error — it
                    // is about the response, not the connection.
                    if matches!(e, NodeError::FrameTooLarge { .. }) {
                        self.conn = None;
                    }
                    return Err(e);
                }
            }
        }
    }

    fn cumulative_traffic(&self) -> Traffic {
        self.cumulative
    }

    fn exchanges(&self) -> u64 {
        self.exchanges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{read_frame_or_event, write_frame, FrameEvent};
    use std::net::TcpListener;

    /// Serves `conns` connections, each answering `frames_per_conn`
    /// echo frames and then hanging up mid-session.
    fn flaky_echo_server(
        conns: usize,
        frames_per_conn: usize,
    ) -> (String, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let handle = std::thread::spawn(move || {
            for _ in 0..conns {
                let (mut stream, _) = listener.accept().unwrap();
                for _ in 0..frames_per_conn {
                    match read_frame_or_event(&mut stream, MAX_FRAME_LEN) {
                        Ok(FrameEvent::Frame(payload)) => {
                            write_frame(&mut stream, &payload).unwrap();
                        }
                        _ => break,
                    }
                }
                // Dropping the stream hangs up on the client.
            }
        });
        (addr, handle)
    }

    #[test]
    fn replays_in_flight_request_across_a_hangup() {
        // Each connection serves exactly one frame, so every second
        // exchange hits a dead socket and must reconnect + replay.
        let (addr, server) = flaky_echo_server(3, 1);
        let mut transport = ReconnectingTcpTransport::connect(&addr).unwrap();
        transport.set_redial(3, Duration::from_millis(5));
        for i in 0..3u8 {
            let (reply, traffic) = transport.exchange(&[i; 5]).unwrap();
            assert_eq!(reply, [i; 5], "exchange {i} replayed correctly");
            assert_eq!(traffic.request_bytes, 5);
        }
        assert_eq!(transport.exchanges(), 3);
        assert_eq!(transport.cumulative_traffic().total(), 30);
        assert_eq!(
            transport.reconnects(),
            2,
            "exchanges 2 and 3 each found a dead socket"
        );
        server.join().unwrap();
    }

    #[test]
    fn gives_up_after_the_redial_cap() {
        // One connection, one frame — then the server is gone for good.
        let (addr, server) = flaky_echo_server(1, 1);
        let mut transport = ReconnectingTcpTransport::connect(&addr).unwrap();
        transport.set_redial(2, Duration::from_millis(1));
        assert!(transport.exchange(b"ok").is_ok());
        server.join().unwrap();
        let err = transport.exchange(b"dead peer").unwrap_err();
        assert!(
            matches!(
                err,
                NodeError::Disconnected { .. } | NodeError::Io { .. } | NodeError::Timeout { .. }
            ),
            "exhausted redials surface the last connection error, got {err}"
        );
        assert!(!transport.is_connected());
    }
}
