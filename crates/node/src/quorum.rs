//! Querying several full nodes and cross-checking their answers.
//!
//! For the LVQ schemes a single verified response is already complete,
//! so a quorum adds only availability. For the **strawman**, whose
//! existence fragments cannot prove completeness (paper Challenge 3),
//! a quorum genuinely helps: every verified response is *correct*, so
//! the union over peers is correct too and strictly closer to complete
//! — and any peer whose answer is a strict subset of the union is
//! provably withholding transactions.

use lvq_chain::{balance_of, Address, Transaction};
use lvq_codec::{decode_exact, Encodable};
use lvq_core::{Completeness, LightClient, VerifiedHistory};
use lvq_crypto::Hash256;

use crate::full::FullNode;
use crate::message::{Message, NodeError};
use crate::pipe::{MeteredPipe, Traffic};

/// Anything that can answer encoded requests — a [`FullNode`], or a
/// test double wrapping one (e.g. a censoring adversary).
pub trait QueryPeer {
    /// Handles one encoded request, returning the encoded response.
    ///
    /// # Errors
    ///
    /// Implementations return a [`NodeError`] for malformed requests or
    /// internal failures.
    fn handle_request(&self, request: &[u8]) -> Result<Vec<u8>, NodeError>;
}

impl QueryPeer for FullNode {
    fn handle_request(&self, request: &[u8]) -> Result<Vec<u8>, NodeError> {
        self.handle(request)
    }
}

impl<F: Fn(&[u8]) -> Result<Vec<u8>, NodeError>> QueryPeer for F {
    fn handle_request(&self, request: &[u8]) -> Result<Vec<u8>, NodeError> {
        self(request)
    }
}

/// What a quorum query established.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuorumOutcome {
    /// The merged verified history (union over all peers' proven
    /// transactions — still provably correct).
    pub history: VerifiedHistory,
    /// Total traffic across all peers.
    pub traffic: Traffic,
    /// Indices of peers whose verified history was a strict subset of
    /// the merged one — under a completeness-proving scheme this is
    /// impossible; under the strawman it exposes withholding peers.
    pub withholding_peers: Vec<usize>,
    /// Indices of peers whose response failed verification outright.
    pub rejected_peers: Vec<usize>,
}

/// Queries every peer and merges the verified answers.
///
/// At least one peer must produce a verifiable response.
///
/// # Errors
///
/// Returns the last peer error if *all* peers fail.
pub fn query_quorum(
    client: &LightClient,
    peers: &[&dyn QueryPeer],
    address: &Address,
) -> Result<QuorumOutcome, NodeError> {
    let mut pipe = MeteredPipe::new();
    let request = Message::QueryRequest {
        address: address.clone(),
        range: None,
    }
    .encode();

    let mut histories: Vec<(usize, VerifiedHistory)> = Vec::new();
    let mut rejected_peers = Vec::new();
    let mut last_error = None;

    for (index, peer) in peers.iter().enumerate() {
        let exchanged = pipe.exchange(&request, |bytes| peer.handle_request(bytes));
        let verified = exchanged.and_then(|(reply, _)| {
            let Message::QueryResponse(response) = decode_exact::<Message>(&reply)? else {
                return Err(NodeError::UnexpectedMessage);
            };
            Ok(client.verify(address, &response)?)
        });
        match verified {
            Ok(history) => histories.push((index, history)),
            Err(err) => {
                rejected_peers.push(index);
                last_error = Some(err);
            }
        }
    }

    if histories.is_empty() {
        return Err(last_error.expect("no histories implies at least one error"));
    }

    // Union by (height, txid): each constituent history is verified
    // correct, so every element of the union is on-chain.
    let mut merged: Vec<(u64, Transaction)> = Vec::new();
    let mut seen: std::collections::BTreeSet<(u64, Hash256)> = Default::default();
    let mut completeness = Completeness::CorrectnessOnly;
    for (_, history) in &histories {
        if history.completeness == Completeness::Complete {
            completeness = Completeness::Complete;
        }
        for (height, tx) in &history.transactions {
            if seen.insert((*height, tx.txid())) {
                merged.push((*height, tx.clone()));
            }
        }
    }
    merged.sort_by_key(|(h, _)| *h);

    let withholding_peers = histories
        .iter()
        .filter(|(_, h)| h.transactions.len() < merged.len())
        .map(|(i, _)| *i)
        .collect();

    let balance = balance_of(address, merged.iter().map(|(_, t)| t));
    Ok(QuorumOutcome {
        history: VerifiedHistory {
            transactions: merged,
            balance,
            completeness,
        },
        traffic: pipe.cumulative,
        withholding_peers,
        rejected_peers,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lvq_bloom::BloomParams;
    use lvq_chain::{ChainBuilder, Transaction};
    use lvq_core::{QueryResponse, Scheme, SchemeConfig};

    fn full_node(scheme: Scheme) -> FullNode {
        let config = SchemeConfig::new(scheme, BloomParams::new(64, 2).unwrap(), 8).unwrap();
        let mut builder = ChainBuilder::new(config.chain_params()).unwrap();
        for h in 1..=8u32 {
            let mut txs = vec![Transaction::coinbase(Address::new("1Miner"), 50, h)];
            if h % 2 == 0 {
                // Two distinct transactions for the victim, so a
                // censoring peer has something it can silently drop.
                txs.push(Transaction::coinbase(Address::new("1Victim"), 10, 100 + h));
                txs.push(Transaction::coinbase(Address::new("1Victim"), 5, 200 + h));
            }
            builder.push_block(txs).unwrap();
        }
        FullNode::new(builder.finish()).unwrap()
    }

    /// A strawman peer that drops one Merkle-branch transaction from
    /// every response — undetectable in isolation (Challenge 3).
    fn censoring(full: &FullNode) -> impl Fn(&[u8]) -> Result<Vec<u8>, NodeError> + '_ {
        move |request: &[u8]| {
            let reply = full.handle(request)?;
            let Message::QueryResponse(mut response) = decode_exact::<Message>(&reply)? else {
                return Ok(reply);
            };
            if let QueryResponse::PerBlock(per_block) = response.as_mut() {
                for entry in &mut per_block.entries {
                    if let lvq_core::BlockFragment::MerkleBranches(txs) = &mut entry.fragment {
                        if txs.len() > 1 {
                            txs.pop();
                        }
                    }
                }
            }
            Ok(Message::QueryResponse(response).encode())
        }
    }

    #[test]
    fn quorum_of_honest_peers_agrees() {
        let a = full_node(Scheme::Lvq);
        let b = full_node(Scheme::Lvq);
        let client = LightClient::new(a.config(), a.chain().headers());
        let outcome = query_quorum(&client, &[&a, &b], &Address::new("1Victim")).unwrap();
        assert_eq!(outcome.history.transactions.len(), 8);
        assert!(outcome.withholding_peers.is_empty());
        assert!(outcome.rejected_peers.is_empty());
        assert_eq!(outcome.history.completeness, Completeness::Complete);
    }

    #[test]
    fn quorum_exposes_strawman_withholding() {
        let honest = full_node(Scheme::Strawman);
        let client = LightClient::new(honest.config(), honest.chain().headers());
        let censor_fn = censoring(&honest);
        let censor: &dyn QueryPeer = &censor_fn;
        let victim = Address::new("1Victim");

        // Alone, the censoring peer gets away with it (Challenge 3):
        // one of the two transactions per even block disappears and the
        // response still verifies as correct.
        let alone = query_quorum(&client, &[censor], &victim).unwrap();
        assert_eq!(alone.history.transactions.len(), 4);
        assert!(alone.withholding_peers.is_empty(), "undetectable alone");

        // Next to an honest peer the union restores the truth and the
        // censor is identified by index.
        let both = query_quorum(&client, &[censor, &honest], &victim).unwrap();
        assert_eq!(both.history.transactions.len(), 8);
        assert_eq!(both.withholding_peers, vec![0]);
        // Strawman never claims completeness.
        assert_eq!(both.history.completeness, Completeness::CorrectnessOnly);
    }

    #[test]
    fn quorum_rejects_garbage_peer_but_serves_from_honest() {
        let honest = full_node(Scheme::Lvq);
        let client = LightClient::new(honest.config(), honest.chain().headers());
        let broken_fn = |_req: &[u8]| -> Result<Vec<u8>, NodeError> { Ok(vec![0xFF, 0xFF]) };
        let broken: &dyn QueryPeer = &broken_fn;
        let outcome = query_quorum(&client, &[broken, &honest], &Address::new("1Victim")).unwrap();
        assert_eq!(outcome.rejected_peers, vec![0]);
        assert_eq!(outcome.history.transactions.len(), 8);
    }

    #[test]
    fn all_peers_failing_is_an_error() {
        let honest = full_node(Scheme::Lvq);
        let client = LightClient::new(honest.config(), honest.chain().headers());
        let broken_fn = |_req: &[u8]| -> Result<Vec<u8>, NodeError> { Ok(vec![0xFF]) };
        let broken: &dyn QueryPeer = &broken_fn;
        assert!(query_quorum(&client, &[broken], &Address::new("1Victim")).is_err());
    }
}
