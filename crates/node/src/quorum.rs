//! Querying several full nodes and cross-checking their answers.
//!
//! For the LVQ schemes a single verified response is already complete,
//! so a quorum adds only availability. For the **strawman**, whose
//! existence fragments cannot prove completeness (paper Challenge 3),
//! a quorum genuinely helps: every verified response is *correct*, so
//! the union over peers is correct too and strictly closer to complete
//! — and any peer whose answer is a strict subset of the union is
//! provably withholding transactions.
//!
//! Peers are addressed as [`crate::Transport`]s, so a quorum can mix
//! in-process nodes ([`crate::LocalTransport`]) and remote ones
//! ([`crate::TcpTransport`]) freely.

use lvq_chain::{balance_of, Address, Transaction};
use lvq_codec::{decode_exact, Encodable};
use lvq_core::{Completeness, LightClient, VerifiedHistory};
use lvq_crypto::Hash256;

use crate::full::FullNode;
use crate::light::{LightNode, QuerySpec};
use crate::message::{Message, NodeError};
use crate::pipe::Traffic;
use crate::retry::{ResyncOutcome, Retrier, RetryPolicy};
use crate::transport::Transport;

/// Anything that can answer encoded requests in-process — a
/// [`FullNode`], or a test double wrapping one (e.g. a censoring
/// adversary). Wrap it in a [`crate::LocalTransport`] to use it where
/// a [`Transport`] is expected.
pub trait QueryPeer {
    /// Handles one encoded request, returning the encoded response.
    ///
    /// # Errors
    ///
    /// Implementations return a [`NodeError`] for malformed requests or
    /// internal failures.
    fn handle_request(&self, request: &[u8]) -> Result<Vec<u8>, NodeError>;
}

impl<S: lvq_chain::BlockSource> QueryPeer for FullNode<S> {
    fn handle_request(&self, request: &[u8]) -> Result<Vec<u8>, NodeError> {
        self.handle(request)
    }
}

impl<S: lvq_chain::BlockSource> QueryPeer for &FullNode<S> {
    fn handle_request(&self, request: &[u8]) -> Result<Vec<u8>, NodeError> {
        self.handle(request)
    }
}

impl<F: Fn(&[u8]) -> Result<Vec<u8>, NodeError>> QueryPeer for F {
    fn handle_request(&self, request: &[u8]) -> Result<Vec<u8>, NodeError> {
        self(request)
    }
}

/// What a quorum query established.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuorumOutcome {
    /// The merged verified history (union over all peers' proven
    /// transactions — still provably correct).
    pub history: VerifiedHistory,
    /// Total traffic across all peers.
    pub traffic: Traffic,
    /// Indices of peers whose verified history was a strict subset of
    /// the merged one — under a completeness-proving scheme this is
    /// impossible; under the strawman it exposes withholding peers.
    pub withholding_peers: Vec<usize>,
    /// Indices of peers whose response failed verification outright.
    pub rejected_peers: Vec<usize>,
}

/// What a batched quorum query established.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuorumBatchOutcome {
    /// One merged verified history per queried address, in request
    /// order.
    pub histories: Vec<VerifiedHistory>,
    /// Total traffic across all peers.
    pub traffic: Traffic,
    /// Indices of peers that withheld transactions for at least one
    /// address (sorted, deduplicated).
    pub withholding_peers: Vec<usize>,
    /// Indices of peers whose response failed verification outright.
    pub rejected_peers: Vec<usize>,
}

/// Queries every peer and merges the verified answers.
///
/// At least one peer must produce a verifiable response.
///
/// # Errors
///
/// Returns the last peer error if *all* peers fail.
pub fn query_quorum(
    client: &LightClient,
    peers: &mut [&mut dyn Transport],
    address: &Address,
) -> Result<QuorumOutcome, NodeError> {
    let request = Message::QueryRequest {
        address: address.clone(),
        range: None,
    }
    .encode();

    let mut traffic = Traffic::default();
    let mut histories: Vec<(usize, VerifiedHistory)> = Vec::new();
    let mut rejected_peers = Vec::new();
    let mut last_error = None;

    for (index, peer) in peers.iter_mut().enumerate() {
        let verified = peer.exchange(&request).and_then(|(reply, t)| {
            traffic.request_bytes += t.request_bytes;
            traffic.response_bytes += t.response_bytes;
            let Message::QueryResponse(response) = decode_exact::<Message>(&reply)? else {
                return Err(NodeError::UnexpectedMessage);
            };
            Ok(client.verify(address, &response)?)
        });
        match verified {
            Ok(history) => histories.push((index, history)),
            Err(err) => {
                rejected_peers.push(index);
                last_error = Some(err);
            }
        }
    }

    if histories.is_empty() {
        return Err(last_error.expect("no histories implies at least one error"));
    }

    let (history, withholding_peers) = merge_histories(address, &histories);
    Ok(QuorumOutcome {
        history,
        traffic,
        withholding_peers,
        rejected_peers,
    })
}

/// Queries every peer for a whole address batch in one round trip each
/// and merges the verified answers address by address.
///
/// At least one peer must produce a verifiable response; `addresses`
/// must be non-empty (the prover rejects empty batches).
///
/// # Errors
///
/// Returns the last peer error if *all* peers fail.
pub fn query_quorum_batch(
    client: &LightClient,
    peers: &mut [&mut dyn Transport],
    addresses: &[Address],
) -> Result<QuorumBatchOutcome, NodeError> {
    let request = Message::BatchQueryRequest {
        addresses: addresses.to_vec(),
        range: None,
    }
    .encode();

    let mut traffic = Traffic::default();
    let mut verified_batches: Vec<(usize, Vec<VerifiedHistory>)> = Vec::new();
    let mut rejected_peers = Vec::new();
    let mut last_error = None;

    for (index, peer) in peers.iter_mut().enumerate() {
        let verified = peer.exchange(&request).and_then(|(reply, t)| {
            traffic.request_bytes += t.request_bytes;
            traffic.response_bytes += t.response_bytes;
            let Message::BatchQueryResponse(response) = decode_exact::<Message>(&reply)? else {
                return Err(NodeError::UnexpectedMessage);
            };
            Ok(client.verify_batch(addresses, &response)?)
        });
        match verified {
            Ok(histories) => verified_batches.push((index, histories)),
            Err(err) => {
                rejected_peers.push(index);
                last_error = Some(err);
            }
        }
    }

    if verified_batches.is_empty() {
        return Err(last_error.expect("no histories implies at least one error"));
    }

    let mut histories = Vec::with_capacity(addresses.len());
    let mut withholding = std::collections::BTreeSet::new();
    for (k, address) in addresses.iter().enumerate() {
        let per_peer: Vec<(usize, VerifiedHistory)> = verified_batches
            .iter()
            .map(|(index, batch)| (*index, batch[k].clone()))
            .collect();
        let (merged, withholders) = merge_histories(address, &per_peer);
        histories.push(merged);
        withholding.extend(withholders);
    }

    Ok(QuorumBatchOutcome {
        histories,
        traffic,
        withholding_peers: withholding.into_iter().collect(),
        rejected_peers,
    })
}

/// How one peer fared across a whole quorum query, retries included.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PeerOutcome {
    /// The peer produced a verifiable response (possibly after
    /// transient retries).
    Served,
    /// Every attempt failed transiently — the peer is down or
    /// unreachable, not provably misbehaving.
    Unreachable(NodeError),
    /// The peer answered and the answer was rejected (verification
    /// failure, refusal) — fatal, never retried.
    Rejected(NodeError),
}

/// Per-peer health across one quorum query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeerHealth {
    /// Attempts made against this peer (at least 1).
    pub attempts: u64,
    /// Attempts beyond the first — how hard the retry policy worked.
    pub retries: u64,
    /// How the peer's participation ended.
    pub outcome: PeerOutcome,
}

impl PeerHealth {
    /// Whether this peer ended up contributing a verified answer.
    pub fn served(&self) -> bool {
        self.outcome == PeerOutcome::Served
    }
}

/// What a fault-tolerant quorum query established: merged histories
/// plus per-peer health, instead of aborting when some peers die.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuorumReport {
    /// One merged verified history per [`QuerySpec`] target, in spec
    /// order (union over all serving peers' proven transactions).
    pub histories: Vec<VerifiedHistory>,
    /// Total traffic across all peers, retries included.
    pub traffic: Traffic,
    /// One health record per peer, in peer order.
    pub peers: Vec<PeerHealth>,
    /// Indices of peers whose verified answer was a strict subset of
    /// the merged one for at least one address (sorted, deduplicated).
    pub withholding_peers: Vec<usize>,
    /// Indices of peers whose header chain diverges from the client's
    /// prefix — they are serving a competing fork, so their proofs
    /// anchor in headers the client does not hold (see [`tip_census`]).
    pub fork_peers: Vec<usize>,
}

impl QuorumReport {
    /// How many peers contributed a verified answer.
    pub fn served(&self) -> usize {
        self.peers.iter().filter(|p| p.served()).count()
    }

    /// Whether the quorum degraded — answered, but with at least one
    /// peer lost to failures.
    pub fn is_degraded(&self) -> bool {
        self.served() < self.peers.len()
    }
}

/// Queries every peer for `spec` under a retry policy and merges the
/// verified answers, degrading gracefully when peers die.
///
/// Each peer gets its own [`Retrier`] (jitter stream derived from
/// `seed` and the peer index, so a run is reproducible): transient
/// failures — [`NodeError::Busy`], disconnects, timeouts — are retried
/// up to the policy's caps, while fatal ones (a verification failure
/// above all) take the peer out of the quorum on the spot. The outcome
/// is a [`QuorumReport`] with per-peer health instead of an
/// all-or-nothing answer: k-of-n peers lost mid-query still yields the
/// merged history of the n−k that served.
///
/// # Errors
///
/// Returns the last peer error only if *no* peer produced a
/// verifiable response.
pub fn query_quorum_spec(
    client: &LightClient,
    peers: &mut [&mut dyn Transport],
    spec: &QuerySpec,
    policy: &RetryPolicy,
    seed: u64,
) -> Result<QuorumReport, NodeError> {
    let request = spec.to_message().encode();
    let mut traffic = Traffic::default();
    let mut health = Vec::with_capacity(peers.len());
    let mut verified_batches: Vec<(usize, Vec<VerifiedHistory>)> = Vec::new();
    let mut last_error = None;

    for (index, peer) in peers.iter_mut().enumerate() {
        // Each peer draws its own jitter stream: peers back off
        // independently, and the whole sweep replays bit-for-bit under
        // the same seed.
        let mut retrier =
            Retrier::new(*policy, seed ^ (index as u64 + 1).wrapping_mul(0x9E37_79B9));
        let verified = retrier.run(|_attempt| {
            let (reply, t) = peer.exchange(&request)?;
            traffic.request_bytes += t.request_bytes;
            traffic.response_bytes += t.response_bytes;
            verify_reply(client, spec, &reply)
        });
        let stats = retrier.stats();
        let outcome = match verified {
            Ok(histories) => {
                verified_batches.push((index, histories));
                PeerOutcome::Served
            }
            Err(err) => {
                last_error = Some(err.clone());
                if err.retryable() {
                    PeerOutcome::Unreachable(err)
                } else {
                    PeerOutcome::Rejected(err)
                }
            }
        };
        health.push(PeerHealth {
            attempts: stats.attempts,
            retries: stats.retries,
            outcome,
        });
    }

    if verified_batches.is_empty() {
        return Err(last_error.expect("no histories implies at least one error"));
    }

    let mut histories = Vec::with_capacity(spec.targets().len());
    let mut withholding = std::collections::BTreeSet::new();
    for (k, address) in spec.targets().iter().enumerate() {
        let per_peer: Vec<(usize, VerifiedHistory)> = verified_batches
            .iter()
            .map(|(index, batch)| (*index, batch[k].clone()))
            .collect();
        let (merged, withholders) = merge_histories(address, &per_peer);
        histories.push(merged);
        withholding.extend(withholders);
    }

    // Tip census: one cheap probe per peer tells forks apart from mere
    // lag. A fork peer's proofs fail verification like any garbage
    // peer's would; the census is what upgrades "rejected" to "on a
    // competing branch", which the caller can act on (see
    // [`converge_on_majority`]).
    let fork_peers = tip_census(client, peers, &mut traffic)
        .into_iter()
        .enumerate()
        .filter(|(_, relation)| *relation == TipRelation::Diverged)
        .map(|(index, _)| index)
        .collect();

    Ok(QuorumReport {
        histories,
        traffic,
        peers: health,
        withholding_peers: withholding.into_iter().collect(),
        fork_peers,
    })
}

/// How one peer's header chain relates to the client's at census time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TipRelation {
    /// The peer holds the client's tip header and serves `tip_height`
    /// (≥ the client's tip) on the same branch.
    SameBranch {
        /// The peer's tip height.
        tip_height: u64,
    },
    /// The peer's chain is shorter but agrees with the client's prefix
    /// at the peer's own tip — lagging, not forked.
    Behind {
        /// The peer's tip height.
        tip_height: u64,
    },
    /// The peer's headers diverge from the client's prefix: it is
    /// serving a competing fork.
    Diverged,
    /// The peer could not be probed (transport failure or a reply the
    /// census does not understand).
    Unreachable,
}

/// Classifies every peer's chain against the client's headers with at
/// most two [`Message::GetHeadersFrom`] probes each: one pinned at the
/// client's tip, and — when the peer reports itself behind — a second
/// pinned at the *peer's* tip, which tells a lagging same-branch peer
/// apart from a shorter competing fork. Probe failures degrade to
/// [`TipRelation::Unreachable`]; the census never fails as a whole.
pub fn tip_census(
    client: &LightClient,
    peers: &mut [&mut dyn Transport],
    traffic: &mut Traffic,
) -> Vec<TipRelation> {
    let tip = client.tip_height();
    peers
        .iter_mut()
        .map(|peer| {
            match probe_at(client, &mut **peer, tip, traffic) {
                Some(Message::Headers(tail)) => TipRelation::SameBranch {
                    tip_height: tip + tail.len() as u64,
                },
                Some(Message::HeadersDiverged { .. }) => TipRelation::Diverged,
                Some(Message::PeerBehind { tip_height }) => {
                    match probe_at(client, &mut **peer, tip_height, traffic) {
                        Some(Message::HeadersDiverged { .. }) => TipRelation::Diverged,
                        // Height 0 (the implicit genesis anchor) always
                        // agrees, so a `Headers` reply here is the
                        // common case; anything odd stays `Behind`.
                        Some(_) => TipRelation::Behind { tip_height },
                        None => TipRelation::Unreachable,
                    }
                }
                _ => TipRelation::Unreachable,
            }
        })
        .collect()
}

/// One census probe: "here is my header hash at `height` — do you
/// agree?". Returns `None` when the peer cannot answer.
fn probe_at(
    client: &LightClient,
    peer: &mut dyn Transport,
    height: u64,
    traffic: &mut Traffic,
) -> Option<Message> {
    let tip_hash = client.hash_at(height)?;
    let request = Message::GetHeadersFrom { height, tip_hash }.encode();
    let (reply, t) = peer.exchange(&request).ok()?;
    traffic.request_bytes += t.request_bytes;
    traffic.response_bytes += t.response_bytes;
    decode_exact::<Message>(&reply).ok()
}

/// What [`converge_on_majority`] did to the client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MajorityConvergence {
    /// The census the decision was made from, in peer order.
    pub relations: Vec<TipRelation>,
    /// Index of the peer the client synced from, `None` when every
    /// peer was behind or unreachable (the client is already ahead).
    pub synced_from: Option<usize>,
    /// What the sync found (always [`ResyncOutcome::PeerBehind`] when
    /// `synced_from` is `None`).
    pub outcome: ResyncOutcome,
}

impl MajorityConvergence {
    /// Whether the client switched branches to follow the majority.
    pub fn switched(&self) -> bool {
        matches!(self.outcome, ResyncOutcome::Diverged { .. })
    }
}

/// Makes the client converge on the majority tip across `peers`.
///
/// Runs a [`tip_census`], then votes on the client's own branch: peers
/// at or above the client's tip on the same chain endorse it, peers on
/// a competing fork oppose it, and lagging or unreachable peers
/// abstain (a shorter agreeing chain says nothing about events above
/// its tip). When fork peers form a strict majority the client resyncs
/// from one of them — [`LightNode::sync_new`] walks back to the fork
/// point within the client's reorg budget and adopts the majority
/// branch. Otherwise the client catches up from the tallest
/// same-branch peer, if any is ahead.
///
/// # Errors
///
/// Propagates the chosen peer's sync failure — notably
/// [`NodeError::ReorgTooDeep`] when the majority branch forks below
/// the client's budget. The census itself never fails.
pub fn converge_on_majority(
    light: &mut LightNode,
    peers: &mut [&mut dyn Transport],
) -> Result<MajorityConvergence, NodeError> {
    let mut traffic = Traffic::default();
    let relations = tip_census(light.client(), peers, &mut traffic);

    let endorse: Vec<usize> = relations
        .iter()
        .enumerate()
        .filter(|(_, r)| matches!(r, TipRelation::SameBranch { .. }))
        .map(|(i, _)| i)
        .collect();
    let oppose: Vec<usize> = relations
        .iter()
        .enumerate()
        .filter(|(_, r)| **r == TipRelation::Diverged)
        .map(|(i, _)| i)
        .collect();

    let synced_from = if oppose.len() > endorse.len() {
        oppose.first().copied()
    } else {
        // Tallest agreeing peer, skipped when none is ahead of us.
        endorse
            .into_iter()
            .max_by_key(|&i| match relations[i] {
                TipRelation::SameBranch { tip_height } => tip_height,
                _ => 0,
            })
            .filter(|&i| match relations[i] {
                TipRelation::SameBranch { tip_height } => tip_height > light.client().tip_height(),
                _ => false,
            })
    };

    let outcome = match synced_from {
        Some(index) => light.sync_new(&mut *peers[index])?,
        None => ResyncOutcome::PeerBehind,
    };
    Ok(MajorityConvergence {
        relations,
        synced_from,
        outcome,
    })
}

/// Decodes and verifies one reply against `spec`, surfacing sheds and
/// refusals as their typed [`NodeError`]s (so the retry policy can
/// classify them).
fn verify_reply(
    client: &LightClient,
    spec: &QuerySpec,
    reply: &[u8],
) -> Result<Vec<VerifiedHistory>, NodeError> {
    let message = match decode_exact::<Message>(reply)? {
        Message::Busy => return Err(NodeError::Busy),
        Message::Error(e) => return Err(NodeError::Server(e)),
        message => message,
    };
    let range = spec.height_range();
    match (message, spec.is_batch()) {
        (Message::QueryResponse(response), false) => {
            let address = &spec.targets()[0];
            Ok(vec![match range {
                None => client.verify(address, &response)?,
                Some((lo, hi)) => client.verify_range(address, lo, hi, &response)?,
            }])
        }
        (Message::BatchQueryResponse(response), true) => match range {
            None => Ok(client.verify_batch(spec.targets(), &response)?),
            Some((lo, hi)) => Ok(client.verify_batch_range(spec.targets(), lo, hi, &response)?),
        },
        _ => Err(NodeError::UnexpectedMessage),
    }
}

/// Unions verified histories for one address by `(height, txid)` —
/// each constituent is verified correct, so every element of the union
/// is on-chain. Returns the merged history plus the indices of peers
/// whose answer was a strict subset of it.
fn merge_histories(
    address: &Address,
    histories: &[(usize, VerifiedHistory)],
) -> (VerifiedHistory, Vec<usize>) {
    let mut merged: Vec<(u64, Transaction)> = Vec::new();
    let mut seen: std::collections::BTreeSet<(u64, Hash256)> = Default::default();
    let mut completeness = Completeness::CorrectnessOnly;
    for (_, history) in histories {
        if history.completeness == Completeness::Complete {
            completeness = Completeness::Complete;
        }
        for (height, tx) in &history.transactions {
            if seen.insert((*height, tx.txid())) {
                merged.push((*height, tx.clone()));
            }
        }
    }
    merged.sort_by_key(|(h, _)| *h);

    let withholding = histories
        .iter()
        .filter(|(_, h)| h.transactions.len() < merged.len())
        .map(|(i, _)| *i)
        .collect();

    let balance = balance_of(address, merged.iter().map(|(_, t)| t));
    (
        VerifiedHistory {
            transactions: merged,
            balance,
            completeness,
        },
        withholding,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::LocalTransport;
    use lvq_bloom::BloomParams;
    use lvq_chain::{ChainBuilder, Transaction};
    use lvq_core::{QueryResponse, Scheme, SchemeConfig};

    fn full_node(scheme: Scheme) -> FullNode {
        let config = SchemeConfig::new(scheme, BloomParams::new(64, 2).unwrap(), 8).unwrap();
        let mut builder = ChainBuilder::new(config.chain_params()).unwrap();
        for h in 1..=8u32 {
            let mut txs = vec![Transaction::coinbase(Address::new("1Miner"), 50, h)];
            if h % 2 == 0 {
                // Two distinct transactions for the victim, so a
                // censoring peer has something it can silently drop.
                txs.push(Transaction::coinbase(Address::new("1Victim"), 10, 100 + h));
                txs.push(Transaction::coinbase(Address::new("1Victim"), 5, 200 + h));
            }
            builder.push_block(txs).unwrap();
        }
        FullNode::new(builder.finish()).unwrap()
    }

    /// A strawman peer that drops one Merkle-branch transaction from
    /// every response — undetectable in isolation (Challenge 3).
    fn censoring(full: &FullNode) -> impl Fn(&[u8]) -> Result<Vec<u8>, NodeError> + '_ {
        move |request: &[u8]| {
            let reply = full.handle(request)?;
            let Message::QueryResponse(mut response) = decode_exact::<Message>(&reply)? else {
                return Ok(reply);
            };
            if let QueryResponse::PerBlock(per_block) = response.as_mut() {
                for entry in &mut per_block.entries {
                    if let lvq_core::BlockFragment::MerkleBranches(txs) = &mut entry.fragment {
                        if txs.len() > 1 {
                            txs.pop();
                        }
                    }
                }
            }
            Ok(Message::QueryResponse(response).encode())
        }
    }

    /// Like [`censoring`], but for batched responses: drops one
    /// Merkle-branch transaction from every multi-transaction fragment
    /// section.
    fn censoring_batch(full: &FullNode) -> impl Fn(&[u8]) -> Result<Vec<u8>, NodeError> + '_ {
        move |request: &[u8]| {
            let reply = full.handle(request)?;
            let Message::BatchQueryResponse(mut response) = decode_exact::<Message>(&reply)? else {
                return Ok(reply);
            };
            if let lvq_core::BatchQueryResponse::PerBlock(per_block) = response.as_mut() {
                for entry in &mut per_block.entries {
                    for fragment in &mut entry.fragments {
                        if let lvq_core::BlockFragment::MerkleBranches(txs) = fragment {
                            if txs.len() > 1 {
                                txs.pop();
                            }
                        }
                    }
                }
            }
            Ok(Message::BatchQueryResponse(response).encode())
        }
    }

    #[test]
    fn quorum_of_honest_peers_agrees() {
        let a = full_node(Scheme::Lvq);
        let b = full_node(Scheme::Lvq);
        let client = LightClient::new(a.config(), a.chain().headers());
        let mut ta = LocalTransport::new(&a);
        let mut tb = LocalTransport::new(&b);
        let outcome =
            query_quorum(&client, &mut [&mut ta, &mut tb], &Address::new("1Victim")).unwrap();
        assert_eq!(outcome.history.transactions.len(), 8);
        assert!(outcome.withholding_peers.is_empty());
        assert!(outcome.rejected_peers.is_empty());
        assert_eq!(outcome.history.completeness, Completeness::Complete);
        // Per-peer accounting survives the quorum sweep.
        assert_eq!(ta.exchanges(), 1);
        assert_eq!(tb.exchanges(), 1);
        assert_eq!(
            outcome.traffic.total(),
            ta.cumulative_traffic().total() + tb.cumulative_traffic().total()
        );
    }

    #[test]
    fn quorum_exposes_strawman_withholding() {
        let honest = full_node(Scheme::Strawman);
        let client = LightClient::new(honest.config(), honest.chain().headers());
        let victim = Address::new("1Victim");

        // Alone, the censoring peer gets away with it (Challenge 3):
        // one of the two transactions per even block disappears and the
        // response still verifies as correct.
        let mut censor = LocalTransport::new(censoring(&honest));
        let alone = query_quorum(&client, &mut [&mut censor], &victim).unwrap();
        assert_eq!(alone.history.transactions.len(), 4);
        assert!(alone.withholding_peers.is_empty(), "undetectable alone");

        // Next to an honest peer the union restores the truth and the
        // censor is identified by index.
        let mut honest_t = LocalTransport::new(&honest);
        let both = query_quorum(&client, &mut [&mut censor, &mut honest_t], &victim).unwrap();
        assert_eq!(both.history.transactions.len(), 8);
        assert_eq!(both.withholding_peers, vec![0]);
        // Strawman never claims completeness.
        assert_eq!(both.history.completeness, Completeness::CorrectnessOnly);
    }

    #[test]
    fn quorum_rejects_garbage_peer_but_serves_from_honest() {
        let honest = full_node(Scheme::Lvq);
        let client = LightClient::new(honest.config(), honest.chain().headers());
        let broken_fn = |_req: &[u8]| -> Result<Vec<u8>, NodeError> { Ok(vec![0xFF, 0xFF]) };
        let mut broken = LocalTransport::new(broken_fn);
        let mut honest_t = LocalTransport::new(&honest);
        let outcome = query_quorum(
            &client,
            &mut [&mut broken, &mut honest_t],
            &Address::new("1Victim"),
        )
        .unwrap();
        assert_eq!(outcome.rejected_peers, vec![0]);
        assert_eq!(outcome.history.transactions.len(), 8);
    }

    #[test]
    fn all_peers_failing_is_an_error() {
        let honest = full_node(Scheme::Lvq);
        let client = LightClient::new(honest.config(), honest.chain().headers());
        let broken_fn = |_req: &[u8]| -> Result<Vec<u8>, NodeError> { Ok(vec![0xFF]) };
        let mut broken = LocalTransport::new(broken_fn);
        assert!(query_quorum(&client, &mut [&mut broken], &Address::new("1Victim")).is_err());
    }

    #[test]
    fn quorum_spec_degrades_gracefully_when_peers_die() {
        use std::cell::Cell;
        use std::time::Duration;

        let honest = full_node(Scheme::Lvq);
        let client = LightClient::new(honest.config(), honest.chain().headers());
        let policy =
            RetryPolicy::new(3).backoff(Duration::from_micros(10), Duration::from_micros(50));

        // Peer 0 is dead for good; peer 1 sheds twice then serves;
        // peer 2 proves from a different chain and is rejected outright.
        let dead = |_req: &[u8]| -> Result<Vec<u8>, NodeError> {
            Err(NodeError::Disconnected {
                context: "test peer down",
            })
        };
        let sheds = Cell::new(2u32);
        let flaky = |req: &[u8]| -> Result<Vec<u8>, NodeError> {
            if sheds.get() > 0 {
                sheds.set(sheds.get() - 1);
                return Ok(Message::Busy.encode());
            }
            honest.handle(req)
        };
        let other_config =
            SchemeConfig::new(Scheme::Lvq, BloomParams::new(64, 2).unwrap(), 8).unwrap();
        let mut builder = ChainBuilder::new(other_config.chain_params()).unwrap();
        for h in 1..=4u32 {
            builder
                .push_block(vec![Transaction::coinbase(Address::new("1Other"), 50, h)])
                .unwrap();
        }
        let liar = FullNode::new(builder.finish()).unwrap();

        let mut t0 = LocalTransport::new(dead);
        let mut t1 = LocalTransport::new(flaky);
        let mut t2 = LocalTransport::new(&liar);
        let spec = QuerySpec::address(Address::new("1Victim"));
        let report = query_quorum_spec(
            &client,
            &mut [&mut t0, &mut t1, &mut t2],
            &spec,
            &policy,
            99,
        )
        .unwrap();

        // One of three peers served — degraded, but answered fully.
        assert_eq!(report.histories[0].transactions.len(), 8);
        assert_eq!(report.served(), 1);
        assert!(report.is_degraded());

        // Per-peer health tells the three stories apart.
        assert!(matches!(
            report.peers[0].outcome,
            PeerOutcome::Unreachable(_)
        ));
        assert_eq!(report.peers[0].attempts, 3, "dead peer exhausts the cap");
        assert!(report.peers[1].served());
        assert_eq!(report.peers[1].retries, 2, "two sheds ridden out");
        assert!(matches!(
            report.peers[2].outcome,
            PeerOutcome::Rejected(NodeError::Verify(_))
        ));
        assert_eq!(report.peers[2].attempts, 1, "fatal errors never retried");

        // Same seed, same report (modulo nothing — it is all data).
        sheds.set(2);
        let mut u0 = LocalTransport::new(dead);
        let mut u1 = LocalTransport::new(flaky);
        let mut u2 = LocalTransport::new(&liar);
        let again = query_quorum_spec(
            &client,
            &mut [&mut u0, &mut u1, &mut u2],
            &spec,
            &policy,
            99,
        )
        .unwrap();
        assert_eq!(report, again);
    }

    #[test]
    fn quorum_spec_fails_only_when_every_peer_does() {
        use std::time::Duration;

        let honest = full_node(Scheme::Lvq);
        let client = LightClient::new(honest.config(), honest.chain().headers());
        let policy =
            RetryPolicy::new(2).backoff(Duration::from_micros(10), Duration::from_micros(20));
        let dead = |_req: &[u8]| -> Result<Vec<u8>, NodeError> {
            Err(NodeError::Disconnected { context: "down" })
        };
        let mut t0 = LocalTransport::new(dead);
        let mut t1 = LocalTransport::new(dead);
        let spec = QuerySpec::address(Address::new("1Victim"));
        assert!(
            query_quorum_spec(&client, &mut [&mut t0, &mut t1], &spec, &policy, 1).is_err(),
            "no serving peer means no answer"
        );

        // A batched spec flows through the same failover machinery.
        let mut honest_t = LocalTransport::new(&honest);
        let mut dead_t = LocalTransport::new(dead);
        let spec = QuerySpec::addresses(vec![Address::new("1Victim"), Address::new("1Miner")]);
        let report = query_quorum_spec(
            &client,
            &mut [&mut dead_t, &mut honest_t],
            &spec,
            &policy,
            1,
        )
        .unwrap();
        assert_eq!(report.histories.len(), 2);
        assert_eq!(report.histories[0].transactions.len(), 8);
        assert_eq!(report.served(), 1);
    }

    /// A node whose chain shares the `1Miner` prefix up to `fork` and
    /// then diverges onto `tag` blocks up to `blocks` — two calls with
    /// the same `fork` build chains that agree exactly on that prefix.
    fn forked_node(scheme: Scheme, fork: u64, blocks: u64, tag: &str) -> FullNode {
        let config = SchemeConfig::new(scheme, BloomParams::new(64, 2).unwrap(), 8).unwrap();
        let mut builder = ChainBuilder::new(config.chain_params()).unwrap();
        for h in 1..=blocks {
            let addr = if h <= fork { "1Miner" } else { tag };
            builder
                .push_block(vec![Transaction::coinbase(
                    Address::new(addr),
                    50,
                    h as u32,
                )])
                .unwrap();
        }
        FullNode::new(builder.finish()).unwrap()
    }

    #[test]
    fn quorum_flags_fork_peers_and_converges_on_the_majority_tip() {
        let canonical = forked_node(Scheme::Lvq, 5, 8, "1Canon");
        let winner_a = forked_node(Scheme::Lvq, 5, 10, "1Winner");
        let winner_b = forked_node(Scheme::Lvq, 5, 10, "1Winner");

        // The client has followed the canonical branch so far.
        let mut sync_t = LocalTransport::new(&canonical);
        let mut light = LightNode::sync_from(&mut sync_t, canonical.config())
            .unwrap()
            .with_max_reorg_depth(4);
        assert_eq!(light.client().tip_height(), 8);

        let mut t0 = LocalTransport::new(&winner_a);
        let mut t1 = LocalTransport::new(&winner_b);
        let mut t2 = LocalTransport::new(&canonical);
        let policy = RetryPolicy::new(1);
        let spec = QuerySpec::address(Address::new("1Miner"));
        let report = query_quorum_spec(
            light.client(),
            &mut [&mut t0, &mut t1, &mut t2],
            &spec,
            &policy,
            7,
        )
        .unwrap();

        // The fork peers' proofs anchor in headers the client does not
        // hold: verification rejects them, and the census upgrades the
        // rejection to "on a competing branch".
        assert_eq!(report.histories[0].transactions.len(), 5);
        assert_eq!(report.served(), 1);
        assert!(matches!(report.peers[0].outcome, PeerOutcome::Rejected(_)));
        assert!(matches!(report.peers[1].outcome, PeerOutcome::Rejected(_)));
        assert_eq!(report.fork_peers, vec![0, 1]);

        // Two of three peers hold the longer fork: the client follows
        // the majority, rolling back to the shared prefix.
        let convergence =
            converge_on_majority(&mut light, &mut [&mut t0, &mut t1, &mut t2]).unwrap();
        assert_eq!(
            convergence.relations,
            vec![
                TipRelation::Diverged,
                TipRelation::Diverged,
                TipRelation::SameBranch { tip_height: 8 },
            ]
        );
        assert_eq!(convergence.synced_from, Some(0));
        assert_eq!(
            convergence.outcome,
            ResyncOutcome::Diverged { fork_height: 5 }
        );
        assert!(convergence.switched());
        assert_eq!(light.client().tip_height(), 10);
        assert_eq!(
            light.client().hash_at(10),
            Some(winner_a.chain().tip_hash()),
            "the client must anchor in the winner's headers"
        );

        // Queries on the adopted branch verify against its history.
        let run = light
            .run(&QuerySpec::address(Address::new("1Winner")), &mut t0)
            .unwrap();
        assert_eq!(run.histories[0].transactions.len(), 5);

        // Convergence is stable: the majority now endorses the
        // client's branch and the lone canonical peer is the fork.
        let again = converge_on_majority(&mut light, &mut [&mut t0, &mut t1, &mut t2]).unwrap();
        assert_eq!(again.synced_from, None);
        assert!(!again.switched());
        assert_eq!(again.relations[2], TipRelation::Diverged);
        assert_eq!(light.client().tip_height(), 10);
    }

    #[test]
    fn batch_quorum_merges_per_address() {
        let honest = full_node(Scheme::Strawman);
        let client = LightClient::new(honest.config(), honest.chain().headers());
        let addresses = [
            Address::new("1Victim"),
            Address::new("1Miner"),
            Address::new("1Ghost"),
        ];
        let mut honest_t = LocalTransport::new(&honest);
        let outcome = query_quorum_batch(&client, &mut [&mut honest_t], &addresses).unwrap();
        assert_eq!(outcome.histories.len(), 3);
        assert_eq!(outcome.histories[0].transactions.len(), 8);
        assert_eq!(outcome.histories[1].transactions.len(), 8);
        assert!(outcome.histories[2].transactions.is_empty());
        assert!(outcome.rejected_peers.is_empty());
        assert!(outcome.withholding_peers.is_empty());
        // One round trip for the whole batch.
        assert_eq!(honest_t.exchanges(), 1);
    }

    #[test]
    fn batch_quorum_exposes_withholding_on_any_address() {
        // The censor only drops 1Victim transactions (strawman Merkle
        // branches); the batch also asks for 1Miner. One withheld
        // address is enough to flag the peer.
        let honest = full_node(Scheme::Strawman);
        let client = LightClient::new(honest.config(), honest.chain().headers());
        let addresses = [Address::new("1Victim"), Address::new("1Miner")];
        let mut censor = LocalTransport::new(censoring_batch(&honest));
        let mut honest_t = LocalTransport::new(&honest);
        let outcome =
            query_quorum_batch(&client, &mut [&mut censor, &mut honest_t], &addresses).unwrap();
        assert_eq!(outcome.histories[0].transactions.len(), 8);
        assert_eq!(outcome.withholding_peers, vec![0]);
        assert!(outcome.rejected_peers.is_empty());
    }
}
