//! Live follow-the-tip ingest over the persistent address index.
//!
//! The durable-first contract: the ingester appends blocks to the
//! store, extends the chain (updating the index in memory), and only
//! then anchors the index — so the index root can never lead the
//! durable chain, and a node that stops at any point reopens with pure
//! point reads (`Intact`) or an incremental catch-up, never a rebuild.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use lvq_bloom::BloomParams;
use lvq_chain::{Address, Block, BlockSource, Chain, ChainBuilder, TableSource, Transaction};
use lvq_codec::Encodable;
use lvq_core::{Prover, Scheme, SchemeConfig};
use lvq_node::{FullNode, IngestConfig, LiveNode, MemoryFeed, TipIngester};
use lvq_store::{
    open_chain_indexed, AddrIndexRecovery, BlockStore, DiskBlockSource, IndexedTables, StoreConfig,
};

static NEXT_DIR: AtomicU64 = AtomicU64::new(0);

struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> Self {
        let n = NEXT_DIR.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("lvq-node-idx-{tag}-{}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        ScratchDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn truth_chain(total: u64) -> (Chain, Vec<Block>) {
    let config = SchemeConfig::new(Scheme::Lvq, BloomParams::new(128, 2).unwrap(), 16).unwrap();
    let mut builder = ChainBuilder::new(config.chain_params()).unwrap();
    for h in 1..=total {
        let mut txs = vec![Transaction::coinbase(Address::new("1Miner"), 50, h as u32)];
        if h % 3 == 0 {
            txs.push(Transaction::coinbase(
                Address::new("1Sparse"),
                1,
                (1000 + h) as u32,
            ));
        }
        builder.push_block(txs).unwrap();
    }
    let truth = builder.finish();
    let blocks = (1..=total)
        .map(|h| (*truth.block(h).unwrap()).clone())
        .collect();
    (truth, blocks)
}

fn fast_config() -> IngestConfig {
    IngestConfig::new()
        .with_min_batch(2)
        .with_max_batch(8)
        .with_poll(Duration::from_micros(200))
}

fn respond_bytes<S, T>(chain: &Chain<S, T>, address: &Address) -> Vec<u8>
where
    S: BlockSource,
    T: TableSource,
{
    let prover = Prover::from_chain(chain).expect("known scheme");
    prover
        .respond(address)
        .expect("prover never fails")
        .0
        .encode()
}

fn wait_for_tip(live: &LiveNode<DiskBlockSource, IndexedTables>, tip: u64) {
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while live.tip_height() < tip {
        assert!(
            std::time::Instant::now() < deadline,
            "ingester never reached height {tip} (at {})",
            live.tip_height()
        );
        std::thread::sleep(Duration::from_micros(200));
    }
}

#[test]
fn follow_the_tip_writes_the_index_and_reopens_with_point_reads() {
    let (truth, blocks) = truth_chain(30);
    let scratch = ScratchDir::new("follow");
    let store_config = StoreConfig::default();
    drop(BlockStore::create(scratch.path(), truth.params(), store_config).unwrap());

    {
        let (chain, report) = open_chain_indexed(scratch.path(), store_config).unwrap();
        assert_eq!(chain.tip_height(), 0);
        assert!(matches!(
            report.addr_index,
            AddrIndexRecovery::Rebuilt {
                reason: "no index present"
            }
        ));
        let store = Arc::clone(chain.source().store());
        let live = Arc::new(LiveNode::new(FullNode::new(chain).unwrap()));

        let feed = MemoryFeed::new(blocks.clone());
        let publisher = feed.publisher();
        let handle = TipIngester::spawn(Arc::clone(&live), Arc::clone(&store), feed, fast_config());
        for step in [5u64, 9, 2, 14] {
            let published = publisher.publish(step);
            wait_for_tip(&live, published);
        }
        wait_for_tip(&live, 30);
        let stats = handle.stop().expect("clean pipeline");
        assert_eq!(stats.blocks_appended, 30);
        assert_eq!(store.len(), 30);

        // Queries served live through the index match ground truth.
        live.with_node(|node| {
            for address in [Address::new("1Miner"), Address::new("1Sparse")] {
                assert_eq!(
                    respond_bytes(&truth, &address),
                    respond_bytes(node.chain(), &address)
                );
            }
        });
    }

    // Everything dropped (node, store, index): the reopen restores from
    // the anchored root with no replay and serves identical traffic.
    let (chain, report) = open_chain_indexed(scratch.path(), store_config).unwrap();
    assert_eq!(report.addr_index, AddrIndexRecovery::Intact);
    assert!(report.is_clean(), "unexpected recovery: {report:?}");
    assert_eq!(chain.tip_height(), 30);
    for address in [
        Address::new("1Miner"),
        Address::new("1Sparse"),
        Address::new("1Nobody"),
    ] {
        assert_eq!(
            respond_bytes(&truth, &address),
            respond_bytes(&chain, &address)
        );
        assert_eq!(truth.history_of(&address), chain.history_of(&address));
    }
}

#[test]
fn index_never_leads_the_store_when_stopped_mid_stream() {
    let (truth, blocks) = truth_chain(24);
    let scratch = ScratchDir::new("midstop");
    let store_config = StoreConfig::default();
    drop(BlockStore::create(scratch.path(), truth.params(), store_config).unwrap());

    {
        let (chain, _) = open_chain_indexed(scratch.path(), store_config).unwrap();
        let store = Arc::clone(chain.source().store());
        let live = Arc::new(LiveNode::new(FullNode::new(chain).unwrap()));
        let feed = MemoryFeed::new(blocks.clone());
        let publisher = feed.publisher();
        let handle = TipIngester::spawn(Arc::clone(&live), Arc::clone(&store), feed, fast_config());
        publisher.publish(17);
        wait_for_tip(&live, 17);
        handle.stop().expect("clean pipeline");
    }

    // Whatever instant the pipeline stopped at, the reopen never finds
    // the index *ahead* of the store — so never a rebuild.
    let (chain, report) = open_chain_indexed(scratch.path(), store_config).unwrap();
    assert!(
        matches!(
            report.addr_index,
            AddrIndexRecovery::Intact | AddrIndexRecovery::CaughtUp { .. }
        ),
        "durable-first ordering violated: {:?}",
        report.addr_index
    );
    assert_eq!(chain.tip_height(), 17);
    for address in [Address::new("1Miner"), Address::new("1Sparse")] {
        let prover = Prover::from_chain(&chain).unwrap();
        let (response, _) = prover.respond(&address).unwrap();
        // Compare against truth restricted to the persisted prefix.
        let truth_prover = Prover::from_chain(&truth).unwrap();
        let (truth_response, _) = truth_prover.respond_range(&address, 1, 17).unwrap();
        assert_eq!(truth_response.encode(), response.encode());
    }
}
