//! Chaos-facing integration tests: soundness under random fault
//! injection, and batch continuity across a real server restart.
//!
//! The property worth any amount of CPU: a light node under a hostile
//! transport may *fail*, but a run that completes is *truthful*. The
//! reconnect test then shows the flip side — with a self-healing
//! transport, a server restart in the middle of a batch costs nothing
//! but a re-dial, and the final answers are identical to a fault-free
//! run's.

use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;

use lvq_bloom::BloomParams;
use lvq_chain::{Address, ChainBuilder, Transaction};
use lvq_core::{Scheme, SchemeConfig};
use lvq_crypto::Hash256;
use lvq_node::{
    FaultPlan, FaultyTransport, FullNode, LightNode, LocalTransport, NodeServer, QueryRun,
    QuerySpec, ReconnectingTcpTransport, Retrier, RetryPolicy, ServerConfig,
};

/// A 12-block LVQ chain with three addresses of different shapes: the
/// ubiquitous miner, a sparse receiver, and an address the chain never
/// saw (the completeness-sensitive case).
fn full_node() -> FullNode {
    let config = SchemeConfig::new(Scheme::Lvq, BloomParams::new(64, 2).unwrap(), 4).unwrap();
    let mut builder = ChainBuilder::new(config.chain_params()).unwrap();
    for h in 1..=12u32 {
        let mut txs = vec![Transaction::coinbase(Address::new("1Miner"), 50, h)];
        if h % 3 == 0 {
            txs.push(Transaction::coinbase(Address::new("1Sparse"), 7, 100 + h));
        }
        builder.push_block(txs).unwrap();
    }
    FullNode::new(builder.finish()).unwrap()
}

fn probe_addresses() -> Vec<Address> {
    vec![
        Address::new("1Miner"),
        Address::new("1Sparse"),
        Address::new("1Absent"),
    ]
}

/// Ground truth straight from the chain's own index.
fn truth_of(full: &FullNode, address: &Address) -> Vec<(u64, Hash256)> {
    full.chain()
        .history_of(address)
        .into_iter()
        .map(|(height, tx)| (height, tx.txid()))
        .collect()
}

fn digest(run: &QueryRun) -> Vec<(u64, Hash256)> {
    run.histories[0]
        .transactions
        .iter()
        .map(|(height, tx)| (*height, tx.txid()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24 })]

    /// For ANY fault seed and any composite corruption rate, a query
    /// that completes equals the chain's ground truth. Errors — retry
    /// exhaustion, a replayed stale frame that fails verification —
    /// are acceptable outcomes; a wrong answer never is.
    #[test]
    fn completed_runs_are_truthful_under_chaos(
        seed in any::<u64>(),
        rate_pct in 5u32..45,
    ) {
        let rate = f64::from(rate_pct) / 100.0;
        let full = full_node();
        let config = full.config();
        let expected: Vec<_> = probe_addresses()
            .iter()
            .map(|a| truth_of(&full, a))
            .collect();

        let mut chaotic = FaultyTransport::new(
            LocalTransport::new(&full),
            FaultPlan::composite(rate),
            seed,
        );
        // Microsecond backoffs: the property needs the retry *logic*,
        // not the wall-clock courtesy.
        let policy = RetryPolicy::new(8)
            .backoff(Duration::from_micros(50), Duration::from_micros(500));
        let mut retrier = Retrier::new(policy, seed ^ 0x5EED);

        // Syncing under chaos may legitimately fail; only a lie is
        // forbidden, and a lie at sync time would surface as a wrong
        // answer below.
        let Ok(mut light) = retrier.run(|_| LightNode::sync_from(&mut chaotic, config)) else {
            return;
        };
        for (address, expect) in probe_addresses().iter().zip(&expected) {
            let spec = QuerySpec::address(address.clone());
            // Failing loudly is sound — every fault either breaks the
            // frame (decode error), breaks the proof (verification
            // error), or delays the answer; none may ever *change* it.
            if let Ok(run) = light.run_with_retry(&spec, &mut chaotic, &mut retrier) {
                prop_assert_eq!(
                    &digest(&run),
                    expect,
                    "completed run must match ground truth (seed {}, rate {})",
                    seed,
                    rate
                );
            }
        }
    }

    /// The batched path holds the same line: a completed multi-address
    /// run matches ground truth for every target at once.
    #[test]
    fn completed_batches_are_truthful_under_chaos(
        seed in any::<u64>(),
        rate_pct in 5u32..35,
    ) {
        let rate = f64::from(rate_pct) / 100.0;
        let full = full_node();
        let config = full.config();
        let expected: Vec<_> = probe_addresses()
            .iter()
            .map(|a| truth_of(&full, a))
            .collect();

        let mut chaotic = FaultyTransport::new(
            LocalTransport::new(&full),
            FaultPlan::composite(rate),
            seed,
        );
        let policy = RetryPolicy::new(8)
            .backoff(Duration::from_micros(50), Duration::from_micros(500));
        let mut retrier = Retrier::new(policy, seed ^ 0xBA7C);

        let Ok(mut light) = retrier.run(|_| LightNode::sync_from(&mut chaotic, config)) else {
            return;
        };
        let spec = QuerySpec::addresses(probe_addresses());
        if let Ok(run) = light.run_with_retry(&spec, &mut chaotic, &mut retrier) {
            for (history, expect) in run.histories.iter().zip(&expected) {
                let got: Vec<(u64, Hash256)> = history
                    .transactions
                    .iter()
                    .map(|(height, tx)| (*height, tx.txid()))
                    .collect();
                prop_assert_eq!(&got, expect, "batched run must match ground truth");
            }
        }
    }
}

/// Binds to `addr`, retrying while the OS releases the port the
/// previous server held.
fn rebind(full: Arc<FullNode>, addr: &str) -> NodeServer {
    for _ in 0..200 {
        match NodeServer::bind(Arc::clone(&full), addr, ServerConfig::default()) {
            Ok(server) => return server,
            Err(_) => std::thread::sleep(Duration::from_millis(25)),
        }
    }
    panic!("port never became available for the restarted server");
}

/// Kill the server halfway through a batch of queries, restart it on
/// the same port, and keep going on the SAME transport: the client
/// re-dials, the batch completes, and every answer is identical to a
/// fault-free run over a local pipe.
#[test]
fn batch_survives_a_server_restart_byte_for_byte() {
    let full = Arc::new(full_node());
    let config = full.config();
    let addresses = probe_addresses();

    // Fault-free baseline over the in-process wire.
    let mut clean_peer = LocalTransport::new(full.as_ref());
    let mut clean_light = LightNode::sync_from(&mut clean_peer, config).unwrap();
    let baseline: Vec<QueryRun> = addresses
        .iter()
        .map(|a| {
            clean_light
                .run(&QuerySpec::address(a.clone()), &mut clean_peer)
                .unwrap()
        })
        .collect();

    let server = NodeServer::bind(Arc::clone(&full), "127.0.0.1:0", ServerConfig::default())
        .expect("loopback bind");
    let addr = server.local_addr().to_string();

    let mut transport = ReconnectingTcpTransport::connect(&addr).unwrap();
    transport.set_redial(10, Duration::from_millis(25));
    let mut light = LightNode::sync_from(&mut transport, config).unwrap();

    // First half of the batch against the original server.
    let mut runs = vec![light
        .run(&QuerySpec::address(addresses[0].clone()), &mut transport)
        .unwrap()];

    // Restart: the client hangs up first (as the active closer it
    // absorbs TIME_WAIT, leaving the port rebindable), the worker
    // reaps the EOF, the server goes down and comes back on the very
    // same address.
    transport.disconnect();
    std::thread::sleep(Duration::from_millis(500));
    let stats = server.shutdown();
    assert_eq!(stats.errors, 0, "clean first half");
    let server = rebind(Arc::clone(&full), &addr);

    // Second half: the same transport value re-dials lazily and the
    // batch just continues.
    for address in &addresses[1..] {
        runs.push(
            light
                .run(&QuerySpec::address(address.clone()), &mut transport)
                .unwrap(),
        );
    }
    assert_eq!(
        transport.reconnects(),
        1,
        "exactly one re-dial bridges the restart"
    );

    // Byte-identical to the fault-free run: same histories, same
    // balances, same completeness — and even the same payload traffic,
    // because the re-dial itself costs no application bytes.
    for (run, clean) in runs.iter().zip(&baseline) {
        assert_eq!(run.histories, clean.histories);
        assert_eq!(run.traffic, clean.traffic);
    }

    drop(transport);
    std::thread::sleep(Duration::from_millis(300));
    let stats = server.shutdown();
    assert_eq!(stats.errors, 0, "clean second half");
}
