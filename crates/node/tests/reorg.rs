//! End-to-end reorg over TCP: a fork-aware ingester adopts a longer
//! competing branch while a real socket client is connected.
//!
//! The contract under test, across the whole stack (store → chain →
//! live node → server → wire → light client):
//!
//! * the server switches to the longer branch and keeps serving;
//! * a query pinned to the client's now-orphaned headers is rejected
//!   by verification — never silently accepted;
//! * `sync_new` reports the divergence, rolls the client back to the
//!   fork point, and lands it on the winning branch;
//! * the store, reopened cold after everything is torn down, recovers
//!   to the winning branch with the displaced blocks journaled.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use lvq_bloom::BloomParams;
use lvq_chain::{Address, Block, ChainBuilder, Transaction};
use lvq_core::{Scheme, SchemeConfig};
use lvq_node::{
    FullNode, IngestConfig, LightNode, LiveNode, MemoryFeed, NodeError, NodeServer, QuerySpec,
    ResyncOutcome, ServerConfig, TcpTransport, TipIngester,
};
use lvq_store::{BlockStore, StoreConfig};

static NEXT_DIR: AtomicU64 = AtomicU64::new(0);

struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> Self {
        let n = NEXT_DIR.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("lvq-node-reorg-{tag}-{}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        ScratchDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn config() -> SchemeConfig {
    SchemeConfig::new(Scheme::Lvq, BloomParams::new(128, 2).unwrap(), 16).unwrap()
}

/// Height `h`'s canonical transactions: a `1Miner` coinbase, plus a
/// `1Sparse` one every third block.
fn truth_txs(h: u64) -> Vec<Transaction> {
    let mut txs = vec![Transaction::coinbase(Address::new("1Miner"), 50, h as u32)];
    if h.is_multiple_of(3) {
        txs.push(Transaction::coinbase(
            Address::new("1Sparse"),
            1,
            (1000 + h) as u32,
        ));
    }
    txs
}

/// Blocks `1..=total` of a chain sharing the canonical prefix up to
/// `fork` and carrying `1Rival` coinbases above it. Identical
/// transactions produce byte-identical prefixes.
fn chain_blocks(fork: u64, total: u64) -> Vec<Block> {
    let mut builder = ChainBuilder::new(config().chain_params()).unwrap();
    for h in 1..=total {
        let txs = if h <= fork {
            truth_txs(h)
        } else {
            vec![Transaction::coinbase(
                Address::new("1Rival"),
                50,
                (2000 + h) as u32,
            )]
        };
        builder.push_block(txs).unwrap();
    }
    let chain = builder.finish();
    (1..=total)
        .map(|h| (*chain.block(h).unwrap()).clone())
        .collect()
}

fn wait_for(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(1));
    }
}

const CANON: u64 = 12;
const FORK: u64 = 10;
const RIVAL_TIP: u64 = 14;
const MAX_REORG_DEPTH: u64 = 4;

#[test]
fn tcp_client_crosses_a_live_reorg_and_the_store_recovers() {
    let canonical = chain_blocks(CANON, CANON);
    let rival = chain_blocks(FORK, RIVAL_TIP);
    let rival_tip_hash = rival.last().unwrap().header.block_hash();

    // The feed announces the canonical chain first, then the longer
    // rival branch block by block.
    let mut script = canonical.clone();
    script.extend(rival[FORK as usize..].iter().cloned());

    let scratch = ScratchDir::new("tcp");
    drop(
        BlockStore::create(
            scratch.path(),
            config().chain_params(),
            StoreConfig::default(),
        )
        .unwrap(),
    );
    let (chain, report) = lvq_store::open_chain(scratch.path(), StoreConfig::default()).unwrap();
    assert!(report.is_clean());
    let store = Arc::clone(chain.source().store());
    let live = Arc::new(LiveNode::new(FullNode::new(chain).unwrap()));
    let server =
        NodeServer::bind(Arc::clone(&live), "127.0.0.1:0", ServerConfig::default()).unwrap();

    let mut transport = TcpTransport::connect(server.local_addr()).unwrap();
    let mut light = LightNode::sync_from(&mut transport, live.config())
        .unwrap()
        .with_max_reorg_depth(MAX_REORG_DEPTH);

    let feed = MemoryFeed::new(script);
    let publisher = feed.publisher();
    let ingester = TipIngester::spawn(
        Arc::clone(&live),
        Arc::clone(&store),
        feed,
        IngestConfig::new()
            .with_min_batch(2)
            .with_max_batch(8)
            .with_poll(Duration::from_micros(200))
            .with_max_reorg_depth(MAX_REORG_DEPTH),
    );
    server.attach_ingest(ingester.monitor());

    // Canonical growth: the client follows to the tip and verifies.
    publisher.publish(CANON);
    wait_for("the client to reach the canonical tip", || {
        light.sync_new(&mut transport).unwrap();
        light.client().tip_height() >= CANON
    });
    let spec = QuerySpec::address(Address::new("1Miner")).range(1, CANON);
    let run = light.run(&spec, &mut transport).unwrap();
    assert_eq!(run.histories[0].transactions.len(), CANON as usize);

    // The rival branch arrives and out-lengths the canonical tip.
    publisher.publish(RIVAL_TIP - FORK);
    wait_for("the server to adopt the rival branch", || {
        live.tip_height() == RIVAL_TIP && live.tip_hash() == rival_tip_hash
    });

    // Claim 1: the client's headers above the fork are orphaned — a
    // query pinned there must fail verification, end to end over TCP.
    let stale = QuerySpec::address(Address::new("1Miner")).range(1, CANON);
    let err = light.run(&stale, &mut transport).unwrap_err();
    assert!(
        matches!(err, NodeError::Verify(_)),
        "stale-headed query failed for the wrong reason: {err}"
    );

    // Claim 2: resync detects the divergence, rolls back to the fork
    // point, and adopts the winner.
    let outcome = light.sync_new(&mut transport).unwrap();
    assert_eq!(outcome, ResyncOutcome::Diverged { fork_height: FORK });
    assert_eq!(light.client().tip_height(), RIVAL_TIP);
    assert_eq!(light.client().hash_at(RIVAL_TIP), Some(rival_tip_hash));

    // Post-reorg queries equal the winning branch's ground truth.
    let spec = QuerySpec::addresses(vec![Address::new("1Miner"), Address::new("1Rival")])
        .range(1, RIVAL_TIP);
    let run = light.run(&spec, &mut transport).unwrap();
    assert_eq!(run.histories[0].transactions.len(), FORK as usize);
    assert_eq!(
        run.histories[1].transactions.len(),
        (RIVAL_TIP - FORK) as usize
    );
    let rival_heights: Vec<u64> = run.histories[1]
        .transactions
        .iter()
        .map(|(h, _)| *h)
        .collect();
    assert_eq!(rival_heights, (FORK + 1..=RIVAL_TIP).collect::<Vec<_>>());

    let stats = ingester.stop().unwrap();
    assert_eq!(stats.reorgs, 1);
    assert_eq!(stats.deepest_reorg, CANON - FORK);
    assert_eq!(stats.dropped_blocks, 0);
    let server_stats = server.shutdown();
    assert_eq!(server_stats.errors, 0);
    assert_eq!(
        server_stats.tip_hash, rival_tip_hash,
        "exit stats must carry the best-chain tip hash"
    );
    drop(live);
    drop(store);

    // Claim 3: a cold reopen recovers the winning branch, with the
    // displaced canonical blocks journaled in the fork sidecar log.
    let (chain, report) = lvq_store::open_chain(scratch.path(), StoreConfig::default()).unwrap();
    assert!(report.is_clean(), "unexpected recovery: {report:?}");
    assert_eq!(chain.tip_height(), RIVAL_TIP);
    assert_eq!(chain.tip_hash(), rival_tip_hash);
    let fork_log = chain.source().store().fork_log().unwrap();
    assert!(
        fork_log.iter().any(|(height, block)| *height > FORK
            && block.transactions[0].involves(&Address::new("1Miner"))),
        "the displaced canonical suffix must be journaled"
    );
    chain.validate().unwrap();
    assert_eq!(chain.history_of(&Address::new("1Miner")).len() as u64, FORK);
    assert_eq!(
        chain.history_of(&Address::new("1Rival")).len() as u64,
        RIVAL_TIP - FORK
    );
}
