//! Self-healing runtime, end to end: a poisoned request fails *that*
//! request with a structured error while the server keeps serving, and
//! a panicking ingest pipeline is restarted by its supervisor and
//! still converges on the right chain.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use lvq_bloom::BloomParams;
use lvq_chain::{Address, Block, ChainBuilder, Transaction};
use lvq_core::{Scheme, SchemeConfig};
use lvq_node::{
    BlockFeed, FeedError, FullNode, Handled, HealthState, IngestConfig, LightNode, LiveNode,
    MemoryFeed, NodeError, NodeServer, QuerySpec, ServeNode, ServerConfig, SupervisorConfig,
    TcpTransport, TipIngester, WireErrorCode,
};
use lvq_store::{BlockStore, StoreConfig};

static NEXT_DIR: AtomicU64 = AtomicU64::new(0);

struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> Self {
        let n = NEXT_DIR.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("lvq-node-sup-{tag}-{}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        ScratchDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn config() -> SchemeConfig {
    SchemeConfig::new(Scheme::Lvq, BloomParams::new(128, 2).unwrap(), 16).unwrap()
}

fn truth_blocks(total: u64) -> Vec<Block> {
    let mut builder = ChainBuilder::new(config().chain_params()).unwrap();
    for h in 1..=total {
        builder
            .push_block(vec![Transaction::coinbase(
                Address::new("1Miner"),
                50,
                h as u32,
            )])
            .unwrap();
    }
    let chain = builder.finish();
    (1..=total)
        .map(|h| (*chain.block(h).unwrap()).clone())
        .collect()
}

fn wait_for(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// A node whose handler panics on any request mentioning `1Panic` —
/// the deliberately poisoned request.
struct PanickyNode {
    inner: FullNode,
}

impl ServeNode for PanickyNode {
    fn handle_classified(&self, request: &[u8]) -> Handled {
        if request
            .windows(b"1Panic".len())
            .any(|w| w == b"1Panic".as_slice())
        {
            panic!("injected handler panic");
        }
        self.inner.handle_classified(request)
    }

    fn tip_hash(&self) -> lvq_crypto::Hash256 {
        self.inner.chain().tip_hash()
    }
}

#[test]
fn panicking_request_degrades_health_without_killing_the_server() {
    let mut builder = ChainBuilder::new(config().chain_params()).unwrap();
    for h in 1..=6u32 {
        builder
            .push_block(vec![Transaction::coinbase(Address::new("1Miner"), 50, h)])
            .unwrap();
    }
    let full = FullNode::new(builder.finish()).unwrap();
    let node = Arc::new(PanickyNode { inner: full });
    let server = NodeServer::bind(
        Arc::clone(&node),
        "127.0.0.1:0",
        ServerConfig::default().with_workers(2),
    )
    .unwrap();

    let mut transport = TcpTransport::connect(server.local_addr()).unwrap();
    let mut light = LightNode::sync_from(&mut transport, config()).unwrap();

    // A healthy request, before anything goes wrong.
    let run = light
        .run(&QuerySpec::address(Address::new("1Miner")), &mut transport)
        .unwrap();
    assert_eq!(run.histories[0].transactions.len(), 6);
    assert_eq!(server.stats().health, HealthState::Healthy);

    // The poisoned request: the panic must come back as a structured,
    // non-retryable Internal error on this same connection.
    let err = light
        .run(&QuerySpec::address(Address::new("1Panic")), &mut transport)
        .unwrap_err();
    match err {
        NodeError::Server(e) => {
            assert_eq!(e.code, WireErrorCode::Internal);
            assert!(!err.retryable(), "a poisoned request must not be retried");
        }
        other => panic!("expected a structured Internal error, got {other:?}"),
    }

    // The process survived: the same connection keeps serving, and the
    // stats show exactly one contained panic and a degraded (not
    // failed) health state.
    let run = light
        .run(&QuerySpec::address(Address::new("1Miner")), &mut transport)
        .unwrap();
    assert_eq!(run.histories[0].transactions.len(), 6);

    let stats = server.stats();
    assert_eq!(stats.panicked_requests, 1);
    assert!(
        matches!(stats.health, HealthState::Degraded { .. }),
        "health should be degraded, got {:?}",
        stats.health
    );
    assert_eq!(stats.worker_restarts, 0, "the worker itself never died");

    // Two more poisoned requests: still no process death, still
    // structured errors, counters keep counting.
    for _ in 0..2 {
        let err = light
            .run(&QuerySpec::address(Address::new("1Panic")), &mut transport)
            .unwrap_err();
        assert!(matches!(
            err,
            NodeError::Server(e) if e.code == WireErrorCode::Internal
        ));
    }
    assert_eq!(server.stats().panicked_requests, 3);

    drop(transport);
    let stats = server.shutdown();
    assert_eq!(stats.panicked_requests, 3);
    assert!(matches!(stats.health, HealthState::Degraded { .. }));
}

/// A feed that panics once, at a scripted height, then behaves.
struct PanicOnceFeed {
    inner: MemoryFeed,
    panic_from: u64,
    fired: Arc<AtomicBool>,
}

impl BlockFeed for PanicOnceFeed {
    fn fetch(&mut self, from: u64, max: u64) -> Result<Vec<Block>, FeedError> {
        if from >= self.panic_from && !self.fired.swap(true, Ordering::SeqCst) {
            panic!("injected feed panic at height {from}");
        }
        self.inner.fetch(from, max)
    }
}

#[test]
fn supervised_ingest_survives_a_panic_and_converges() {
    const TIP: u64 = 12;
    let blocks = truth_blocks(TIP);
    let tip_hash = blocks.last().unwrap().header.block_hash();

    let scratch = ScratchDir::new("ingest");
    drop(
        BlockStore::create(
            scratch.path(),
            config().chain_params(),
            StoreConfig::default(),
        )
        .unwrap(),
    );
    let (chain, report) = lvq_store::open_chain(scratch.path(), StoreConfig::default()).unwrap();
    assert!(report.is_clean());
    let store = Arc::clone(chain.source().store());
    let live = Arc::new(LiveNode::new(FullNode::new(chain).unwrap()));

    let master = MemoryFeed::new(blocks);
    master.publisher().publish_all();
    let fired = Arc::new(AtomicBool::new(false));
    let make_feed = {
        let master = master.clone();
        let fired = Arc::clone(&fired);
        move || PanicOnceFeed {
            inner: master.clone(),
            panic_from: 5,
            fired: Arc::clone(&fired),
        }
    };

    let handle = TipIngester::spawn_supervised(
        Arc::clone(&live),
        Arc::clone(&store),
        make_feed,
        IngestConfig::new()
            .with_min_batch(2)
            .with_max_batch(4)
            .with_poll(Duration::from_millis(1)),
        SupervisorConfig::new()
            .with_backoff(Duration::from_millis(1), Duration::from_millis(10))
            .with_recovered_after(Duration::from_millis(20)),
    );

    // The pipeline panics somewhere past height 5, restarts, resumes
    // from the store's persisted height, and still reaches the tip.
    wait_for("the supervised ingest to reach the tip", || {
        handle.stats().tip_height == TIP
    });
    assert!(fired.load(Ordering::SeqCst), "the panic never fired");
    assert_eq!(handle.restarts(), 1);
    wait_for("health to recover after the restart", || {
        handle.health().get() == HealthState::Healthy
    });
    assert!(handle.is_running());

    assert_eq!(live.tip_height(), TIP);
    assert_eq!(live.tip_hash(), tip_hash);
    let stats = handle.stop();
    assert_eq!(stats.tip_height, TIP);

    // The store survived the panicked attempt: clean reopen, full
    // verification.
    drop(live);
    drop(store);
    let (reopened, report) = BlockStore::open(scratch.path(), StoreConfig::default()).unwrap();
    assert!(
        report.is_clean(),
        "store dirty after supervision: {report:?}"
    );
    assert_eq!(reopened.verify_all().unwrap(), TIP);
}
