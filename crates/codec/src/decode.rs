//! The [`Decodable`] trait, the [`Reader`] cursor, and primitive impls.

use crate::error::DecodeError;
use crate::varint::read_compact_size;
use crate::MAX_DECODE_LEN;

/// A forward-only cursor over an input byte slice.
///
/// # Examples
///
/// ```
/// use lvq_codec::Reader;
///
/// # fn main() -> Result<(), lvq_codec::DecodeError> {
/// let mut reader = Reader::new(&[1, 2, 3]);
/// assert_eq!(reader.read_u8()?, 1);
/// assert_eq!(reader.remaining(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Number of bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Number of bytes consumed so far.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Consumes and returns the next `n` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::UnexpectedEof`] if fewer than `n` bytes remain.
    pub fn read_bytes(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::UnexpectedEof {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Consumes and returns the next byte.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::UnexpectedEof`] if the input is exhausted.
    pub fn read_u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.read_bytes(1)?[0])
    }

    /// Consumes the next `N` bytes as a fixed-size array.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::UnexpectedEof`] if fewer than `N` bytes remain.
    pub fn read_array<const N: usize>(&mut self) -> Result<[u8; N], DecodeError> {
        let bytes = self.read_bytes(N)?;
        let mut out = [0u8; N];
        out.copy_from_slice(bytes);
        Ok(out)
    }

    /// Reads a CompactSize length prefix, enforcing [`MAX_DECODE_LEN`].
    ///
    /// # Errors
    ///
    /// Propagates varint errors and returns [`DecodeError::LengthOverflow`]
    /// for oversized prefixes.
    pub fn read_len(&mut self) -> Result<usize, DecodeError> {
        let len = read_compact_size(self)?;
        if len > MAX_DECODE_LEN {
            return Err(DecodeError::LengthOverflow { claimed: len });
        }
        Ok(len as usize)
    }

    /// Asserts that the whole input was consumed.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::TrailingBytes`] if unread bytes remain.
    pub fn finish(&self) -> Result<(), DecodeError> {
        if self.remaining() != 0 {
            return Err(DecodeError::TrailingBytes {
                remaining: self.remaining(),
            });
        }
        Ok(())
    }
}

/// A type that can be decoded from the wire format written by
/// [`Encodable`](crate::Encodable).
pub trait Decodable: Sized {
    /// Decodes one value, advancing `reader` past its encoding.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] if the input is truncated, non-canonical,
    /// or contains invalid values.
    fn decode_from(reader: &mut Reader<'_>) -> Result<Self, DecodeError>;
}

/// Decodes a value and requires the input to be fully consumed.
///
/// # Errors
///
/// Propagates decoding errors and returns [`DecodeError::TrailingBytes`] if
/// the encoding does not span the entire input.
///
/// # Examples
///
/// ```
/// use lvq_codec::{decode_exact, Encodable};
///
/// # fn main() -> Result<(), lvq_codec::DecodeError> {
/// let n: u32 = decode_exact(&7u32.encode())?;
/// assert_eq!(n, 7);
/// # Ok(())
/// # }
/// ```
pub fn decode_exact<T: Decodable>(bytes: &[u8]) -> Result<T, DecodeError> {
    let mut reader = Reader::new(bytes);
    let value = T::decode_from(&mut reader)?;
    reader.finish()?;
    Ok(value)
}

macro_rules! impl_decodable_int {
    ($($t:ty),*) => {$(
        impl Decodable for $t {
            fn decode_from(reader: &mut Reader<'_>) -> Result<Self, DecodeError> {
                Ok(<$t>::from_le_bytes(reader.read_array()?))
            }
        }
    )*};
}

impl_decodable_int!(u16, u32, u64, i64);

impl Decodable for u8 {
    fn decode_from(reader: &mut Reader<'_>) -> Result<Self, DecodeError> {
        reader.read_u8()
    }
}

impl Decodable for bool {
    fn decode_from(reader: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match reader.read_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(DecodeError::InvalidValue {
                what: "bool",
                found: u64::from(other),
            }),
        }
    }
}

impl<const N: usize> Decodable for [u8; N] {
    fn decode_from(reader: &mut Reader<'_>) -> Result<Self, DecodeError> {
        reader.read_array()
    }
}

impl<T: Decodable> Decodable for Vec<T> {
    fn decode_from(reader: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let len = reader.read_len()?;
        // Cap the pre-allocation: `len` is attacker-controlled, and element
        // encodings are at least one byte, so anything larger than the
        // remaining input is certain to fail with EOF anyway.
        let mut out = Vec::with_capacity(len.min(reader.remaining()));
        for _ in 0..len {
            out.push(T::decode_from(reader)?);
        }
        Ok(out)
    }
}

impl Decodable for String {
    fn decode_from(reader: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let len = reader.read_len()?;
        let bytes = reader.read_bytes(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::InvalidUtf8)
    }
}

impl<T: Decodable> Decodable for Option<T> {
    fn decode_from(reader: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match reader.read_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode_from(reader)?)),
            other => Err(DecodeError::InvalidValue {
                what: "option tag",
                found: u64::from(other),
            }),
        }
    }
}

impl<A: Decodable, B: Decodable> Decodable for (A, B) {
    fn decode_from(reader: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok((A::decode_from(reader)?, B::decode_from(reader)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Encodable;
    use proptest::prelude::*;

    #[test]
    fn bool_rejects_other_bytes() {
        assert!(matches!(
            decode_exact::<bool>(&[2]),
            Err(DecodeError::InvalidValue { what: "bool", .. })
        ));
    }

    #[test]
    fn option_rejects_bad_tag() {
        assert!(matches!(
            decode_exact::<Option<u8>>(&[9, 0]),
            Err(DecodeError::InvalidValue { .. })
        ));
    }

    #[test]
    fn trailing_bytes_detected() {
        assert!(matches!(
            decode_exact::<u8>(&[1, 2]),
            Err(DecodeError::TrailingBytes { remaining: 1 })
        ));
    }

    #[test]
    fn huge_claimed_vec_fails_without_allocating() {
        let mut buf = Vec::new();
        crate::write_compact_size(&mut buf, u64::MAX);
        assert!(matches!(
            decode_exact::<Vec<u8>>(&buf),
            Err(DecodeError::LengthOverflow { .. })
        ));
        // A large-but-allowed claim still fails fast on EOF.
        let mut buf = Vec::new();
        crate::write_compact_size(&mut buf, 1_000_000);
        buf.push(0);
        assert!(matches!(
            decode_exact::<Vec<u8>>(&buf),
            Err(DecodeError::UnexpectedEof { .. })
        ));
    }

    #[test]
    fn invalid_utf8_rejected() {
        // length 1, byte 0xFF: invalid UTF-8.
        assert_eq!(
            decode_exact::<String>(&[1, 0xFF]),
            Err(DecodeError::InvalidUtf8)
        );
    }

    proptest! {
        #[test]
        fn roundtrip_u64(v: u64) {
            prop_assert_eq!(decode_exact::<u64>(&v.encode()).unwrap(), v);
        }

        #[test]
        fn roundtrip_vec_u32(v: Vec<u32>) {
            prop_assert_eq!(decode_exact::<Vec<u32>>(&v.encode()).unwrap(), v);
        }

        #[test]
        fn roundtrip_string(s: String) {
            prop_assert_eq!(decode_exact::<String>(&s.encode()).unwrap(), s);
        }

        #[test]
        fn roundtrip_nested(v: Vec<(u16, Option<String>)>) {
            let bytes = v.encode();
            prop_assert_eq!(bytes.len(), v.encoded_len());
            prop_assert_eq!(
                decode_exact::<Vec<(u16, Option<String>)>>(&bytes).unwrap(),
                v
            );
        }

        #[test]
        fn arbitrary_bytes_never_panic(bytes: Vec<u8>) {
            let _ = decode_exact::<Vec<String>>(&bytes);
            let _ = decode_exact::<Vec<(u64, bool)>>(&bytes);
        }
    }
}
