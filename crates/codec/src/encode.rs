//! The [`Encodable`] trait and implementations for primitive types.

use crate::varint::{compact_size_len, write_compact_size};

/// A type with a canonical wire encoding.
///
/// Implementations must uphold two invariants that the rest of the
/// workspace relies on:
///
/// 1. `encoded_len()` equals the number of bytes `encode_into` appends.
///    The evaluation harness reports `encoded_len` as the communication
///    cost, and the integration tests cross-check it against real
///    encodings.
/// 2. The encoding is injective for a fixed type: distinct values encode
///    to distinct byte strings (this is what makes hashing encodings safe).
///
/// # Examples
///
/// ```
/// use lvq_codec::Encodable;
///
/// assert_eq!(42u32.encode(), vec![42, 0, 0, 0]);
/// assert_eq!(42u32.encoded_len(), 4);
/// ```
pub trait Encodable {
    /// Appends this value's encoding to `out`.
    fn encode_into(&self, out: &mut Vec<u8>);

    /// Returns the exact number of bytes [`Encodable::encode_into`] appends.
    fn encoded_len(&self) -> usize;

    /// Encodes this value into a fresh buffer.
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        self.encode_into(&mut out);
        debug_assert_eq!(out.len(), self.encoded_len());
        out
    }
}

macro_rules! impl_encodable_int {
    ($($t:ty),*) => {$(
        impl Encodable for $t {
            fn encode_into(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }

            fn encoded_len(&self) -> usize {
                std::mem::size_of::<$t>()
            }
        }
    )*};
}

impl_encodable_int!(u8, u16, u32, u64, i64);

impl Encodable for bool {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }

    fn encoded_len(&self) -> usize {
        1
    }
}

impl<const N: usize> Encodable for [u8; N] {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(self);
    }

    fn encoded_len(&self) -> usize {
        N
    }
}

/// `Vec<T>` encodes as a CompactSize element count followed by each element.
impl<T: Encodable> Encodable for Vec<T> {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.as_slice().encode_into(out)
    }

    fn encoded_len(&self) -> usize {
        self.as_slice().encoded_len()
    }
}

impl<T: Encodable> Encodable for [T] {
    fn encode_into(&self, out: &mut Vec<u8>) {
        write_compact_size(out, self.len() as u64);
        for item in self {
            item.encode_into(out);
        }
    }

    fn encoded_len(&self) -> usize {
        compact_size_len(self.len() as u64) + self.iter().map(Encodable::encoded_len).sum::<usize>()
    }
}

/// Strings encode as a CompactSize byte count followed by UTF-8 bytes.
impl Encodable for String {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.as_str().encode_into(out)
    }

    fn encoded_len(&self) -> usize {
        self.as_str().encoded_len()
    }
}

impl Encodable for str {
    fn encode_into(&self, out: &mut Vec<u8>) {
        write_compact_size(out, self.len() as u64);
        out.extend_from_slice(self.as_bytes());
    }

    fn encoded_len(&self) -> usize {
        compact_size_len(self.len() as u64) + self.len()
    }
}

/// `Option<T>` encodes as a presence byte (0/1) followed by the value.
impl<T: Encodable> Encodable for Option<T> {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode_into(out);
            }
        }
    }

    fn encoded_len(&self) -> usize {
        1 + self.as_ref().map_or(0, Encodable::encoded_len)
    }
}

impl<A: Encodable, B: Encodable> Encodable for (A, B) {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.0.encode_into(out);
        self.1.encode_into(out);
    }

    fn encoded_len(&self) -> usize {
        self.0.encoded_len() + self.1.encoded_len()
    }
}

impl<T: Encodable + ?Sized> Encodable for &T {
    fn encode_into(&self, out: &mut Vec<u8>) {
        (**self).encode_into(out)
    }

    fn encoded_len(&self) -> usize {
        (**self).encoded_len()
    }
}

impl<T: Encodable + ?Sized> Encodable for Box<T> {
    fn encode_into(&self, out: &mut Vec<u8>) {
        (**self).encode_into(out)
    }

    fn encoded_len(&self) -> usize {
        (**self).encoded_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ints_are_little_endian() {
        assert_eq!(0x0102u16.encode(), vec![0x02, 0x01]);
        assert_eq!(0x01020304u32.encode(), vec![0x04, 0x03, 0x02, 0x01]);
        assert_eq!(1u64.encode()[0], 1);
        assert_eq!((-1i64).encode(), vec![0xFF; 8]);
    }

    #[test]
    fn vec_has_length_prefix() {
        let v: Vec<u8> = vec![7, 8];
        assert_eq!(v.encode(), vec![2, 7, 8]);
        assert_eq!(v.encoded_len(), 3);
    }

    #[test]
    fn empty_vec_is_single_zero_byte() {
        let v: Vec<u32> = Vec::new();
        assert_eq!(v.encode(), vec![0]);
    }

    #[test]
    fn string_encoding() {
        let s = "ab".to_string();
        assert_eq!(s.encode(), vec![2, b'a', b'b']);
        assert_eq!(s.encoded_len(), 3);
    }

    #[test]
    fn option_encoding() {
        assert_eq!(None::<u8>.encode(), vec![0]);
        assert_eq!(Some(5u8).encode(), vec![1, 5]);
        assert_eq!(Some(5u32).encoded_len(), 5);
    }

    #[test]
    fn array_encoding_has_no_prefix() {
        let a = [1u8, 2, 3];
        assert_eq!(a.encode(), vec![1, 2, 3]);
    }

    #[test]
    fn nested_len_matches_bytes() {
        let v: Vec<Vec<u16>> = vec![vec![1, 2], vec![], vec![3]];
        assert_eq!(v.encode().len(), v.encoded_len());
    }
}
