//! Canonical wire encoding for the LVQ reproduction.
//!
//! Every proof, fragment, and RPC message in this workspace is serialised
//! through the [`Encodable`]/[`Decodable`] traits defined here, and every
//! byte count reported by the evaluation harness is the length of a real
//! encoding produced by this crate. The format follows Bitcoin's
//! conventions: little-endian fixed-width integers and CompactSize varints
//! for lengths.
//!
//! # Examples
//!
//! ```
//! use lvq_codec::{Decodable, Encodable, Reader};
//!
//! # fn main() -> Result<(), lvq_codec::DecodeError> {
//! let value: Vec<u32> = vec![1, 2, 3];
//! let bytes = value.encode();
//! assert_eq!(bytes.len(), value.encoded_len());
//!
//! let mut reader = Reader::new(&bytes);
//! let round_tripped = Vec::<u32>::decode_from(&mut reader)?;
//! reader.finish()?;
//! assert_eq!(round_tripped, value);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod decode;
mod encode;
mod error;
mod varint;

pub use decode::{decode_exact, Decodable, Reader};
pub use encode::Encodable;
pub use error::DecodeError;
pub use varint::{compact_size_len, read_compact_size, write_compact_size};

/// Hard cap on any single length prefix accepted while decoding.
///
/// This bounds allocations driven by untrusted input: a malicious peer can
/// claim a collection holds billions of elements, but decoding fails before
/// any proportional allocation happens. 32 MiB comfortably exceeds every
/// legitimate message in this workspace (the largest are ~1 MB integral
/// blocks and 500 KB Bloom filters).
pub const MAX_DECODE_LEN: u64 = 32 * 1024 * 1024;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facade_roundtrip() {
        let v: Vec<u64> = vec![0, 1, u64::MAX];
        let bytes = v.encode();
        let back: Vec<u64> = decode_exact(&bytes).unwrap();
        assert_eq!(back, v);
    }
}
