//! Decoding error type.

use std::error::Error;
use std::fmt;

/// Error returned when decoding a wire message fails.
///
/// Encoding is infallible (it writes into a growable buffer), so only the
/// decoding direction carries an error type.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DecodeError {
    /// The input ended before the value was fully decoded.
    UnexpectedEof {
        /// Bytes that were needed to continue decoding.
        needed: usize,
        /// Bytes that remained in the input.
        remaining: usize,
    },
    /// A CompactSize varint used a longer encoding than necessary.
    ///
    /// Canonical encodings are enforced so that every value has exactly one
    /// byte representation; otherwise a malicious prover could inflate
    /// measured proof sizes or produce hash-distinct copies of one message.
    NonCanonicalVarInt {
        /// The decoded value.
        value: u64,
    },
    /// A length prefix exceeded [`crate::MAX_DECODE_LEN`].
    LengthOverflow {
        /// The claimed length.
        claimed: u64,
    },
    /// A decoded byte was not a valid value for the target type.
    InvalidValue {
        /// Human-readable description of the expectation that failed.
        what: &'static str,
        /// The offending raw value, widened to `u64`.
        found: u64,
    },
    /// Input remained after the outermost value was decoded.
    TrailingBytes {
        /// Number of unread bytes.
        remaining: usize,
    },
    /// A UTF-8 string field contained invalid UTF-8.
    InvalidUtf8,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnexpectedEof { needed, remaining } => write!(
                f,
                "unexpected end of input: needed {needed} more bytes, {remaining} remaining"
            ),
            DecodeError::NonCanonicalVarInt { value } => {
                write!(f, "non-canonical CompactSize encoding of {value}")
            }
            DecodeError::LengthOverflow { claimed } => {
                write!(f, "length prefix {claimed} exceeds the decode limit")
            }
            DecodeError::InvalidValue { what, found } => {
                write!(f, "invalid value for {what}: {found}")
            }
            DecodeError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after decoded value")
            }
            DecodeError::InvalidUtf8 => write!(f, "string field was not valid UTF-8"),
        }
    }
}

impl Error for DecodeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs = [
            DecodeError::UnexpectedEof {
                needed: 4,
                remaining: 1,
            },
            DecodeError::NonCanonicalVarInt { value: 7 },
            DecodeError::LengthOverflow { claimed: u64::MAX },
            DecodeError::InvalidValue {
                what: "bool",
                found: 2,
            },
            DecodeError::TrailingBytes { remaining: 3 },
            DecodeError::InvalidUtf8,
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            let first = s.chars().next().unwrap();
            assert!(!first.is_uppercase(), "error messages start lowercase: {s}");
            assert!(!s.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DecodeError>();
    }
}
