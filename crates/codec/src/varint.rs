//! Bitcoin CompactSize varints.
//!
//! | value range            | encoding                      | bytes |
//! |------------------------|-------------------------------|-------|
//! | 0 ..= 0xFC             | the value itself              | 1     |
//! | 0xFD ..= 0xFFFF        | `0xFD` + u16 little-endian    | 3     |
//! | 0x1_0000 ..= 0xFFFF_FFFF | `0xFE` + u32 little-endian  | 5     |
//! | larger                 | `0xFF` + u64 little-endian    | 9     |
//!
//! Decoding enforces canonical (minimal-length) encodings.

use crate::decode::Reader;
use crate::error::DecodeError;

/// Appends the CompactSize encoding of `value` to `out`.
///
/// # Examples
///
/// ```
/// let mut buf = Vec::new();
/// lvq_codec::write_compact_size(&mut buf, 0xFD);
/// assert_eq!(buf, [0xFD, 0xFD, 0x00]);
/// ```
pub fn write_compact_size(out: &mut Vec<u8>, value: u64) {
    match value {
        0..=0xFC => out.push(value as u8),
        0xFD..=0xFFFF => {
            out.push(0xFD);
            out.extend_from_slice(&(value as u16).to_le_bytes());
        }
        0x1_0000..=0xFFFF_FFFF => {
            out.push(0xFE);
            out.extend_from_slice(&(value as u32).to_le_bytes());
        }
        _ => {
            out.push(0xFF);
            out.extend_from_slice(&value.to_le_bytes());
        }
    }
}

/// Returns the number of bytes [`write_compact_size`] emits for `value`.
///
/// # Examples
///
/// ```
/// assert_eq!(lvq_codec::compact_size_len(0xFC), 1);
/// assert_eq!(lvq_codec::compact_size_len(0xFD), 3);
/// assert_eq!(lvq_codec::compact_size_len(u64::MAX), 9);
/// ```
pub const fn compact_size_len(value: u64) -> usize {
    match value {
        0..=0xFC => 1,
        0xFD..=0xFFFF => 3,
        0x1_0000..=0xFFFF_FFFF => 5,
        _ => 9,
    }
}

/// Reads a canonically encoded CompactSize from `reader`.
///
/// # Errors
///
/// Returns [`DecodeError::UnexpectedEof`] if the input is exhausted and
/// [`DecodeError::NonCanonicalVarInt`] if the value could have been encoded
/// in fewer bytes.
pub fn read_compact_size(reader: &mut Reader<'_>) -> Result<u64, DecodeError> {
    let tag = reader.read_u8()?;
    let value = match tag {
        0..=0xFC => u64::from(tag),
        0xFD => {
            let v = u64::from(u16::from_le_bytes(reader.read_array()?));
            if v < 0xFD {
                return Err(DecodeError::NonCanonicalVarInt { value: v });
            }
            v
        }
        0xFE => {
            let v = u64::from(u32::from_le_bytes(reader.read_array()?));
            if v <= 0xFFFF {
                return Err(DecodeError::NonCanonicalVarInt { value: v });
            }
            v
        }
        0xFF => {
            let v = u64::from_le_bytes(reader.read_array()?);
            if v <= 0xFFFF_FFFF {
                return Err(DecodeError::NonCanonicalVarInt { value: v });
            }
            v
        }
    };
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: u64) -> u64 {
        let mut buf = Vec::new();
        write_compact_size(&mut buf, v);
        assert_eq!(buf.len(), compact_size_len(v));
        let mut r = Reader::new(&buf);
        let back = read_compact_size(&mut r).unwrap();
        r.finish().unwrap();
        back
    }

    #[test]
    fn boundary_values_roundtrip() {
        for v in [
            0,
            1,
            0xFC,
            0xFD,
            0xFE,
            0xFFFF,
            0x1_0000,
            0xFFFF_FFFF,
            0x1_0000_0000,
            u64::MAX,
        ] {
            assert_eq!(roundtrip(v), v);
        }
    }

    #[test]
    fn lengths_match_spec() {
        assert_eq!(compact_size_len(0), 1);
        assert_eq!(compact_size_len(0xFC), 1);
        assert_eq!(compact_size_len(0xFD), 3);
        assert_eq!(compact_size_len(0xFFFF), 3);
        assert_eq!(compact_size_len(0x1_0000), 5);
        assert_eq!(compact_size_len(0xFFFF_FFFF), 5);
        assert_eq!(compact_size_len(0x1_0000_0000), 9);
    }

    #[test]
    fn non_canonical_is_rejected() {
        // 5 encoded with the 3-byte form.
        let buf = [0xFD, 0x05, 0x00];
        let mut r = Reader::new(&buf);
        assert_eq!(
            read_compact_size(&mut r),
            Err(DecodeError::NonCanonicalVarInt { value: 5 })
        );
        // 0xFFFF encoded with the 5-byte form.
        let buf = [0xFE, 0xFF, 0xFF, 0x00, 0x00];
        let mut r = Reader::new(&buf);
        assert!(matches!(
            read_compact_size(&mut r),
            Err(DecodeError::NonCanonicalVarInt { value: 0xFFFF })
        ));
        // 0xFFFF_FFFF encoded with the 9-byte form.
        let buf = [0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0];
        let mut r = Reader::new(&buf);
        assert!(matches!(
            read_compact_size(&mut r),
            Err(DecodeError::NonCanonicalVarInt { value: 0xFFFF_FFFF })
        ));
    }

    #[test]
    fn truncated_input_is_eof() {
        let buf = [0xFD, 0x05];
        let mut r = Reader::new(&buf);
        assert!(matches!(
            read_compact_size(&mut r),
            Err(DecodeError::UnexpectedEof { .. })
        ));
    }

    #[test]
    fn empty_input_is_eof() {
        let mut r = Reader::new(&[]);
        assert!(matches!(
            read_compact_size(&mut r),
            Err(DecodeError::UnexpectedEof { .. })
        ));
    }
}
