//! Shared page/record framing for the store's segmented files.
//!
//! Both on-disk substrates — the block store's `segment-NNNN.blk`
//! files and the address index's `nodes-NNNN.seg` files — use the same
//! machinery: a 12-byte segment header (`magic | version u32 | segment
//! u32`) followed by CRC-framed records:
//!
//! ```text
//! len u32 LE | crc32(payload) u32 LE | payload (len bytes)
//! ```
//!
//! All integers are little-endian; a [`RecordLoc`] points at the `len`
//! field. This module holds the primitives; the policies (what counts
//! as a torn tail, when to rebuild) stay with each caller.

use std::fs::File;
use std::path::PathBuf;
use std::sync::Arc;

#[cfg(not(unix))]
use std::io::{Read, Seek, SeekFrom};

use crate::crc32::crc32;

/// Bytes of segment header: magic, version, segment number.
pub(crate) const SEGMENT_HEADER_LEN: u64 = 12;
/// Bytes of record framing before the payload: length and CRC.
pub(crate) const RECORD_HEADER_LEN: u64 = 8;

/// Where one record lives within a segmented file set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct RecordLoc {
    pub(crate) segment: u32,
    /// Offset of the record header within the segment file.
    pub(crate) offset: u64,
    /// Payload length in bytes.
    pub(crate) len: u32,
}

impl RecordLoc {
    pub(crate) fn end(&self) -> u64 {
        self.offset + RECORD_HEADER_LEN + self.len as u64
    }
}

/// One open segment: a shared read handle plus its path (the path is
/// the portable fallback when positional reads are unavailable).
#[derive(Debug, Clone)]
pub(crate) struct SegmentHandle {
    pub(crate) file: Arc<File>,
    pub(crate) path: PathBuf,
}

/// Builds a 12-byte segment header for `segment` under `magic`.
pub(crate) fn segment_header(
    magic: [u8; 4],
    version: u32,
    segment: u32,
) -> [u8; SEGMENT_HEADER_LEN as usize] {
    let mut header = [0u8; SEGMENT_HEADER_LEN as usize];
    header[..4].copy_from_slice(&magic);
    header[4..8].copy_from_slice(&version.to_le_bytes());
    header[8..12].copy_from_slice(&segment.to_le_bytes());
    header
}

/// Frames `payload` as one record: `len | crc32 | payload`.
pub(crate) fn frame_record(payload: &[u8]) -> Vec<u8> {
    let mut record = Vec::with_capacity(RECORD_HEADER_LEN as usize + payload.len());
    record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    record.extend_from_slice(&crc32(payload).to_le_bytes());
    record.extend_from_slice(payload);
    record
}

/// Positional read of `buf.len()` bytes at `offset`.
#[cfg(unix)]
pub(crate) fn read_exact_at(
    handle: &SegmentHandle,
    buf: &mut [u8],
    offset: u64,
) -> std::io::Result<()> {
    use std::os::unix::fs::FileExt;
    handle.file.read_exact_at(buf, offset)
}

/// Portable fallback: a fresh handle per read keeps `&self` reads
/// seek-free on the shared descriptor.
#[cfg(not(unix))]
pub(crate) fn read_exact_at(
    handle: &SegmentHandle,
    buf: &mut [u8],
    offset: u64,
) -> std::io::Result<()> {
    let mut file = File::open(&handle.path)?;
    file.seek(SeekFrom::Start(offset))?;
    file.read_exact(buf)
}

/// Why a framed record failed to read back.
#[derive(Debug)]
pub(crate) enum FrameError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The bytes were read but fail the framing: length field or CRC.
    Corrupt {
        /// What exactly failed.
        detail: &'static str,
    },
}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Reads the record at `loc` back, verifying its length field and CRC
/// against what the caller's index committed to.
pub(crate) fn read_record_payload(
    handle: &SegmentHandle,
    loc: RecordLoc,
) -> Result<Vec<u8>, FrameError> {
    let mut buf = vec![0u8; (RECORD_HEADER_LEN + loc.len as u64) as usize];
    read_exact_at(handle, &mut buf, loc.offset)?;
    let stored_len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]);
    let stored_crc = u32::from_le_bytes([buf[4], buf[5], buf[6], buf[7]]);
    if stored_len != loc.len {
        return Err(FrameError::Corrupt {
            detail: "length field disagrees with index",
        });
    }
    let payload = &buf[RECORD_HEADER_LEN as usize..];
    if crc32(payload) != stored_crc {
        return Err(FrameError::Corrupt {
            detail: "crc mismatch",
        });
    }
    Ok(payload.to_vec())
}

/// What the reopen scan found at one record offset.
pub(crate) enum ScannedRecord {
    /// A well-framed record.
    Valid(RecordLoc),
    /// Incomplete or CRC-failed exactly at end-of-file.
    Torn,
    /// CRC-failed *before* end-of-file — real corruption.
    Corrupt {
        /// Offset of the bad record header.
        offset: u64,
        /// What exactly failed.
        detail: &'static str,
    },
}

/// Examines the record starting at `offset` during a reopen scan.
pub(crate) fn scan_record(
    handle: &SegmentHandle,
    segment: u32,
    offset: u64,
    file_len: u64,
) -> std::io::Result<ScannedRecord> {
    if offset + RECORD_HEADER_LEN > file_len {
        return Ok(ScannedRecord::Torn);
    }
    let mut header = [0u8; RECORD_HEADER_LEN as usize];
    read_exact_at(handle, &mut header, offset)?;
    let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
    let stored_crc = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
    let end = offset + RECORD_HEADER_LEN + len as u64;
    if end > file_len {
        return Ok(ScannedRecord::Torn);
    }
    let mut payload = vec![0u8; len as usize];
    read_exact_at(handle, &mut payload, offset + RECORD_HEADER_LEN)?;
    if crc32(&payload) != stored_crc {
        return if end == file_len {
            // All bytes present but wrong checksum at the very tail: a
            // torn write whose data pages never hit disk.
            Ok(ScannedRecord::Torn)
        } else {
            Ok(ScannedRecord::Corrupt {
                offset,
                detail: "crc mismatch",
            })
        };
    }
    Ok(ScannedRecord::Valid(RecordLoc {
        segment,
        offset,
        len,
    }))
}
