//! CRC-32 (IEEE 802.3 polynomial), the per-record checksum.
//!
//! Implemented here because the build is offline; the table is built at
//! compile time and the algorithm is the standard reflected form used by
//! zlib, so values match any external `crc32` tool.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &byte in data {
        crc = TABLE[((crc ^ byte as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The classic check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn sensitive_to_any_flip() {
        let base = crc32(b"hello world");
        let mut data = *b"hello world";
        for i in 0..data.len() {
            for bit in 0..8 {
                data[i] ^= 1 << bit;
                assert_ne!(crc32(&data), base, "flip at byte {i} bit {bit}");
                data[i] ^= 1 << bit;
            }
        }
    }
}
