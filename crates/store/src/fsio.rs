//! The filesystem seam in front of every durable mutation.
//!
//! Everything the store ever does to make bytes durable — appending to
//! a segment, fsyncing a file or its parent directory, atomically
//! renaming a temp file into place, truncating a torn tail, deleting a
//! dropped segment — goes through one [`StoreFs`] trait object.
//! Production code uses the zero-cost passthrough [`RealFs`]; the crash
//! harness swaps in [`CrashFs`], which executes a seeded
//! [`CrashSchedule`]: run normally until the Nth durable operation,
//! then either abort it entirely or persist only a prefix of the write
//! (a torn write), and from that moment refuse every further operation
//! — exactly like a process that lost power. The store's best-effort
//! `Drop` syncs are thereby neutralised too, so a test can "reboot" by
//! simply reopening the directory with [`RealFs`] and asserting the
//! recovery invariants.

use std::fmt;
use std::fs::File;
use std::io::{self, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The durable mutation operations of a block store or address index.
///
/// Implementations decide whether each operation really happens
/// ([`RealFs`]) or is deterministically faulted ([`CrashFs`]). Read
/// paths never go through this trait — crash faults only ever affect
/// what reaches the disk, never what is read back.
pub trait StoreFs: fmt::Debug + Send + Sync {
    /// Appends/writes `buf` through `file` at its current position.
    fn write_all(&self, file: &File, buf: &[u8]) -> io::Result<()>;

    /// Flushes `file`'s data and metadata to stable storage.
    fn sync(&self, file: &File) -> io::Result<()>;

    /// Atomically renames `from` to `to` (same directory).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Truncates (or extends) `file` to exactly `len` bytes.
    fn set_len(&self, file: &File, len: u64) -> io::Result<()>;

    /// Removes the file at `path`.
    fn remove_file(&self, path: &Path) -> io::Result<()>;

    /// Recursively removes the directory at `dir` (used when an index
    /// rebuild wipes its derived state).
    fn remove_dir_all(&self, dir: &Path) -> io::Result<()>;

    /// Fsyncs the *directory* at `dir`, making renames and file
    /// creations within it power-loss durable.
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;
}

/// The production [`StoreFs`]: every operation goes straight to the OS.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealFs;

impl StoreFs for RealFs {
    fn write_all(&self, mut file: &File, buf: &[u8]) -> io::Result<()> {
        file.write_all(buf)
    }

    fn sync(&self, file: &File) -> io::Result<()> {
        file.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn set_len(&self, file: &File, len: u64) -> io::Result<()> {
        file.set_len(len)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn remove_dir_all(&self, dir: &Path) -> io::Result<()> {
        std::fs::remove_dir_all(dir)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        // On POSIX a directory is fsynced through an open handle to it;
        // on platforms where opening a directory fails, the rename's
        // own durability is the best available and the failure is
        // ignored by the caller policy (we surface it — callers treat a
        // sync_dir error like any sync error).
        File::open(dir)?.sync_all()
    }
}

/// How a [`CrashFs`] fails its scheduled operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashMode {
    /// The scheduled operation does not happen at all — the process
    /// died just before the syscall.
    Abort,
    /// A scheduled *write* persists only a seeded prefix of its bytes
    /// before the process dies (a torn write); every other operation
    /// kind degenerates to [`CrashMode::Abort`].
    Torn,
}

/// A deterministic crash plan for [`CrashFs`]: crash at the
/// `crash_at`-th durable operation (0-based), in the given mode, with
/// torn-prefix lengths derived from `seed`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashSchedule {
    /// Index of the durable operation to crash at; `u64::MAX` never
    /// crashes (useful for *counting* a workload's crash points).
    pub crash_at: u64,
    /// What happens at the crash point.
    pub mode: CrashMode,
    /// Seed for the torn-prefix length.
    pub seed: u64,
}

impl CrashSchedule {
    /// A schedule that never fires — run the workload to completion and
    /// read [`CrashFs::ops`] to enumerate its crash points.
    pub fn count_only() -> Self {
        CrashSchedule {
            crash_at: u64::MAX,
            mode: CrashMode::Abort,
            seed: 0,
        }
    }

    /// Crash at durable operation `crash_at` in `mode`.
    pub fn at(crash_at: u64, mode: CrashMode, seed: u64) -> Self {
        CrashSchedule {
            crash_at,
            mode,
            seed,
        }
    }
}

/// The error every [`CrashFs`] operation returns once the simulated
/// process is dead; carried inside the [`io::Error`] so tests can tell
/// injected crashes from real I/O failures.
#[derive(Debug)]
pub struct SimulatedCrash {
    /// The durable-operation index the crash fired at.
    pub op: u64,
}

impl fmt::Display for SimulatedCrash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "simulated crash at durable op {}", self.op)
    }
}

impl std::error::Error for SimulatedCrash {}

/// `true` if `e` is a [`CrashFs`] injection rather than a real I/O
/// failure.
pub fn is_simulated_crash(e: &io::Error) -> bool {
    e.get_ref()
        .is_some_and(|inner| inner.is::<SimulatedCrash>())
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[derive(Debug)]
struct CrashState {
    schedule: CrashSchedule,
    /// Durable operations *attempted* so far (including the fatal one).
    ops: AtomicU64,
    dead: AtomicBool,
    /// Indices of operations that were byte writes — the only kind a
    /// torn crash treats differently from an abort.
    writes: Mutex<Vec<u64>>,
}

/// A [`StoreFs`] that executes a [`CrashSchedule`]: a deterministic
/// stand-in for `kill -9` at an exact durable operation. After the
/// crash point fires, every operation — including the store's
/// best-effort `Drop` syncs — fails with [`SimulatedCrash`] without
/// touching the disk, so the directory is frozen exactly as a dead
/// process would have left it. Clones share the same schedule and op
/// counter, so one `CrashFs` can be threaded through a store *and* its
/// address index and count their durable operations on a single line.
#[derive(Debug, Clone)]
pub struct CrashFs {
    state: Arc<CrashState>,
}

impl CrashFs {
    /// A crash filesystem executing `schedule`.
    pub fn new(schedule: CrashSchedule) -> Self {
        CrashFs {
            state: Arc::new(CrashState {
                schedule,
                ops: AtomicU64::new(0),
                dead: AtomicBool::new(false),
                writes: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Durable operations attempted so far. With
    /// [`CrashSchedule::count_only`] this enumerates a workload's crash
    /// points after running it to completion.
    pub fn ops(&self) -> u64 {
        self.state.ops.load(Ordering::SeqCst)
    }

    /// `true` once the scheduled crash has fired.
    pub fn crashed(&self) -> bool {
        self.state.dead.load(Ordering::SeqCst)
    }

    /// Indices of the operations so far that were byte writes. A torn
    /// crash only differs from an abort at these indices, so a sweep
    /// can restrict its torn pass to them.
    pub fn write_ops(&self) -> Vec<u64> {
        self.state.writes.lock().expect("not poisoned").clone()
    }

    fn crash_error(&self, op: u64) -> io::Error {
        io::Error::other(SimulatedCrash { op })
    }

    /// Accounts one durable operation. Returns `Ok(None)` to proceed
    /// normally, `Ok(Some(op))` when this is the scheduled crash point
    /// (the caller applies the mode-specific partial effect, then must
    /// return the crash error), or `Err` when already dead.
    fn gate(&self) -> Result<Option<u64>, io::Error> {
        if self.state.dead.load(Ordering::SeqCst) {
            return Err(self.crash_error(self.state.schedule.crash_at));
        }
        let op = self.state.ops.fetch_add(1, Ordering::SeqCst);
        if op == self.state.schedule.crash_at {
            self.state.dead.store(true, Ordering::SeqCst);
            return Ok(Some(op));
        }
        Ok(None)
    }

    /// [`CrashFs::gate`] for write operations: additionally records the
    /// op index for [`CrashFs::write_ops`].
    fn gate_write(&self) -> Result<Option<u64>, io::Error> {
        let before = self.state.ops.load(Ordering::SeqCst);
        let outcome = self.gate()?;
        self.state
            .writes
            .lock()
            .expect("not poisoned")
            .push(outcome.unwrap_or(before));
        Ok(outcome)
    }
}

impl StoreFs for CrashFs {
    fn write_all(&self, mut file: &File, buf: &[u8]) -> io::Result<()> {
        match self.gate_write()? {
            None => file.write_all(buf),
            Some(op) => {
                if self.state.schedule.mode == CrashMode::Torn && !buf.is_empty() {
                    let keep =
                        (splitmix64(self.state.schedule.seed ^ op) % buf.len() as u64) as usize;
                    file.write_all(&buf[..keep])?;
                }
                Err(self.crash_error(op))
            }
        }
    }

    fn sync(&self, file: &File) -> io::Result<()> {
        match self.gate()? {
            None => file.sync_all(),
            Some(op) => Err(self.crash_error(op)),
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        match self.gate()? {
            None => std::fs::rename(from, to),
            Some(op) => Err(self.crash_error(op)),
        }
    }

    fn set_len(&self, file: &File, len: u64) -> io::Result<()> {
        match self.gate()? {
            None => file.set_len(len),
            Some(op) => Err(self.crash_error(op)),
        }
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        match self.gate()? {
            None => std::fs::remove_file(path),
            Some(op) => Err(self.crash_error(op)),
        }
    }

    fn remove_dir_all(&self, dir: &Path) -> io::Result<()> {
        match self.gate()? {
            None => std::fs::remove_dir_all(dir),
            Some(op) => Err(self.crash_error(op)),
        }
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        match self.gate()? {
            None => RealFs.sync_dir(dir),
            Some(op) => Err(self.crash_error(op)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    #[test]
    fn count_only_never_crashes_and_counts() {
        let fs = CrashFs::new(CrashSchedule::count_only());
        let dir = std::env::temp_dir();
        let path = dir.join(format!("lvq-fsio-count-{}", std::process::id()));
        let file = File::create(&path).unwrap();
        fs.write_all(&file, b"hello").unwrap();
        fs.sync(&file).unwrap();
        assert_eq!(fs.ops(), 2);
        assert!(!fs.crashed());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn abort_skips_the_op_and_kills_everything_after() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("lvq-fsio-abort-{}", std::process::id()));
        let fs = CrashFs::new(CrashSchedule::at(1, CrashMode::Abort, 7));
        let file = File::create(&path).unwrap();
        fs.write_all(&file, b"first").unwrap();
        let err = fs.write_all(&file, b"second").unwrap_err();
        assert!(is_simulated_crash(&err));
        assert!(fs.crashed());
        // Dead: even a sync is refused, without touching the file.
        assert!(is_simulated_crash(&fs.sync(&file).unwrap_err()));
        let mut contents = String::new();
        File::open(&path)
            .unwrap()
            .read_to_string(&mut contents)
            .unwrap();
        assert_eq!(contents, "first", "the aborted write left no bytes");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_write_persists_a_strict_prefix_deterministically() {
        let dir = std::env::temp_dir();
        let mut lens = Vec::new();
        for round in 0..2 {
            let path = dir.join(format!("lvq-fsio-torn-{}-{round}", std::process::id()));
            let fs = CrashFs::new(CrashSchedule::at(0, CrashMode::Torn, 42));
            let file = File::create(&path).unwrap();
            let err = fs.write_all(&file, &[0xAB; 100]).unwrap_err();
            assert!(is_simulated_crash(&err));
            let len = std::fs::metadata(&path).unwrap().len();
            assert!(len < 100, "a torn write is a strict prefix, got {len}");
            lens.push(len);
            let _ = std::fs::remove_file(&path);
        }
        assert_eq!(lens[0], lens[1], "same seed, same torn prefix");
    }
}
