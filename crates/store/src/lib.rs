//! Crash-safe on-disk block storage for the LVQ reproduction.
//!
//! A real LVQ full node holds far more block data than RAM; this crate
//! is the storage layer that lets the reproduction serve queries
//! without deserializing the whole chain first:
//!
//! * [`BlockStore`] — an append-only, segmented store
//!   (`segment-NNNN.blk` files) with per-record CRC-32 framing, a
//!   rebuildable `(height → segment, offset, len)` index, and torn-tail
//!   recovery on reopen (a partial final record is truncated away
//!   instead of refusing to load; see [`RecoveryReport`]);
//! * [`DiskBlockSource`] — the store behind
//!   [`lvq_chain::BlockSource`], materializing blocks lazily through a
//!   bounded LRU cache so hot blocks decode once;
//! * [`open_chain`] — opens a store and assembles a serve-from-disk
//!   [`lvq_chain::Chain`] via `Chain::assemble_trusted`, skipping the
//!   full commitment replay a chain-file load performs;
//! * [`ingest_chain`] — bulk-copies an existing chain into a store
//!   (the CLI's `lvq ingest`).
//!
//! # Examples
//!
//! ```
//! use lvq_chain::{Address, BlockSource, ChainBuilder, ChainParams, Transaction};
//! use lvq_store::{ingest_chain, open_chain, StoreConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut builder = ChainBuilder::new(ChainParams::default())?;
//! for height in 1..=4u32 {
//!     builder.push_block(vec![Transaction::coinbase(Address::new("1Miner"), 50, height)])?;
//! }
//! let chain = builder.finish();
//!
//! let dir = std::env::temp_dir().join(format!("lvq-store-doc-{}", std::process::id()));
//! ingest_chain(&chain, &dir, StoreConfig::default())?;
//! let (served, report) = open_chain(&dir, StoreConfig::default())?;
//! assert!(report.is_clean());
//! assert_eq!(served.tip_height(), 4);
//! assert_eq!(served.headers(), chain.headers());
//! # std::fs::remove_dir_all(&dir)?;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod crc32;
mod error;
mod frame;
mod fsio;
mod index;
mod source;
mod store;

pub use crc32::crc32;
pub use error::StoreError;
pub use fsio::{
    is_simulated_crash, CrashFs, CrashMode, CrashSchedule, RealFs, SimulatedCrash, StoreFs,
};
pub use index::IndexedTables;
pub use source::{
    ingest_chain, open_chain, open_chain_indexed, open_chain_indexed_verified,
    open_chain_indexed_with_fs, DiskBlockSource, IndexedChain,
};
pub use store::{AddrIndexRecovery, BlockStore, RecoveryReport, StoreConfig};
