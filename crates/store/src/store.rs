//! The append-only segmented block store.
//!
//! # On-disk layout
//!
//! A store is a directory:
//!
//! ```text
//! store.meta          magic "LVQM" | version u32 | ChainParams | crc32
//! segment-0000.blk    magic "LVQS" | version u32 | segment u32 | records…
//! segment-0001.blk    …
//! index.idx           magic "LVQI" | version u32 | count u64
//!                     | count × (segment u32, offset u64, len u32) | crc32
//! ```
//!
//! Each record frames one encoded [`Block`]:
//!
//! ```text
//! len u32 LE | crc32(payload) u32 LE | payload (len bytes)
//! ```
//!
//! All integers are little-endian; record `offset`s point at the `len`
//! field. Record *N* of the store (0-based, across segments in order)
//! is the block at height *N + 1*.
//!
//! # Crash safety
//!
//! Appends go to the tail of the last segment; the index file is a pure
//! cache, rewritten on [`BlockStore::sync`] and rebuilt from the
//! segments whenever it is missing, stale, or fails its checksum. On
//! reopen, any unindexed tail records are re-adopted after passing their
//! CRC, and a final record that is incomplete or fails its CRC exactly
//! at end-of-file is treated as a torn write and truncated away
//! ([`RecoveryReport`]). A bad CRC anywhere *before* the tail is real
//! corruption and refuses loudly with [`StoreError::CorruptRecord`].

use std::fs::{self, File, OpenOptions};
use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use lvq_chain::{Block, ChainParams};
use lvq_codec::{Decodable, Encodable, Reader};

use crate::crc32::crc32;
use crate::error::StoreError;
use crate::frame::{
    frame_record, read_exact_at, read_record_payload, scan_record, segment_header, FrameError,
    RecordLoc, ScannedRecord, SegmentHandle, RECORD_HEADER_LEN, SEGMENT_HEADER_LEN,
};
use crate::fsio::{RealFs, StoreFs};

const META_MAGIC: [u8; 4] = *b"LVQM";
const SEGMENT_MAGIC: [u8; 4] = *b"LVQS";
const INDEX_MAGIC: [u8; 4] = *b"LVQI";
const VERSION: u32 = 1;

const META_FILE: &str = "store.meta";
const META_TMP_FILE: &str = "store.meta.tmp";
const INDEX_FILE: &str = "index.idx";
const INDEX_TMP_FILE: &str = "index.idx.tmp";
const FORKS_FILE: &str = "forks.log";
const FORKS_TMP_FILE: &str = "forks.log.tmp";

/// Operational knobs of a [`BlockStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreConfig {
    /// Rotate to a new segment file once the current one reaches this
    /// many bytes (the last record may overshoot).
    pub segment_target_bytes: u64,
    /// Byte budget of the decoded-block LRU cache in front of the store.
    pub cache_bytes: usize,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            segment_target_bytes: 8 * 1024 * 1024,
            cache_bytes: 16 * 1024 * 1024,
        }
    }
}

/// What opening a persistent address index found, when one was opened
/// alongside the store (see `open_chain_indexed` in this crate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AddrIndexRecovery {
    /// No address index was opened (plain `open_chain`, or bare
    /// [`BlockStore::open`]).
    #[default]
    NotOpened,
    /// The index's root record anchored exactly at the store tip and
    /// its restored state verified — reopen was point reads only.
    Intact,
    /// The root record anchored *behind* the store tip
    /// ([`StoreError::StaleIndexRoot`]); the missing blocks were
    /// re-absorbed incrementally and the index re-anchored.
    CaughtUp {
        /// Tip height the root record anchored.
        from: u64,
        /// Store tip the index was caught up to.
        to: u64,
    },
    /// The index was missing, corrupt, or anchored ahead of the store,
    /// and was rebuilt from the (CRC-verified) blocks. Loud but safe:
    /// a rebuilt index can never serve a wrong answer.
    Rebuilt {
        /// Why the index could not be adopted.
        reason: &'static str,
    },
}

/// What [`BlockStore::open`] had to repair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryReport {
    /// Bytes of torn tail truncated — a partial final record, or a
    /// partial final segment *header* torn mid-rotation. Zero when the
    /// last segment ended exactly on a record boundary (a clean end),
    /// even if unindexed records had to be re-adopted.
    pub truncated_tail_bytes: u64,
    /// Records re-adopted from segment tails that the stored index did
    /// not cover (e.g. appended after the last `sync`).
    pub recovered_records: u64,
    /// The index file was missing, stale, or corrupt and was rebuilt by
    /// scanning the segments.
    pub rebuilt_index: bool,
    /// The final segment file was shorter than its 12-byte header (a
    /// crash between creating the file at rotation and writing its
    /// header) and was re-initialised in place. It cannot have held any
    /// records, so the index — which never covered the unborn segment —
    /// is not implicated.
    pub repaired_segment_header: bool,
    /// Bytes of torn tail truncated from `forks.log` — a crash
    /// mid-journal. Repaired *at open* (not lazily tolerated) because a
    /// later journal append landing after torn bytes would strand every
    /// subsequent entry behind an unreadable record.
    pub truncated_fork_log_bytes: u64,
    /// What opening the address index alongside the store found, when
    /// one was opened.
    pub addr_index: AddrIndexRecovery,
}

impl RecoveryReport {
    /// `true` if the store (and the address index, if one was opened)
    /// came back exactly as it was left.
    pub fn is_clean(&self) -> bool {
        self.truncated_tail_bytes == 0
            && self.recovered_records == 0
            && !self.rebuilt_index
            && !self.repaired_segment_header
            && self.truncated_fork_log_bytes == 0
            && matches!(
                self.addr_index,
                AddrIndexRecovery::NotOpened | AddrIndexRecovery::Intact
            )
    }
}

#[derive(Debug)]
struct Writer {
    file: File,
    segment: u32,
    offset: u64,
}

/// An append-only, CRC-framed, segmented store of encoded blocks.
///
/// Reads take `&self` and are safe from many threads at once
/// (positional reads on shared handles); appends serialize on an
/// internal writer lock.
#[derive(Debug)]
pub struct BlockStore {
    dir: PathBuf,
    params: ChainParams,
    config: StoreConfig,
    fs: Arc<dyn StoreFs>,
    index: RwLock<Vec<RecordLoc>>,
    segments: RwLock<Vec<SegmentHandle>>,
    writer: Mutex<Writer>,
}

fn segment_file_name(segment: u32) -> String {
    format!("segment-{segment:04}.blk")
}

impl BlockStore {
    /// Creates a fresh store in `dir` (creating the directory if
    /// needed) for blocks of a chain configured by `params`.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::AlreadyExists`] if `dir` already holds a
    /// store, or [`StoreError::Io`] on filesystem failure.
    pub fn create(
        dir: impl AsRef<Path>,
        params: ChainParams,
        config: StoreConfig,
    ) -> Result<Self, StoreError> {
        Self::create_with_fs(dir, params, config, Arc::new(RealFs))
    }

    /// [`BlockStore::create`] with an explicit [`StoreFs`] — the seam
    /// the crash-fault harness injects through.
    ///
    /// # Errors
    ///
    /// As [`BlockStore::create`].
    pub fn create_with_fs(
        dir: impl AsRef<Path>,
        params: ChainParams,
        config: StoreConfig,
        fs_impl: Arc<dyn StoreFs>,
    ) -> Result<Self, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        let meta_path = dir.join(META_FILE);
        if meta_path.exists() {
            return Err(StoreError::AlreadyExists { path: dir });
        }

        // Segment first, meta last (atomic rename + directory fsync):
        // the meta file's existence is what marks a directory as a
        // store, so a crash anywhere inside create leaves either no
        // store at all (re-creatable) or a complete empty one — never a
        // half-created store.
        let seg_path = dir.join(segment_file_name(0));
        let seg_file = OpenOptions::new()
            .create(true)
            .truncate(true)
            .read(true)
            .write(true)
            .open(&seg_path)?;
        fs_impl.write_all(&seg_file, &segment_header(SEGMENT_MAGIC, VERSION, 0))?;
        fs_impl.sync(&seg_file)?;

        let mut meta = Vec::new();
        meta.extend_from_slice(&META_MAGIC);
        meta.extend_from_slice(&VERSION.to_le_bytes());
        params.encode_into(&mut meta);
        let crc = crc32(&meta);
        meta.extend_from_slice(&crc.to_le_bytes());
        let meta_tmp = dir.join(META_TMP_FILE);
        let meta_file = File::create(&meta_tmp)?;
        fs_impl.write_all(&meta_file, &meta)?;
        fs_impl.sync(&meta_file)?;
        fs_impl.rename(&meta_tmp, &meta_path)?;
        fs_impl.sync_dir(&dir)?;

        let store = BlockStore {
            dir,
            params,
            config,
            fs: fs_impl,
            index: RwLock::new(Vec::new()),
            segments: RwLock::new(vec![SegmentHandle {
                file: Arc::new(File::open(&seg_path)?),
                path: seg_path,
            }]),
            writer: Mutex::new(Writer {
                file: seg_file,
                segment: 0,
                offset: SEGMENT_HEADER_LEN,
            }),
        };
        store.save_index()?;
        Ok(store)
    }

    /// Opens an existing store, recovering from a torn tail if needed.
    ///
    /// See the [module docs](self) for the recovery rules; the returned
    /// [`RecoveryReport`] says what, if anything, was repaired.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::NotAStore`] if `dir` has no `store.meta`,
    /// [`StoreError::CorruptRecord`] for corruption anywhere except a
    /// torn tail, and [`StoreError::Io`] on filesystem failure.
    pub fn open(
        dir: impl AsRef<Path>,
        config: StoreConfig,
    ) -> Result<(Self, RecoveryReport), StoreError> {
        Self::open_with_fs(dir, config, Arc::new(RealFs))
    }

    /// [`BlockStore::open`] with an explicit [`StoreFs`] — recovery
    /// repairs (tail truncation, header re-initialisation, the index
    /// rewrite) go through it, so even recovery itself has enumerable
    /// crash points.
    ///
    /// # Errors
    ///
    /// As [`BlockStore::open`].
    pub fn open_with_fs(
        dir: impl AsRef<Path>,
        config: StoreConfig,
        fs_impl: Arc<dyn StoreFs>,
    ) -> Result<(Self, RecoveryReport), StoreError> {
        let dir = dir.as_ref().to_path_buf();
        let meta_path = dir.join(META_FILE);
        if !meta_path.exists() {
            return Err(StoreError::NotAStore { path: dir });
        }
        let params = read_meta(&meta_path)?;

        // Stale temp files are debris from a crash between a temp write
        // and its rename; the renamed-to files are still whole, so the
        // debris is simply removed.
        for tmp in [META_TMP_FILE, INDEX_TMP_FILE, FORKS_TMP_FILE] {
            let path = dir.join(tmp);
            if path.exists() {
                fs_impl.remove_file(&path)?;
            }
        }

        let mut segment_count = 0u32;
        while dir.join(segment_file_name(segment_count)).exists() {
            segment_count += 1;
        }
        if segment_count == 0 {
            return Err(StoreError::MissingSegment { segment: 0 });
        }

        // A crash mid-journal leaves a torn tail on `forks.log`. It
        // must be truncated *now*, not tolerated lazily: the next
        // journal append lands at end-of-file, and entries written
        // after torn bytes would be stranded behind an unreadable
        // record forever.
        let mut report = RecoveryReport {
            truncated_fork_log_bytes: repair_fork_log(&dir, &*fs_impl)?,
            ..RecoveryReport::default()
        };

        // A crash between creating a segment file and writing its
        // 12-byte header leaves a short final segment: repair it in
        // place (it cannot have held any records).
        let last = segment_count - 1;
        let last_path = dir.join(segment_file_name(last));
        let last_len = fs::metadata(&last_path)?.len();
        if last_len < SEGMENT_HEADER_LEN {
            let f = OpenOptions::new().write(true).open(&last_path)?;
            fs_impl.set_len(&f, 0)?;
            fs_impl.write_all(&f, &segment_header(SEGMENT_MAGIC, VERSION, last))?;
            fs_impl.sync(&f)?;
            report.truncated_tail_bytes += last_len;
            report.repaired_segment_header = true;
        }

        let mut segments = Vec::with_capacity(segment_count as usize);
        for seg in 0..segment_count {
            let path = dir.join(segment_file_name(seg));
            let handle = SegmentHandle {
                file: Arc::new(File::open(&path)?),
                path,
            };
            let mut header = [0u8; SEGMENT_HEADER_LEN as usize];
            read_exact_at(&handle, &mut header, 0)?;
            if header[..4] != SEGMENT_MAGIC {
                return Err(StoreError::BadMagic { file: "segment" });
            }
            let version = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
            if version != VERSION {
                return Err(StoreError::UnsupportedVersion {
                    file: "segment",
                    found: version,
                });
            }
            let stored_seg = u32::from_le_bytes([header[8], header[9], header[10], header[11]]);
            if stored_seg != seg {
                return Err(StoreError::CorruptRecord {
                    segment: seg,
                    offset: 8,
                    detail: "segment header numbers itself differently",
                });
            }
            segments.push(handle);
        }

        // The index is a cache: adopt it when consistent, rebuild when
        // not.
        let mut index = match load_index(&dir.join(INDEX_FILE), &segments) {
            Some(index) => index,
            None => {
                report.rebuilt_index = true;
                Vec::new()
            }
        };

        // Scan every segment's unindexed tail. Only the final segment
        // may legitimately end mid-record (a torn append); anywhere
        // else a bad record is corruption.
        for seg in 0..segment_count {
            let handle = &segments[seg as usize];
            let file_len = fs::metadata(&handle.path)?.len();
            let mut offset = index
                .iter()
                .rev()
                .find(|loc| loc.segment == seg)
                .map(|loc| loc.end())
                .unwrap_or(SEGMENT_HEADER_LEN);
            while offset < file_len {
                match scan_record(handle, seg, offset, file_len)? {
                    ScannedRecord::Valid(loc) => {
                        offset = loc.end();
                        index.push(loc);
                        report.recovered_records += 1;
                    }
                    ScannedRecord::Corrupt { offset, detail } => {
                        return Err(StoreError::CorruptRecord {
                            segment: seg,
                            offset,
                            detail,
                        });
                    }
                    ScannedRecord::Torn => {
                        if seg != last {
                            return Err(StoreError::CorruptRecord {
                                segment: seg,
                                offset,
                                detail: "torn record before the final segment",
                            });
                        }
                        report.truncated_tail_bytes += file_len - offset;
                        let f = OpenOptions::new().write(true).open(&handle.path)?;
                        fs_impl.set_len(&f, offset)?;
                        fs_impl.sync(&f)?;
                        break;
                    }
                }
            }
        }

        let writer_path = dir.join(segment_file_name(last));
        let mut writer_file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(&writer_path)?;
        let offset = writer_file.seek(SeekFrom::End(0))?;
        let store = BlockStore {
            dir,
            params,
            config,
            fs: fs_impl,
            index: RwLock::new(index),
            segments: RwLock::new(segments),
            writer: Mutex::new(Writer {
                file: writer_file,
                segment: last,
                offset,
            }),
        };
        if !report.is_clean() {
            store.save_index()?;
        }
        Ok((store, report))
    }

    /// The chain parameters recorded at creation.
    pub fn params(&self) -> ChainParams {
        self.params
    }

    /// The store's configuration.
    pub fn config(&self) -> StoreConfig {
        self.config
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of blocks stored.
    pub fn len(&self) -> u64 {
        self.index.read().len() as u64
    }

    /// `true` if no blocks are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of segment files.
    pub fn segment_count(&self) -> u32 {
        self.segments.read().len() as u32
    }

    /// Total bytes across all segment files.
    pub fn data_bytes(&self) -> u64 {
        let index = self.index.read();
        let segments = self.segments.read().len() as u64;
        segments * SEGMENT_HEADER_LEN
            + index
                .iter()
                .map(|loc| RECORD_HEADER_LEN + loc.len as u64)
                .sum::<u64>()
    }

    /// Appends a block, returning its height (1-based).
    ///
    /// The record is written with a single `write` syscall; durability
    /// is deferred to [`BlockStore::sync`] (or segment rotation).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] on write failure.
    pub fn append(&self, block: &Block) -> Result<u64, StoreError> {
        let payload = block.encode();
        let record = frame_record(&payload);

        let mut writer = self.writer.lock();
        if writer.offset >= self.config.segment_target_bytes && writer.offset > SEGMENT_HEADER_LEN {
            self.rotate(&mut writer)?;
        }
        self.fs.write_all(&writer.file, &record)?;
        let loc = RecordLoc {
            segment: writer.segment,
            offset: writer.offset,
            len: payload.len() as u32,
        };
        writer.offset += record.len() as u64;
        let mut index = self.index.write();
        index.push(loc);
        Ok(index.len() as u64)
    }

    /// Finishes the current segment and starts the next; called with
    /// the writer lock held.
    fn rotate(&self, writer: &mut Writer) -> Result<(), StoreError> {
        self.fs.sync(&writer.file)?;
        let next = writer.segment + 1;
        let path = self.dir.join(segment_file_name(next));
        let file = OpenOptions::new()
            .create(true)
            .truncate(true)
            .read(true)
            .write(true)
            .open(&path)?;
        self.fs
            .write_all(&file, &segment_header(SEGMENT_MAGIC, VERSION, next))?;
        self.segments.write().push(SegmentHandle {
            file: Arc::new(File::open(&path)?),
            path,
        });
        writer.file = file;
        writer.segment = next;
        writer.offset = SEGMENT_HEADER_LEN;
        Ok(())
    }

    /// Truncates the store to `new_len` blocks — the reorg rewind
    /// primitive. Returns how many blocks were dropped.
    ///
    /// Segments above the kept tail are deleted highest-first and the
    /// kept segment is `set_len` to the exact record boundary, in that
    /// order, so the operation is torn-tail-safe: a crash at any point
    /// leaves a store that reopens to a valid *prefix* of the
    /// pre-truncate chain (the segment set stays contiguously numbered
    /// and every surviving record still tiles its segment). Callers
    /// that must not lose the dropped blocks copy them to the fork
    /// sidecar log ([`BlockStore::log_fork_block`]) first.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::UnknownHeight`] if `new_len` exceeds the
    /// current length, and [`StoreError::Io`] on filesystem failure.
    pub fn truncate(&self, new_len: u64) -> Result<u64, StoreError> {
        let mut writer = self.writer.lock();
        let mut index = self.index.write();
        let mut segments = self.segments.write();
        let old_len = index.len() as u64;
        if new_len > old_len {
            return Err(StoreError::UnknownHeight { height: new_len });
        }
        if new_len == old_len {
            return Ok(0);
        }
        index.truncate(new_len as usize);
        let (keep_segment, end_offset) = index
            .last()
            .map(|loc| (loc.segment, loc.end()))
            .unwrap_or((0, SEGMENT_HEADER_LEN));

        // Deleting highest-first keeps the on-disk segment numbering
        // contiguous at every intermediate point, so a crash mid-way
        // reopens to a valid prefix of the old chain.
        for handle in segments.drain((keep_segment as usize + 1)..).rev() {
            self.fs.remove_file(&handle.path)?;
        }
        let keep_path = self.dir.join(segment_file_name(keep_segment));
        let mut file = OpenOptions::new().read(true).write(true).open(&keep_path)?;
        self.fs.set_len(&file, end_offset)?;
        self.fs.sync(&file)?;
        file.seek(SeekFrom::End(0))?;
        writer.file = file;
        writer.segment = keep_segment;
        writer.offset = end_offset;

        drop(segments);
        drop(index);
        drop(writer);
        self.save_index()?;
        Ok(old_len - new_len)
    }

    /// Appends a displaced or competing block at `height` to the fork
    /// sidecar log (`forks.log`), fsynced before returning: a reorg
    /// copies blocks here *before* [`BlockStore::truncate`] discards
    /// them from the segments, so no observed block is ever lost. The
    /// log uses the same CRC framing as segment records.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] on filesystem failure.
    pub fn log_fork_block(&self, height: u64, block: &Block) -> Result<(), StoreError> {
        let mut payload = Vec::with_capacity(8 + block.encoded_len());
        payload.extend_from_slice(&height.to_le_bytes());
        block.encode_into(&mut payload);
        let record = frame_record(&payload);
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.dir.join(FORKS_FILE))?;
        self.fs.write_all(&file, &record)?;
        self.fs.sync(&file)?;
        Ok(())
    }

    /// Compacts the fork sidecar log, dropping journaled entries whose
    /// height has fallen out of the reorg window — a branch can only
    /// still be re-adopted if it forked within `max_reorg_depth` of the
    /// current tip, so entries at height `<= tip - max_reorg_depth` are
    /// unreachable and only cost reopen scans. Entries at greater
    /// heights (and, defensively, *above* the tip) are kept verbatim in
    /// log order. The rewrite is atomic: temp file, fsync, rename,
    /// directory fsync; an empty survivor set removes the log outright.
    ///
    /// Returns how many entries were dropped.
    ///
    /// # Errors
    ///
    /// As [`BlockStore::fork_log`], plus [`StoreError::Io`] on rewrite
    /// failure.
    pub fn compact_fork_log(&self, max_reorg_depth: u64) -> Result<u64, StoreError> {
        let entries = self.fork_log()?;
        if entries.is_empty() {
            return Ok(0);
        }
        let horizon = self.len().saturating_sub(max_reorg_depth);
        let kept: Vec<&(u64, Block)> = entries.iter().filter(|(h, _)| *h > horizon).collect();
        let dropped = (entries.len() - kept.len()) as u64;
        if dropped == 0 {
            return Ok(0);
        }
        let log_path = self.dir.join(FORKS_FILE);
        if kept.is_empty() {
            self.fs.remove_file(&log_path)?;
            self.fs.sync_dir(&self.dir)?;
            return Ok(dropped);
        }
        let mut bytes = Vec::new();
        for (height, block) in kept {
            let mut payload = Vec::with_capacity(8 + block.encoded_len());
            payload.extend_from_slice(&height.to_le_bytes());
            block.encode_into(&mut payload);
            bytes.extend_from_slice(&frame_record(&payload));
        }
        let tmp = self.dir.join(FORKS_TMP_FILE);
        let file = File::create(&tmp)?;
        self.fs.write_all(&file, &bytes)?;
        self.fs.sync(&file)?;
        self.fs.rename(&tmp, &log_path)?;
        self.fs.sync_dir(&self.dir)?;
        Ok(dropped)
    }

    /// Replays the fork sidecar log: every `(height, block)` ever
    /// logged, in log order (empty if no fork block was ever seen). A
    /// torn final record — a crash mid-append — is tolerated and ends
    /// the replay; corruption before the tail refuses loudly.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::CorruptRecord`] for a bad record before
    /// the tail, [`StoreError::Decode`] for an undecodable payload, and
    /// [`StoreError::Io`] on filesystem failure.
    pub fn fork_log(&self) -> Result<Vec<(u64, Block)>, StoreError> {
        let path = self.dir.join(FORKS_FILE);
        if !path.exists() {
            return Ok(Vec::new());
        }
        let handle = SegmentHandle {
            file: Arc::new(File::open(&path)?),
            path,
        };
        let file_len = fs::metadata(&handle.path)?.len();
        let mut out = Vec::new();
        let mut offset = 0u64;
        while offset < file_len {
            match scan_record(&handle, 0, offset, file_len)? {
                ScannedRecord::Valid(loc) => {
                    offset = loc.end();
                    let payload = self.read_fork_record(&handle, loc)?;
                    if payload.len() < 8 {
                        return Err(StoreError::CorruptRecord {
                            segment: 0,
                            offset: loc.offset,
                            detail: "fork record shorter than its height prefix",
                        });
                    }
                    let height = u64::from_le_bytes(payload[..8].try_into().expect("8 bytes"));
                    let block = lvq_codec::decode_exact::<Block>(&payload[8..])?;
                    out.push((height, block));
                }
                ScannedRecord::Corrupt { offset, detail } => {
                    return Err(StoreError::CorruptRecord {
                        segment: 0,
                        offset,
                        detail,
                    });
                }
                ScannedRecord::Torn => break,
            }
        }
        Ok(out)
    }

    fn read_fork_record(
        &self,
        handle: &SegmentHandle,
        loc: RecordLoc,
    ) -> Result<Vec<u8>, StoreError> {
        read_record_payload(handle, loc).map_err(|e| match e {
            FrameError::Io(e) => StoreError::Io(e),
            FrameError::Corrupt { detail } => StoreError::CorruptRecord {
                segment: 0,
                offset: loc.offset,
                detail,
            },
        })
    }

    /// Reads and decodes the block at `height` (1-based), verifying the
    /// record's CRC.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::UnknownHeight`] outside `1..=len`,
    /// [`StoreError::CorruptRecord`] if the record fails its CRC, and
    /// [`StoreError::Decode`] if the payload does not decode.
    pub fn read_block(&self, height: u64) -> Result<Block, StoreError> {
        let loc = {
            let index = self.index.read();
            if height == 0 || height > index.len() as u64 {
                return Err(StoreError::UnknownHeight { height });
            }
            index[(height - 1) as usize]
        };
        let payload = self.read_record(loc)?;
        Ok(lvq_codec::decode_exact::<Block>(&payload)?)
    }

    fn read_record(&self, loc: RecordLoc) -> Result<Vec<u8>, StoreError> {
        let handle = self.segments.read()[loc.segment as usize].clone();
        read_record_payload(&handle, loc).map_err(|e| match e {
            FrameError::Io(e) => StoreError::Io(e),
            FrameError::Corrupt { detail } => StoreError::CorruptRecord {
                segment: loc.segment,
                offset: loc.offset,
                detail,
            },
        })
    }

    /// Visits every stored block in height order, re-verifying each
    /// record's CRC on the way.
    ///
    /// # Errors
    ///
    /// Propagates the first error from storage or from `visit`.
    pub fn scan_blocks(
        &self,
        visit: &mut dyn FnMut(u64, &Block) -> Result<(), StoreError>,
    ) -> Result<(), StoreError> {
        let locs: Vec<RecordLoc> = self.index.read().clone();
        for (i, loc) in locs.iter().enumerate() {
            let payload = self.read_record(*loc)?;
            let block = lvq_codec::decode_exact::<Block>(&payload)?;
            visit(i as u64 + 1, &block)?;
        }
        Ok(())
    }

    /// Re-reads and CRC-checks every record, returning how many blocks
    /// passed.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::CorruptRecord`] at the first bad record.
    pub fn verify_all(&self) -> Result<u64, StoreError> {
        let mut count = 0u64;
        self.scan_blocks(&mut |_, _| {
            count += 1;
            Ok(())
        })?;
        Ok(count)
    }

    /// Flushes the current segment to disk and rewrites the index file.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] on failure.
    pub fn sync(&self) -> Result<(), StoreError> {
        let writer = self.writer.lock();
        self.fs.sync(&writer.file)?;
        drop(writer);
        self.save_index()
    }

    /// Atomically rewrites `index.idx` (write to a temporary, rename,
    /// fsync the directory).
    fn save_index(&self) -> Result<(), StoreError> {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&INDEX_MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        {
            let index = self.index.read();
            bytes.extend_from_slice(&(index.len() as u64).to_le_bytes());
            for loc in index.iter() {
                bytes.extend_from_slice(&loc.segment.to_le_bytes());
                bytes.extend_from_slice(&loc.offset.to_le_bytes());
                bytes.extend_from_slice(&loc.len.to_le_bytes());
            }
        }
        let crc = crc32(&bytes);
        bytes.extend_from_slice(&crc.to_le_bytes());

        let tmp = self.dir.join(INDEX_TMP_FILE);
        let file = File::create(&tmp)?;
        self.fs.write_all(&file, &bytes)?;
        self.fs.sync(&file)?;
        self.fs.rename(&tmp, &self.dir.join(INDEX_FILE))?;
        // A rename alone is not power-loss durable until the directory
        // entry itself is on disk.
        self.fs.sync_dir(&self.dir)?;
        Ok(())
    }
}

impl Drop for BlockStore {
    fn drop(&mut self) {
        // Best effort: leave a fresh index behind so the next open
        // needs no tail scan.
        let _ = self.sync();
    }
}

/// Scans `forks.log` for a torn final record and truncates it away,
/// returning the bytes removed (zero for a clean or absent log).
/// Corruption *before* the tail refuses loudly, like segment scans.
fn repair_fork_log(dir: &Path, fs_impl: &dyn StoreFs) -> Result<u64, StoreError> {
    let path = dir.join(FORKS_FILE);
    if !path.exists() {
        return Ok(0);
    }
    let file_len = fs::metadata(&path)?.len();
    let handle = SegmentHandle {
        file: Arc::new(File::open(&path)?),
        path: path.clone(),
    };
    let mut offset = 0u64;
    while offset < file_len {
        match scan_record(&handle, 0, offset, file_len)? {
            ScannedRecord::Valid(loc) => offset = loc.end(),
            ScannedRecord::Corrupt { offset, detail } => {
                return Err(StoreError::CorruptRecord {
                    segment: 0,
                    offset,
                    detail,
                });
            }
            ScannedRecord::Torn => {
                let f = OpenOptions::new().write(true).open(&path)?;
                fs_impl.set_len(&f, offset)?;
                fs_impl.sync(&f)?;
                return Ok(file_len - offset);
            }
        }
    }
    Ok(0)
}

fn read_meta(path: &Path) -> Result<ChainParams, StoreError> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    if bytes.len() < 12 {
        return Err(StoreError::CorruptMeta);
    }
    if bytes[..4] != META_MAGIC {
        return Err(StoreError::BadMagic { file: META_FILE });
    }
    let version = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
    if version != VERSION {
        return Err(StoreError::UnsupportedVersion {
            file: META_FILE,
            found: version,
        });
    }
    let body_len = bytes.len() - 4;
    let stored_crc = u32::from_le_bytes([
        bytes[body_len],
        bytes[body_len + 1],
        bytes[body_len + 2],
        bytes[body_len + 3],
    ]);
    if crc32(&bytes[..body_len]) != stored_crc {
        return Err(StoreError::CorruptMeta);
    }
    let mut reader = Reader::new(&bytes[8..body_len]);
    let params = ChainParams::decode_from(&mut reader).map_err(|_| StoreError::CorruptMeta)?;
    reader.finish().map_err(|_| StoreError::CorruptMeta)?;
    Ok(params)
}

/// Parses `index.idx`, returning `None` (rebuild) for any
/// inconsistency: bad magic/version/CRC, out-of-range segments, or
/// records that do not tile their segment contiguously.
fn load_index(path: &Path, segments: &[SegmentHandle]) -> Option<Vec<RecordLoc>> {
    let mut bytes = Vec::new();
    File::open(path).ok()?.read_to_end(&mut bytes).ok()?;
    if bytes.len() < 20 || bytes[..4] != INDEX_MAGIC {
        return None;
    }
    if u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]) != VERSION {
        return None;
    }
    let body_len = bytes.len() - 4;
    let stored_crc = u32::from_le_bytes([
        bytes[body_len],
        bytes[body_len + 1],
        bytes[body_len + 2],
        bytes[body_len + 3],
    ]);
    if crc32(&bytes[..body_len]) != stored_crc {
        return None;
    }
    let count = u64::from_le_bytes(bytes[8..16].try_into().ok()?) as usize;
    if body_len != 16 + count * 16 {
        return None;
    }

    let mut index = Vec::with_capacity(count);
    let mut expected: Vec<u64> = vec![SEGMENT_HEADER_LEN; segments.len()];
    let mut current_segment = 0u32;
    for i in 0..count {
        let at = 16 + i * 16;
        let segment = u32::from_le_bytes(bytes[at..at + 4].try_into().ok()?);
        let offset = u64::from_le_bytes(bytes[at + 4..at + 12].try_into().ok()?);
        let len = u32::from_le_bytes(bytes[at + 12..at + 16].try_into().ok()?);
        if (segment as usize) >= segments.len() || segment < current_segment {
            return None;
        }
        current_segment = segment;
        let loc = RecordLoc {
            segment,
            offset,
            len,
        };
        // Records must tile each segment contiguously from its header.
        if offset != expected[segment as usize] {
            return None;
        }
        expected[segment as usize] = loc.end();
        index.push(loc);
    }
    // Every indexed byte must exist on disk, and — since any honest
    // index is a prefix of the append order — every segment before the
    // last indexed one must be fully tiled.
    let max_indexed_segment = index.last().map(|loc| loc.segment).unwrap_or(0);
    for (seg, handle) in segments.iter().enumerate() {
        let file_len = fs::metadata(&handle.path).ok()?.len();
        if expected[seg] > file_len {
            return None;
        }
        if (seg as u32) < max_indexed_segment && expected[seg] != file_len {
            return None;
        }
    }
    Some(index)
}
