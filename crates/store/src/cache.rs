//! A bounded LRU cache with byte accounting and hit/miss counters.
//!
//! Unlike the chain's FIFO memo caches, the block cache is LRU: serving
//! workloads skew heavily toward a hot set of recently matched blocks
//! (the paper's busy addresses), and an LRU keeps exactly those decoded.
//! Recency is tracked with a monotone tick per entry and a
//! `BTreeMap<tick, key>` index, so touch and evict are both O(log n).

use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;

use lvq_chain::CacheStats;

#[derive(Debug)]
struct Entry<V> {
    value: V,
    size: usize,
    tick: u64,
}

/// Least-recently-used cache bounded by a byte budget.
#[derive(Debug)]
pub(crate) struct LruCache<K, V> {
    budget_bytes: usize,
    used_bytes: usize,
    tick: u64,
    entries: HashMap<K, Entry<V>>,
    /// Recency index: oldest tick first.
    recency: BTreeMap<u64, K>,
    hits: u64,
    misses: u64,
}

impl<K: Eq + Hash + Copy, V: Clone> LruCache<K, V> {
    pub(crate) fn new(budget_bytes: usize) -> Self {
        LruCache {
            budget_bytes,
            used_bytes: 0,
            tick: 0,
            entries: HashMap::new(),
            recency: BTreeMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Looks `key` up, refreshing its recency on a hit.
    pub(crate) fn get(&mut self, key: &K) -> Option<V> {
        match self.entries.get_mut(key) {
            Some(entry) => {
                self.hits += 1;
                self.recency.remove(&entry.tick);
                self.tick += 1;
                entry.tick = self.tick;
                self.recency.insert(self.tick, *key);
                Some(entry.value.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts `key`, evicting least-recently-used entries past the
    /// budget. Values larger than the whole budget are not cached.
    pub(crate) fn put(&mut self, key: K, value: V, size: usize) {
        if size > self.budget_bytes {
            return;
        }
        self.tick += 1;
        if let Some(old) = self.entries.insert(
            key,
            Entry {
                value,
                size,
                tick: self.tick,
            },
        ) {
            self.used_bytes -= old.size;
            self.recency.remove(&old.tick);
        }
        self.used_bytes += size;
        self.recency.insert(self.tick, key);
        self.evict_to_budget();
    }

    fn evict_to_budget(&mut self) {
        while self.used_bytes > self.budget_bytes {
            let Some((&oldest, _)) = self.recency.iter().next() else {
                break;
            };
            let key = self.recency.remove(&oldest).expect("just observed");
            if let Some(evicted) = self.entries.remove(&key) {
                self.used_bytes -= evicted.size;
            }
        }
    }

    /// Drops every entry; hit/miss counters keep counting.
    pub(crate) fn clear(&mut self) {
        self.entries.clear();
        self.recency.clear();
        self.used_bytes = 0;
    }

    /// Re-budgets the cache, evicting LRU entries past the new budget.
    pub(crate) fn set_budget(&mut self, budget_bytes: usize) {
        self.budget_bytes = budget_bytes;
        self.evict_to_budget();
    }

    pub(crate) fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            entries: self.entries.len() as u64,
            used_bytes: self.used_bytes as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used() {
        let mut cache: LruCache<u64, u64> = LruCache::new(30);
        cache.put(1, 10, 10);
        cache.put(2, 20, 10);
        cache.put(3, 30, 10);
        // Touch 1 so 2 becomes the LRU entry.
        assert_eq!(cache.get(&1), Some(10));
        cache.put(4, 40, 10);
        assert_eq!(cache.get(&2), None, "LRU entry evicted");
        assert_eq!(cache.get(&1), Some(10));
        assert_eq!(cache.get(&3), Some(30));
        assert_eq!(cache.get(&4), Some(40));
        let stats = cache.stats();
        assert_eq!(stats.entries, 3);
        assert_eq!(stats.used_bytes, 30);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn oversized_values_are_not_cached() {
        let mut cache: LruCache<u64, u64> = LruCache::new(8);
        cache.put(1, 1, 9);
        assert_eq!(cache.get(&1), None);
        assert_eq!(cache.stats().used_bytes, 0);
    }

    #[test]
    fn reinsert_updates_size_accounting() {
        let mut cache: LruCache<u64, u64> = LruCache::new(20);
        cache.put(1, 1, 10);
        cache.put(1, 2, 5);
        assert_eq!(cache.stats().used_bytes, 5);
        assert_eq!(cache.get(&1), Some(2));
    }

    /// Byte accounting stays *exact* — `used_bytes` equals the sum of
    /// resident entry sizes and never exceeds the budget — across a
    /// random storm of puts (with key collisions and varying sizes),
    /// gets, re-budgets, and clears.
    #[test]
    fn accounting_stays_exact_under_stress() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        use std::collections::HashMap;

        let mut rng = StdRng::seed_from_u64(0xacc0);
        let mut cache: LruCache<u64, u64> = LruCache::new(500);
        // Shadow model: what *should* be resident, sans recency.
        let mut model: HashMap<u64, usize> = HashMap::new();
        let mut budget = 500usize;

        for step in 0..20_000u64 {
            match rng.gen_range(0..100) {
                0..=59 => {
                    let key = rng.gen_range(0..40);
                    let size = rng.gen_range(0..80);
                    cache.put(key, step, size);
                    if size <= budget {
                        model.insert(key, size);
                    }
                }
                60..=89 => {
                    let key = rng.gen_range(0..40);
                    if cache.get(&key).is_some() {
                        assert!(model.contains_key(&key), "hit on a key never inserted");
                    } else {
                        model.remove(&key);
                    }
                }
                90..=97 => {
                    budget = rng.gen_range(0..800);
                    cache.set_budget(budget);
                }
                _ => {
                    cache.clear();
                    model.clear();
                }
            }
            // Evictions shrink the real cache below the model; prune the
            // model down to what actually survived.
            let stats = cache.stats();
            assert!(
                stats.used_bytes <= budget as u64,
                "step {step}: {} bytes resident over budget {budget}",
                stats.used_bytes
            );
            assert!(stats.entries as usize <= model.len());
            // Exactness: re-derive the byte total from the surviving
            // entries and compare. (get() counts misses; probe via the
            // entries map directly to keep counters meaningful above.)
            let derived: usize = cache.entries.values().map(|e| e.size).sum();
            assert_eq!(
                stats.used_bytes, derived as u64,
                "step {step}: used_bytes drifted from the per-entry sum"
            );
            assert_eq!(stats.entries as usize, cache.recency.len());
        }
    }
}
