//! The persistent authenticated address index: [`IndexedTables`].
//!
//! This is the store-side backend of [`lvq_chain::TableSource`] — the
//! chain's per-block derived state (headers, address tables, BMT span
//! hashes, per-address presence) kept in a Merk-style Merkle AVL tree
//! ([`lvq_merkle::avl`]) whose nodes live in an append-only, CRC-framed
//! node log. Reopening a store becomes a root-record read plus a few
//! point reads instead of a chain replay, and proofs are generated from
//! the handful of nodes they touch instead of a tree rebuild.
//!
//! # On-disk layout
//!
//! The index is a subdirectory (`addr-index/`) of the block store:
//!
//! ```text
//! nodes-0000.seg    magic "LVQN" | version u32 | segment u32 | records…
//! nodes-0001.seg    …
//! root.idx          magic "LVQR" | version u32 | tip u64
//!                   | Option<AvlLink> | Option<loc> | crc32
//! ```
//!
//! Node records reuse the block store's framing
//! ([`crate::frame`]): `len u32 | crc32 u32 | payload`. Each payload is
//! one [`AvlNode`] plus the log locations of its children, so a
//! descent needs no in-memory directory — resident memory is the
//! bounded node cache plus the not-yet-anchored write set, independent
//! of chain length.
//!
//! # Keyspace
//!
//! One tree holds four keyspaces, disambiguated by a first byte:
//!
//! ```text
//! 'a' ‖ varint(len) ‖ address ‖ height_be8  →  distinct-tx count
//! 'h' ‖ height_be8                          →  encoded BlockHeader
//! 's' ‖ lo_be8 ‖ hi_be8                     →  BMT span hash
//! 't' ‖ height_be8                          →  encoded address table
//! ```
//!
//! The stored table for a height is byte-identical to
//! `Block::address_counts()`, which is what pins proofs built from the
//! index to the rebuild path.
//!
//! # Durability and the root-anchoring rule
//!
//! Inserts accumulate in memory (the *dirty* set); [`TableSource::sync`]
//! writes dirty nodes to the log children-first, fsyncs the log, and
//! only then rewrites the checksummed root record (atomic
//! temp-file-and-rename). The root therefore only ever references
//! durable nodes. The record carries the anchored *tip height*: a root
//! that disagrees with the store tip is [`StoreError::StaleIndexRoot`]
//! — behind means catch up from the (CRC-verified) blocks, ahead means
//! the index references blocks the store lost and must be rebuilt.
//!
//! Every node fetched during a read is re-hashed and verified against
//! the link that committed it ([`lvq_merkle::avl::fetch`]), so a
//! corrupted node, a torn log, or a swapped record surfaces as a loud
//! error — never as a wrong answer.

use std::cell::RefCell;
use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use lvq_chain::{Address, BlockHeader, CacheStats, ChainError, TableSource, TableUpdate};
use lvq_codec::{Decodable, DecodeError, Encodable, Reader};
use lvq_crypto::Hash256;
use lvq_merkle::avl::{AvlError, AvlLink, AvlNode, AvlNodeStore, AvlProof, AvlTree};

use crate::cache::LruCache;
use crate::crc32::crc32;
use crate::error::StoreError;
use crate::frame::{
    frame_record, read_exact_at, read_record_payload, segment_header, FrameError, RecordLoc,
    SegmentHandle, SEGMENT_HEADER_LEN,
};
use crate::fsio::{RealFs, StoreFs};

const NODE_MAGIC: [u8; 4] = *b"LVQN";
const ROOT_MAGIC: [u8; 4] = *b"LVQR";
const VERSION: u32 = 1;
const ROOT_FILE: &str = "root.idx";
const ROOT_TMP_FILE: &str = "root.idx.tmp";

const KEY_ADDR: u8 = b'a';
const KEY_HEADER: u8 = b'h';
const KEY_SPAN: u8 = b's';
const KEY_TABLE: u8 = b't';

fn height_suffixed_key(tag: u8, height: u64) -> Vec<u8> {
    let mut key = Vec::with_capacity(9);
    key.push(tag);
    key.extend_from_slice(&height.to_be_bytes());
    key
}

fn header_key(height: u64) -> Vec<u8> {
    height_suffixed_key(KEY_HEADER, height)
}

fn table_key(height: u64) -> Vec<u8> {
    height_suffixed_key(KEY_TABLE, height)
}

fn span_key(lo: u64, hi: u64) -> Vec<u8> {
    let mut key = Vec::with_capacity(17);
    key.push(KEY_SPAN);
    key.extend_from_slice(&lo.to_be_bytes());
    key.extend_from_slice(&hi.to_be_bytes());
    key
}

/// `'a' ‖ varint(len) ‖ address` — the length prefix keeps one address
/// from being a byte-prefix of another, so prefix scans cannot
/// over-match.
fn addr_prefix(address: &Address) -> Vec<u8> {
    let bytes = address.as_bytes();
    let mut key = Vec::with_capacity(2 + bytes.len() + 8);
    key.push(KEY_ADDR);
    lvq_codec::write_compact_size(&mut key, bytes.len() as u64);
    key.extend_from_slice(bytes);
    key
}

fn addr_key(address: &Address, height: u64) -> Vec<u8> {
    let mut key = addr_prefix(address);
    key.extend_from_slice(&height.to_be_bytes());
    key
}

fn avl_chain_error(e: AvlError) -> ChainError {
    ChainError::Source {
        detail: format!("address index: {e}"),
    }
}

fn avl_store_error(e: AvlError) -> StoreError {
    StoreError::Chain(avl_chain_error(e))
}

fn decode_error(detail: &'static str) -> impl FnOnce(DecodeError) -> AvlError {
    move |_| AvlError::CorruptNode { detail }
}

/// [`RecordLoc`] behind the codec traits, for node records and the
/// root record.
#[derive(Debug, Clone, Copy)]
struct LocCodec(RecordLoc);

impl Encodable for LocCodec {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.0.segment.encode_into(out);
        self.0.offset.encode_into(out);
        self.0.len.encode_into(out);
    }

    fn encoded_len(&self) -> usize {
        16
    }
}

impl Decodable for LocCodec {
    fn decode_from(reader: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(LocCodec(RecordLoc {
            segment: u32::decode_from(reader)?,
            offset: u64::decode_from(reader)?,
            len: u32::decode_from(reader)?,
        }))
    }
}

/// One node as it sits in the log: the tree node plus the locations of
/// its children, which is what makes descents pure point reads.
#[derive(Debug, Clone)]
struct StoredNode {
    node: Arc<AvlNode>,
    left_loc: Option<RecordLoc>,
    right_loc: Option<RecordLoc>,
}

fn encode_stored(
    node: &AvlNode,
    left_loc: Option<RecordLoc>,
    right_loc: Option<RecordLoc>,
) -> Vec<u8> {
    let mut out = Vec::with_capacity(node.encoded_len() + 34);
    node.encode_into(&mut out);
    left_loc.map(LocCodec).encode_into(&mut out);
    right_loc.map(LocCodec).encode_into(&mut out);
    out
}

fn decode_stored(payload: &[u8]) -> Result<StoredNode, AvlError> {
    let mut reader = Reader::new(payload);
    let node =
        AvlNode::decode_from(&mut reader).map_err(decode_error("node record does not decode"))?;
    let left_loc = Option::<LocCodec>::decode_from(&mut reader)
        .map_err(decode_error("node record does not decode"))?
        .map(|l| l.0);
    let right_loc = Option::<LocCodec>::decode_from(&mut reader)
        .map_err(decode_error("node record does not decode"))?
        .map(|l| l.0);
    reader
        .finish()
        .map_err(decode_error("node record has trailing bytes"))?;
    if node.left.is_some() != left_loc.is_some() || node.right.is_some() != right_loc.is_some() {
        return Err(AvlError::CorruptNode {
            detail: "child links and child locations disagree",
        });
    }
    Ok(StoredNode {
        node: Arc::new(node),
        left_loc,
        right_loc,
    })
}

fn node_file_name(segment: u32) -> String {
    format!("nodes-{segment:04}.seg")
}

#[derive(Debug)]
struct LogWriter {
    file: File,
    segment: u32,
    offset: u64,
}

/// The append-only node log: `nodes-NNNN.seg` segments sharing the
/// block store's record framing. Records are only ever reached through
/// locations written *after* them, so the log needs no reopen scan —
/// torn tail bytes are simply unreferenced.
#[derive(Debug)]
struct NodeLog {
    dir: PathBuf,
    target_bytes: u64,
    fs: Arc<dyn StoreFs>,
    segments: RwLock<Vec<SegmentHandle>>,
    writer: Mutex<LogWriter>,
}

impl NodeLog {
    fn create(
        dir: &Path,
        target_bytes: u64,
        fs_impl: Arc<dyn StoreFs>,
    ) -> Result<Self, StoreError> {
        let path = dir.join(node_file_name(0));
        let file = OpenOptions::new()
            .create(true)
            .truncate(true)
            .read(true)
            .write(true)
            .open(&path)?;
        fs_impl.write_all(&file, &segment_header(NODE_MAGIC, VERSION, 0))?;
        fs_impl.sync(&file)?;
        Ok(NodeLog {
            dir: dir.to_path_buf(),
            target_bytes,
            fs: fs_impl,
            segments: RwLock::new(vec![SegmentHandle {
                file: Arc::new(File::open(&path)?),
                path,
            }]),
            writer: Mutex::new(LogWriter {
                file,
                segment: 0,
                offset: SEGMENT_HEADER_LEN,
            }),
        })
    }

    fn open(dir: &Path, target_bytes: u64, fs_impl: Arc<dyn StoreFs>) -> Result<Self, StoreError> {
        let mut count = 0u32;
        while dir.join(node_file_name(count)).exists() {
            count += 1;
        }
        if count == 0 {
            return Err(StoreError::MissingSegment { segment: 0 });
        }
        let mut segments = Vec::with_capacity(count as usize);
        for seg in 0..count {
            let path = dir.join(node_file_name(seg));
            let handle = SegmentHandle {
                file: Arc::new(File::open(&path)?),
                path,
            };
            let mut header = [0u8; SEGMENT_HEADER_LEN as usize];
            read_exact_at(&handle, &mut header, 0)?;
            if header[..4] != NODE_MAGIC {
                return Err(StoreError::BadMagic {
                    file: "node segment",
                });
            }
            let version = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
            if version != VERSION {
                return Err(StoreError::UnsupportedVersion {
                    file: "node segment",
                    found: version,
                });
            }
            let stored_seg = u32::from_le_bytes([header[8], header[9], header[10], header[11]]);
            if stored_seg != seg {
                return Err(StoreError::CorruptRecord {
                    segment: seg,
                    offset: 8,
                    detail: "node segment header numbers itself differently",
                });
            }
            segments.push(handle);
        }
        let last = count - 1;
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(dir.join(node_file_name(last)))?;
        let offset = file.seek(SeekFrom::End(0))?;
        Ok(NodeLog {
            dir: dir.to_path_buf(),
            target_bytes,
            fs: fs_impl,
            segments: RwLock::new(segments),
            writer: Mutex::new(LogWriter {
                file,
                segment: last,
                offset,
            }),
        })
    }

    fn append(&self, payload: &[u8]) -> Result<RecordLoc, StoreError> {
        let record = frame_record(payload);
        let mut writer = self.writer.lock();
        if writer.offset >= self.target_bytes && writer.offset > SEGMENT_HEADER_LEN {
            self.rotate(&mut writer)?;
        }
        self.fs.write_all(&writer.file, &record)?;
        let loc = RecordLoc {
            segment: writer.segment,
            offset: writer.offset,
            len: payload.len() as u32,
        };
        writer.offset += record.len() as u64;
        Ok(loc)
    }

    fn rotate(&self, writer: &mut LogWriter) -> Result<(), StoreError> {
        self.fs.sync(&writer.file)?;
        let next = writer.segment + 1;
        let path = self.dir.join(node_file_name(next));
        let file = OpenOptions::new()
            .create(true)
            .truncate(true)
            .read(true)
            .write(true)
            .open(&path)?;
        self.fs
            .write_all(&file, &segment_header(NODE_MAGIC, VERSION, next))?;
        self.segments.write().push(SegmentHandle {
            file: Arc::new(File::open(&path)?),
            path,
        });
        writer.file = file;
        writer.segment = next;
        writer.offset = SEGMENT_HEADER_LEN;
        Ok(())
    }

    fn read(&self, loc: RecordLoc) -> Result<Vec<u8>, AvlError> {
        let handle = {
            let segments = self.segments.read();
            let Some(handle) = segments.get(loc.segment as usize) else {
                return Err(AvlError::CorruptNode {
                    detail: "node location names a segment the log does not have",
                });
            };
            handle.clone()
        };
        read_record_payload(&handle, loc).map_err(|e| match e {
            FrameError::Io(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
                AvlError::CorruptNode {
                    detail: "node location reaches beyond the end of the log",
                }
            }
            FrameError::Io(e) => AvlError::Backend {
                detail: e.to_string(),
            },
            FrameError::Corrupt { detail } => AvlError::CorruptNode { detail },
        })
    }

    fn sync(&self) -> Result<(), StoreError> {
        self.fs.sync(&self.writer.lock().file)?;
        Ok(())
    }

    fn data_bytes(&self) -> u64 {
        self.segments
            .read()
            .iter()
            .filter_map(|handle| fs::metadata(&handle.path).ok())
            .map(|meta| meta.len())
            .sum()
    }
}

type NodeCache = Mutex<LruCache<RecordLoc, StoredNode>>;

/// Per-operation key → log-location memo. The tree layer descends by
/// key; without a directory, each fetch would walk the anchored tree
/// from the root — O(log²n) loads per point read. The memo records the
/// location of every node (and its children) seen during one
/// operation, so consecutive parent→child fetches resolve in O(1) and
/// a point read costs O(log n) loads total. It lives only as long as
/// one reader (one `table`/`presence`/scan/`push` call under the inner
/// lock, during which the anchor cannot move), so it is bounded and
/// never stale.
type LocMemo = RefCell<HashMap<Vec<u8>, RecordLoc>>;

/// Locations the memo holds at most — roughly one root-to-leaf path
/// plus scan frontier; cleared wholesale when exceeded.
const MEMO_CAP: usize = 4096;

/// Records a loaded node's own location and its children's.
fn remember_stored(memo: &LocMemo, stored: &StoredNode, loc: RecordLoc) {
    let mut memo = memo.borrow_mut();
    if memo.len() >= MEMO_CAP {
        memo.clear();
    }
    memo.insert(stored.node.key.clone(), loc);
    if let (Some(link), Some(child)) = (&stored.node.left, stored.left_loc) {
        memo.insert(link.key.clone(), child);
    }
    if let (Some(link), Some(child)) = (&stored.node.right, stored.right_loc) {
        memo.insert(link.key.clone(), child);
    }
}

/// Reads the record at `loc` through the location-keyed node cache.
fn load_stored(log: &NodeLog, cache: &NodeCache, loc: RecordLoc) -> Result<StoredNode, AvlError> {
    if let Some(hit) = cache.lock().get(&loc) {
        return Ok(hit);
    }
    let payload = log.read(loc)?;
    let stored = decode_stored(&payload)?;
    cache.lock().put(loc, stored.clone(), payload.len() + 96);
    Ok(stored)
}

/// BST descent by key through the *anchored* (on-disk) tree, following
/// stored child locations. Returns the node and where it lives, or
/// `None` if the anchored tree has no such key. Verification against
/// committed hashes happens in the tree layer on top of this.
fn walk_anchor(
    log: &NodeLog,
    cache: &NodeCache,
    anchor: Option<RecordLoc>,
    key: &[u8],
    memo: &LocMemo,
) -> Result<Option<(StoredNode, RecordLoc)>, AvlError> {
    let memo_hit = memo.borrow().get(key).copied();
    if let Some(loc) = memo_hit {
        let stored = load_stored(log, cache, loc)?;
        remember_stored(memo, &stored, loc);
        return Ok(Some((stored, loc)));
    }
    let Some(mut loc) = anchor else {
        return Ok(None);
    };
    loop {
        let stored = load_stored(log, cache, loc)?;
        remember_stored(memo, &stored, loc);
        match key.cmp(stored.node.key.as_slice()) {
            std::cmp::Ordering::Equal => return Ok(Some((stored, loc))),
            std::cmp::Ordering::Less => match stored.left_loc {
                Some(next) => loc = next,
                None => return Ok(None),
            },
            std::cmp::Ordering::Greater => match stored.right_loc {
                Some(next) => loc = next,
                None => return Ok(None),
            },
        }
    }
}

/// Resolves the log location of the exact node version `link` commits
/// to, via the anchored tree.
fn locate_anchored(
    log: &NodeLog,
    cache: &NodeCache,
    anchor: Option<RecordLoc>,
    link: &AvlLink,
    memo: &LocMemo,
) -> Result<RecordLoc, AvlError> {
    let Some((stored, loc)) = walk_anchor(log, cache, anchor, &link.key, memo)? else {
        return Err(AvlError::CorruptNode {
            detail: "committed node missing from the anchored tree",
        });
    };
    if stored.node.node_hash() != link.hash {
        return Err(AvlError::CorruptNode {
            detail: "anchored node version disagrees with its parent link",
        });
    }
    Ok(loc)
}

fn get_node_from(
    log: &NodeLog,
    cache: &NodeCache,
    dirty: &HashMap<Vec<u8>, Arc<AvlNode>>,
    anchor: Option<RecordLoc>,
    key: &[u8],
    memo: &LocMemo,
) -> Result<Option<Arc<AvlNode>>, AvlError> {
    if let Some(node) = dirty.get(key) {
        return Ok(Some(node.clone()));
    }
    Ok(walk_anchor(log, cache, anchor, key, memo)?.map(|(stored, _)| stored.node))
}

/// Read-only [`AvlNodeStore`] over the log: dirty set first, anchored
/// tree second.
struct NodeReader<'a> {
    log: &'a NodeLog,
    cache: &'a NodeCache,
    dirty: &'a HashMap<Vec<u8>, Arc<AvlNode>>,
    anchor: Option<RecordLoc>,
    memo: LocMemo,
}

impl AvlNodeStore for NodeReader<'_> {
    fn get_node(&self, key: &[u8]) -> Result<Option<Arc<AvlNode>>, AvlError> {
        get_node_from(
            self.log,
            self.cache,
            self.dirty,
            self.anchor,
            key,
            &self.memo,
        )
    }

    fn put_node(&mut self, _node: &AvlNode) -> Result<(), AvlError> {
        Err(AvlError::Backend {
            detail: "node store is read-only outside push".to_string(),
        })
    }
}

/// Writable [`AvlNodeStore`] for [`TableSource::push`]: writes go to
/// the in-memory dirty set; the log is only appended to at sync time,
/// so one anchor writes each rewritten node once, not once per insert.
struct NodeEditor<'a> {
    log: &'a NodeLog,
    cache: &'a NodeCache,
    dirty: &'a mut HashMap<Vec<u8>, Arc<AvlNode>>,
    dirty_bytes: &'a mut u64,
    anchor: Option<RecordLoc>,
    memo: LocMemo,
}

impl AvlNodeStore for NodeEditor<'_> {
    fn get_node(&self, key: &[u8]) -> Result<Option<Arc<AvlNode>>, AvlError> {
        get_node_from(
            self.log,
            self.cache,
            self.dirty,
            self.anchor,
            key,
            &self.memo,
        )
    }

    fn put_node(&mut self, node: &AvlNode) -> Result<(), AvlError> {
        let size = node.resident_size() as u64;
        if let Some(old) = self.dirty.insert(node.key.clone(), Arc::new(node.clone())) {
            *self.dirty_bytes = self.dirty_bytes.saturating_sub(old.resident_size() as u64);
        }
        *self.dirty_bytes += size;
        Ok(())
    }
}

#[derive(Debug)]
struct IndexInner {
    tree: AvlTree,
    /// Height the in-memory tree is consistent with.
    tip: u64,
    /// Height the on-disk root record anchors.
    anchored_tip: u64,
    /// Log location of the anchored root node.
    anchor: Option<RecordLoc>,
    /// Nodes written since the last anchor, latest version per key.
    dirty: HashMap<Vec<u8>, Arc<AvlNode>>,
    dirty_bytes: u64,
}

/// A persistent, authenticated [`TableSource`]: the chain's per-block
/// derived state in a Merkle AVL tree over an append-only node log.
/// See the [module docs](self) for the layout and invariants.
#[derive(Debug)]
pub struct IndexedTables {
    dir: PathBuf,
    log: NodeLog,
    fs: Arc<dyn StoreFs>,
    inner: RwLock<IndexInner>,
    cache: NodeCache,
}

impl IndexedTables {
    /// Creates a fresh, empty index in `dir`, wiping whatever was there
    /// (the index is derived state — rebuilding it loses nothing).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] on filesystem failure.
    pub fn create(
        dir: impl AsRef<Path>,
        cache_bytes: usize,
        segment_target_bytes: u64,
    ) -> Result<Self, StoreError> {
        Self::create_with_fs(dir, cache_bytes, segment_target_bytes, Arc::new(RealFs))
    }

    /// [`IndexedTables::create`] with an explicit [`StoreFs`] — the
    /// seam the crash-fault harness injects through.
    ///
    /// # Errors
    ///
    /// As [`IndexedTables::create`].
    pub fn create_with_fs(
        dir: impl AsRef<Path>,
        cache_bytes: usize,
        segment_target_bytes: u64,
        fs_impl: Arc<dyn StoreFs>,
    ) -> Result<Self, StoreError> {
        let dir = dir.as_ref();
        if dir.exists() {
            fs_impl.remove_dir_all(dir)?;
        }
        fs::create_dir_all(dir)?;
        let log = NodeLog::create(dir, segment_target_bytes, Arc::clone(&fs_impl))?;
        let tables = IndexedTables {
            dir: dir.to_path_buf(),
            log,
            fs: fs_impl,
            inner: RwLock::new(IndexInner {
                tree: AvlTree::new(),
                tip: 0,
                anchored_tip: 0,
                anchor: None,
                dirty: HashMap::new(),
                dirty_bytes: 0,
            }),
            cache: Mutex::new(LruCache::new(cache_bytes)),
        };
        write_root(&tables.dir, 0, None, None, &*tables.fs)?;
        Ok(tables)
    }

    /// Opens the index in `dir` from its checksummed root record and
    /// verifies the anchored root node against it (one point read).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if the root file is missing,
    /// [`StoreError::CorruptIndexRoot`] if it fails validation, and any
    /// node-log error if the root node cannot be read back verified.
    pub fn open(
        dir: impl AsRef<Path>,
        cache_bytes: usize,
        segment_target_bytes: u64,
    ) -> Result<Self, StoreError> {
        Self::open_with_fs(dir, cache_bytes, segment_target_bytes, Arc::new(RealFs))
    }

    /// [`IndexedTables::open`] with an explicit [`StoreFs`].
    ///
    /// # Errors
    ///
    /// As [`IndexedTables::open`].
    pub fn open_with_fs(
        dir: impl AsRef<Path>,
        cache_bytes: usize,
        segment_target_bytes: u64,
        fs_impl: Arc<dyn StoreFs>,
    ) -> Result<Self, StoreError> {
        let dir = dir.as_ref();
        // Debris from a crash between the root temp write and its
        // rename; the renamed-to root is still whole.
        let stale_tmp = dir.join(ROOT_TMP_FILE);
        if stale_tmp.exists() {
            fs_impl.remove_file(&stale_tmp)?;
        }
        let (tip, link, anchor) = read_root(&dir.join(ROOT_FILE))?;
        let log = NodeLog::open(dir, segment_target_bytes, Arc::clone(&fs_impl))?;
        let tables = IndexedTables {
            dir: dir.to_path_buf(),
            log,
            fs: fs_impl,
            inner: RwLock::new(IndexInner {
                tree: AvlTree::from_root(link.clone()),
                tip,
                anchored_tip: tip,
                anchor,
                dirty: HashMap::new(),
                dirty_bytes: 0,
            }),
            cache: Mutex::new(LruCache::new(cache_bytes)),
        };
        if let (Some(link), Some(anchor)) = (link, anchor) {
            let stored =
                load_stored(&tables.log, &tables.cache, anchor).map_err(avl_store_error)?;
            if stored.node.key != link.key
                || stored.node.height() != link.height
                || stored.node.node_hash() != link.hash
            {
                return Err(avl_store_error(AvlError::CorruptNode {
                    detail: "anchored root node disagrees with the root record",
                }));
            }
        }
        Ok(tables)
    }

    /// Like [`IndexedTables::open`], but additionally requires the root
    /// to anchor exactly `expected_tip`.
    ///
    /// # Errors
    ///
    /// As [`IndexedTables::open`], plus [`StoreError::StaleIndexRoot`]
    /// when the anchored tip is not `expected_tip`.
    pub fn open_at(
        dir: impl AsRef<Path>,
        cache_bytes: usize,
        segment_target_bytes: u64,
        expected_tip: u64,
    ) -> Result<Self, StoreError> {
        Self::open_at_with_fs(
            dir,
            cache_bytes,
            segment_target_bytes,
            expected_tip,
            Arc::new(RealFs),
        )
    }

    /// [`IndexedTables::open_at`] with an explicit [`StoreFs`].
    ///
    /// # Errors
    ///
    /// As [`IndexedTables::open_at`].
    pub fn open_at_with_fs(
        dir: impl AsRef<Path>,
        cache_bytes: usize,
        segment_target_bytes: u64,
        expected_tip: u64,
        fs_impl: Arc<dyn StoreFs>,
    ) -> Result<Self, StoreError> {
        let tables = Self::open_with_fs(dir, cache_bytes, segment_target_bytes, fs_impl)?;
        let root_tip = tables.tip();
        if root_tip != expected_tip {
            return Err(StoreError::StaleIndexRoot {
                root_tip,
                store_tip: expected_tip,
            });
        }
        Ok(tables)
    }

    /// The tip height the index is consistent with.
    pub fn tip(&self) -> u64 {
        self.inner.read().tip
    }

    /// The authenticated root hash over the entire index
    /// ([`Hash256::ZERO`] when empty).
    pub fn root_hash(&self) -> Hash256 {
        self.inner.read().tree.root_hash()
    }

    /// Total bytes across the node-log segment files.
    pub fn data_bytes(&self) -> u64 {
        self.log.data_bytes()
    }

    /// Restores all block headers `1..=tip` by point reads.
    ///
    /// # Errors
    ///
    /// [`StoreError::Chain`] if a header is missing, fails
    /// verification, or does not decode.
    pub fn restore_headers(&self) -> Result<Vec<BlockHeader>, StoreError> {
        let inner = self.inner.read();
        let reader = self.reader(&inner);
        let mut headers = Vec::with_capacity(inner.tip as usize);
        // One in-order prefix scan: header keys sort by height, so the
        // walk yields 1..=tip directly and verifies each node once —
        // instead of `tip` separate root-to-leaf point reads.
        inner
            .tree
            .scan_prefix(&reader, &[KEY_HEADER], &mut |node| {
                if node.key.len() != 9 {
                    return Err(AvlError::CorruptNode {
                        detail: "header entry key is malformed",
                    });
                }
                let height = u64::from_be_bytes(node.key[1..9].try_into().expect("8 bytes"));
                if height != headers.len() as u64 + 1 || height > inner.tip {
                    return Err(AvlError::CorruptNode {
                        detail: "index header heights are not contiguous",
                    });
                }
                let header = lvq_codec::decode_exact::<BlockHeader>(&node.value)
                    .map_err(decode_error("stored header does not decode"))?;
                headers.push(header);
                Ok(())
            })
            .map_err(avl_store_error)?;
        if headers.len() as u64 != inner.tip {
            return Err(avl_store_error(AvlError::CorruptNode {
                detail: "index is missing a header below its anchored tip",
            }));
        }
        Ok(headers)
    }

    /// Restores the finalised BMT span hashes by one prefix scan.
    ///
    /// # Errors
    ///
    /// [`StoreError::Chain`] on verification or decode failure.
    pub fn restore_span_hashes(&self) -> Result<HashMap<(u64, u64), Hash256>, StoreError> {
        let inner = self.inner.read();
        let reader = self.reader(&inner);
        let mut spans = HashMap::new();
        inner
            .tree
            .scan_prefix(&reader, &[KEY_SPAN], &mut |node| {
                if node.key.len() != 17 {
                    return Err(AvlError::CorruptNode {
                        detail: "span entry key is malformed",
                    });
                }
                let lo = u64::from_be_bytes(node.key[1..9].try_into().expect("8 bytes"));
                let hi = u64::from_be_bytes(node.key[9..17].try_into().expect("8 bytes"));
                let hash = lvq_codec::decode_exact::<Hash256>(&node.value)
                    .map_err(decode_error("span entry value is malformed"))?;
                spans.insert((lo, hi), hash);
                Ok(())
            })
            .map_err(avl_store_error)?;
        Ok(spans)
    }

    /// Verifies the *entire* index — every node's hash, height, BST
    /// order, and AVL balance — and returns the entry count. This is
    /// the full-paranoia reopen path; normal reads already verify the
    /// nodes they touch.
    ///
    /// # Errors
    ///
    /// [`StoreError::Chain`] at the first violation.
    pub fn verify_all(&self) -> Result<u64, StoreError> {
        let inner = self.inner.read();
        let reader = self.reader(&inner);
        inner.tree.verify_walk(&reader).map_err(avl_store_error)
    }

    /// Builds an authenticated membership proof for the table entry at
    /// `height`, returning the proof and the root hash it verifies
    /// under — internal integrity evidence assembled from O(log n)
    /// point reads.
    ///
    /// # Errors
    ///
    /// [`StoreError::Chain`] if the height has no table entry or a node
    /// on the path fails verification.
    pub fn prove_table(&self, height: u64) -> Result<(AvlProof, Hash256), StoreError> {
        let inner = self.inner.read();
        let reader = self.reader(&inner);
        let proof = inner
            .tree
            .prove(&reader, &table_key(height))
            .map_err(avl_store_error)?;
        Ok((proof, inner.tree.root_hash()))
    }

    fn reader<'a>(&'a self, inner: &'a IndexInner) -> NodeReader<'a> {
        NodeReader {
            log: &self.log,
            cache: &self.cache,
            dirty: &inner.dirty,
            anchor: inner.anchor,
            memo: LocMemo::default(),
        }
    }

    /// Writes every dirty node to the log children-first, fsyncs it,
    /// and re-anchors the root record at the current tip.
    fn flush(&self) -> Result<(), StoreError> {
        let mut inner = self.inner.write();
        if inner.dirty.is_empty() && inner.anchored_tip == inner.tip {
            return Ok(());
        }
        let inner = &mut *inner;
        let memo = LocMemo::default();
        let root_loc = match inner.tree.root() {
            None => None,
            Some(link) => Some(write_subtree(
                link,
                &inner.dirty,
                inner.anchor,
                &self.log,
                &self.cache,
                &memo,
            )?),
        };
        // Log first, root second: the renamed-in root record must only
        // ever reference nodes that are already durable.
        self.log.sync()?;
        write_root(&self.dir, inner.tip, inner.tree.root(), root_loc, &*self.fs)?;
        inner.anchor = root_loc;
        inner.anchored_tip = inner.tip;
        inner.dirty.clear();
        inner.dirty_bytes = 0;
        Ok(())
    }
}

/// Writes the dirty nodes of the subtree under `link` to the log,
/// children before parents, and returns the subtree root's location.
/// Clean subtrees are not descended into — their root's location is
/// resolved through the previously anchored tree.
fn write_subtree(
    link: &AvlLink,
    dirty: &HashMap<Vec<u8>, Arc<AvlNode>>,
    anchor: Option<RecordLoc>,
    log: &NodeLog,
    cache: &NodeCache,
    memo: &LocMemo,
) -> Result<RecordLoc, StoreError> {
    match dirty.get(&link.key) {
        Some(node) if node.node_hash() == link.hash => {
            let left_loc = node
                .left
                .as_ref()
                .map(|l| write_subtree(l, dirty, anchor, log, cache, memo))
                .transpose()?;
            let right_loc = node
                .right
                .as_ref()
                .map(|l| write_subtree(l, dirty, anchor, log, cache, memo))
                .transpose()?;
            let payload = encode_stored(node, left_loc, right_loc);
            let loc = log.append(&payload)?;
            cache.lock().put(
                loc,
                StoredNode {
                    node: node.clone(),
                    left_loc,
                    right_loc,
                },
                payload.len() + 96,
            );
            Ok(loc)
        }
        // Not dirty (or a stale dirty version, which locate_anchored
        // will refuse): the exact committed version must already be in
        // the anchored tree.
        _ => locate_anchored(log, cache, anchor, link, memo).map_err(avl_store_error),
    }
}

/// Atomically rewrites `root.idx`:
/// `magic | version | tip | root link | root loc | crc32`.
fn write_root(
    dir: &Path,
    tip: u64,
    link: Option<&AvlLink>,
    loc: Option<RecordLoc>,
    fs_impl: &dyn StoreFs,
) -> Result<(), StoreError> {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&ROOT_MAGIC);
    bytes.extend_from_slice(&VERSION.to_le_bytes());
    bytes.extend_from_slice(&tip.to_le_bytes());
    link.cloned().encode_into(&mut bytes);
    loc.map(LocCodec).encode_into(&mut bytes);
    let crc = crc32(&bytes);
    bytes.extend_from_slice(&crc.to_le_bytes());

    let tmp = dir.join(ROOT_TMP_FILE);
    let file = File::create(&tmp)?;
    fs_impl.write_all(&file, &bytes)?;
    fs_impl.sync(&file)?;
    fs_impl.rename(&tmp, &dir.join(ROOT_FILE))?;
    // A rename alone is not power-loss durable until the directory
    // entry itself is on disk.
    fs_impl.sync_dir(dir)?;
    Ok(())
}

/// Reads and validates `root.idx` back.
fn read_root(path: &Path) -> Result<(u64, Option<AvlLink>, Option<RecordLoc>), StoreError> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    if bytes.len() < 20 {
        return Err(StoreError::CorruptIndexRoot {
            detail: "truncated",
        });
    }
    if bytes[..4] != ROOT_MAGIC {
        return Err(StoreError::CorruptIndexRoot {
            detail: "bad magic",
        });
    }
    if u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]) != VERSION {
        return Err(StoreError::CorruptIndexRoot {
            detail: "unsupported version",
        });
    }
    let body_len = bytes.len() - 4;
    let stored_crc = u32::from_le_bytes([
        bytes[body_len],
        bytes[body_len + 1],
        bytes[body_len + 2],
        bytes[body_len + 3],
    ]);
    if crc32(&bytes[..body_len]) != stored_crc {
        return Err(StoreError::CorruptIndexRoot {
            detail: "crc mismatch",
        });
    }
    let tip = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
    let mut reader = Reader::new(&bytes[16..body_len]);
    let parsed: Result<_, DecodeError> = (|| {
        let link = Option::<AvlLink>::decode_from(&mut reader)?;
        let loc = Option::<LocCodec>::decode_from(&mut reader)?.map(|l| l.0);
        reader.finish()?;
        Ok((link, loc))
    })();
    let Ok((link, loc)) = parsed else {
        return Err(StoreError::CorruptIndexRoot {
            detail: "does not decode",
        });
    };
    if link.is_some() != loc.is_some() {
        return Err(StoreError::CorruptIndexRoot {
            detail: "root link and root location disagree",
        });
    }
    if tip > 0 && link.is_none() {
        return Err(StoreError::CorruptIndexRoot {
            detail: "anchored tip without a root node",
        });
    }
    Ok((tip, link, loc))
}

fn encode_table(table: &[(Address, u64)]) -> Vec<u8> {
    let mut out = Vec::new();
    lvq_codec::write_compact_size(&mut out, table.len() as u64);
    for entry in table {
        entry.encode_into(&mut out);
    }
    out
}

impl TableSource for IndexedTables {
    fn len(&self) -> u64 {
        self.inner.read().tip
    }

    fn table(&self, height: u64) -> Result<Arc<Vec<(Address, u64)>>, ChainError> {
        let inner = self.inner.read();
        if height == 0 || height > inner.tip {
            return Err(ChainError::UnknownHeight { height });
        }
        let reader = self.reader(&inner);
        let node = inner
            .tree
            .get(&reader, &table_key(height))
            .map_err(avl_chain_error)?
            .ok_or_else(|| ChainError::Source {
                detail: format!("address index has no table for height {height}"),
            })?;
        let table = lvq_codec::decode_exact::<Vec<(Address, u64)>>(&node.value).map_err(|_| {
            ChainError::Source {
                detail: format!("address index table for height {height} does not decode"),
            }
        })?;
        Ok(Arc::new(table))
    }

    fn push(&mut self, update: TableUpdate<'_>) -> Result<(), ChainError> {
        let inner = self.inner.get_mut();
        debug_assert_eq!(update.height, inner.tip + 1);
        let IndexInner {
            tree,
            dirty,
            dirty_bytes,
            anchor,
            tip,
            ..
        } = inner;
        let mut editor = NodeEditor {
            log: &self.log,
            cache: &self.cache,
            dirty,
            dirty_bytes,
            anchor: *anchor,
            memo: LocMemo::default(),
        };
        // Canonical per-block order: header, table, spans, addresses —
        // replaying the same blocks therefore grows the identical tree,
        // which is what makes rebuild == incremental testable.
        tree.insert(
            &mut editor,
            &header_key(update.height),
            &update.header.encode(),
        )
        .map_err(avl_chain_error)?;
        tree.insert(
            &mut editor,
            &table_key(update.height),
            &encode_table(&update.table),
        )
        .map_err(avl_chain_error)?;
        for span in update.new_spans {
            tree.insert(
                &mut editor,
                &span_key(span.lo, span.hi),
                &span.hash.encode(),
            )
            .map_err(avl_chain_error)?;
        }
        for (address, count) in update.table.iter() {
            tree.insert(
                &mut editor,
                &addr_key(address, update.height),
                &count.encode(),
            )
            .map_err(avl_chain_error)?;
        }
        *tip += 1;
        Ok(())
    }

    fn truncate(&mut self, height: u64) -> Result<(), ChainError> {
        let tip = self.inner.read().tip;
        if height > tip {
            return Err(ChainError::UnknownHeight { height });
        }
        if height == tip {
            return Ok(());
        }
        // Collect every doomed key first, while the entries are still
        // readable: each rewound height's address entries (named by its
        // stored table), its table and header entries, and every span
        // reaching above the fork point. Genuine deletion — not tip
        // masking — because `restore_headers` treats any entry above
        // the anchored tip as corruption at the next reopen.
        let mut doomed: Vec<Vec<u8>> = Vec::new();
        for h in height + 1..=tip {
            let table = self.table(h)?;
            for (address, _) in table.iter() {
                doomed.push(addr_key(address, h));
            }
            doomed.push(table_key(h));
            doomed.push(header_key(h));
        }
        {
            let inner = self.inner.read();
            let reader = self.reader(&inner);
            inner
                .tree
                .scan_prefix(&reader, &[KEY_SPAN], &mut |node| {
                    if node.key.len() != 17 {
                        return Err(AvlError::CorruptNode {
                            detail: "span entry key is malformed",
                        });
                    }
                    let hi = u64::from_be_bytes(node.key[9..17].try_into().expect("8 bytes"));
                    if hi > height {
                        doomed.push(node.key.clone());
                    }
                    Ok(())
                })
                .map_err(avl_chain_error)?;
        }
        let inner = self.inner.get_mut();
        let IndexInner {
            tree,
            dirty,
            dirty_bytes,
            anchor,
            tip,
            ..
        } = inner;
        let mut editor = NodeEditor {
            log: &self.log,
            cache: &self.cache,
            dirty,
            dirty_bytes,
            anchor: *anchor,
            memo: LocMemo::default(),
        };
        for key in &doomed {
            tree.remove(&mut editor, key).map_err(avl_chain_error)?;
        }
        *tip = height;
        Ok(())
    }

    fn presence(&self, address: &Address) -> Result<Option<Vec<(u64, u64)>>, ChainError> {
        let inner = self.inner.read();
        let tip = inner.tip;
        let reader = self.reader(&inner);
        let prefix = addr_prefix(address);
        let mut out = Vec::new();
        inner
            .tree
            .scan_prefix(&reader, &prefix, &mut |node| {
                if node.key.len() != prefix.len() + 8 {
                    return Err(AvlError::CorruptNode {
                        detail: "presence entry key is malformed",
                    });
                }
                let height =
                    u64::from_be_bytes(node.key[prefix.len()..].try_into().expect("8 bytes"));
                let count = lvq_codec::decode_exact::<u64>(&node.value)
                    .map_err(decode_error("presence entry value is malformed"))?;
                // Tip-pinned: ignore entries above the served tip (a
                // failed half-applied push can leave orphans there
                // until the next successful extension overwrites them).
                if height >= 1 && height <= tip {
                    out.push((height, count));
                }
                Ok(())
            })
            .map_err(avl_chain_error)?;
        Ok(Some(out))
    }

    fn sync(&self, tip_height: u64) -> Result<(), ChainError> {
        let tip = self.inner.read().tip;
        if tip_height != tip {
            return Err(ChainError::Source {
                detail: format!("address index at height {tip} cannot anchor at {tip_height}"),
            });
        }
        self.flush().map_err(|e| ChainError::Source {
            detail: e.to_string(),
        })
    }

    fn cache_stats(&self) -> CacheStats {
        self.cache.lock().stats()
    }

    fn clear_cache(&self) {
        self.cache.lock().clear();
    }

    fn set_cache_budget(&self, budget_bytes: usize) {
        self.cache.lock().set_budget(budget_bytes);
    }

    fn resident_bytes(&self) -> u64 {
        self.inner.read().dirty_bytes + self.cache.lock().stats().used_bytes
    }
}

impl Drop for IndexedTables {
    fn drop(&mut self) {
        // Best effort: anchor whatever was pushed so the next open
        // starts from the tip instead of catching up.
        let _ = self.flush();
    }
}
