//! The store as a [`BlockSource`]: serve-from-disk chains.

use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

use parking_lot::Mutex;

use lvq_chain::{Block, BlockSource, CacheStats, Chain, ChainError};

use crate::cache::LruCache;
use crate::error::StoreError;
use crate::fsio::{RealFs, StoreFs};
use crate::index::IndexedTables;
use crate::store::{AddrIndexRecovery, BlockStore, RecoveryReport, StoreConfig};

/// Subdirectory of a block store holding the persistent address index.
pub(crate) const INDEX_DIR: &str = "addr-index";

/// Blocks absorbed between index anchors during a rebuild, bounding the
/// transient dirty set.
const REBUILD_BATCH: u64 = 512;

fn source_error(e: StoreError) -> ChainError {
    ChainError::Source {
        detail: e.to_string(),
    }
}

/// A [`BlockSource`] that materializes blocks lazily from a
/// [`BlockStore`], keeping the hot set decoded in a bounded LRU cache.
#[derive(Debug)]
pub struct DiskBlockSource {
    store: Arc<BlockStore>,
    cache: Mutex<LruCache<u64, Arc<Block>>>,
}

impl DiskBlockSource {
    /// Wraps a store with a decoded-block LRU budget of
    /// `store.config().cache_bytes`.
    pub fn new(store: Arc<BlockStore>) -> Self {
        let budget = store.config().cache_bytes;
        DiskBlockSource {
            store,
            cache: Mutex::new(LruCache::new(budget)),
        }
    }

    /// The underlying store.
    pub fn store(&self) -> &Arc<BlockStore> {
        &self.store
    }
}

impl BlockSource for DiskBlockSource {
    fn len(&self) -> u64 {
        self.store.len()
    }

    fn block(&self, height: u64) -> Result<Arc<Block>, ChainError> {
        if height == 0 || height > self.store.len() {
            return Err(ChainError::UnknownHeight { height });
        }
        if let Some(hit) = self.cache.lock().get(&height) {
            return Ok(hit);
        }
        let block = Arc::new(self.store.read_block(height).map_err(source_error)?);
        let size = block.integral_size();
        self.cache.lock().put(height, block.clone(), size);
        Ok(block)
    }

    /// Sequential full scan straight off the segments, *bypassing* the
    /// LRU so a chain-length pass (trusted assembly, `history_of`)
    /// cannot evict the serving hot set.
    fn scan(
        &self,
        visit: &mut dyn FnMut(u64, &Block) -> Result<(), ChainError>,
    ) -> Result<(), ChainError> {
        let mut failed = None;
        self.store
            .scan_blocks(&mut |height, block| match visit(height, block) {
                Ok(()) => Ok(()),
                Err(e) => {
                    failed = Some(e);
                    // Any sentinel stops the store scan; the chain error
                    // is re-raised below.
                    Err(StoreError::UnknownHeight { height })
                }
            })
            .map_err(|e| match failed.take() {
                Some(chain_error) => chain_error,
                None => source_error(e),
            })
    }

    fn resident_bytes(&self) -> u64 {
        self.cache.lock().stats().used_bytes
    }

    fn cache_stats(&self) -> CacheStats {
        self.cache.lock().stats()
    }

    fn push_block(&mut self, block: Arc<Block>) -> Result<(), ChainError> {
        self.store.append(&block).map_err(source_error)?;
        Ok(())
    }

    fn truncate(&mut self, height: u64) -> Result<(), ChainError> {
        self.store.truncate(height).map_err(source_error)?;
        // Decoded copies of the dropped blocks must not outlive them.
        self.cache.lock().clear();
        Ok(())
    }
}

/// Opens the store in `dir` and assembles a serve-from-disk
/// [`Chain`] over it via [`Chain::assemble_trusted`] — record CRCs
/// vouch for the bytes, so commitments are not replayed.
///
/// Returns the chain together with the [`RecoveryReport`] from opening
/// the store.
///
/// # Errors
///
/// Any [`StoreError`] from opening, or [`StoreError::Chain`] if the
/// stored blocks do not form a well-linked chain.
pub fn open_chain(
    dir: impl AsRef<Path>,
    config: StoreConfig,
) -> Result<(Chain<DiskBlockSource>, RecoveryReport), StoreError> {
    let (store, report) = BlockStore::open(dir, config)?;
    let params = store.params();
    let source = DiskBlockSource::new(Arc::new(store));
    let chain = Chain::assemble_trusted(params, source).map_err(StoreError::Chain)?;
    Ok((chain, report))
}

/// An indexed serve-from-disk chain: blocks from the store, derived
/// state from the persistent address index.
pub type IndexedChain = Chain<DiskBlockSource, IndexedTables>;

/// Opens the store in `dir` together with its persistent address index
/// (`addr-index/`), building the index on first open.
///
/// Restoration is point reads: the index's checksummed root record is
/// read back, headers and span hashes are restored through verified
/// tree lookups, and the restored tip header is cross-checked against
/// the stored tip block. An index root *behind* the store tip is caught
/// up from the blocks; a root *ahead* of the store
/// ([`StoreError::StaleIndexRoot`]), a corrupt root record, or any
/// verification failure triggers a loud full rebuild from the
/// CRC-verified blocks — never a wrong answer. The outcome is reported
/// in [`RecoveryReport::addr_index`].
///
/// # Errors
///
/// Any [`StoreError`] from opening the block store itself, or from the
/// rebuild if even that fails (e.g. the blocks do not decode).
pub fn open_chain_indexed(
    dir: impl AsRef<Path>,
    config: StoreConfig,
) -> Result<(IndexedChain, RecoveryReport), StoreError> {
    open_chain_indexed_inner(dir, config, false, Arc::new(RealFs))
}

/// [`open_chain_indexed`] with an explicit [`StoreFs`] threaded through
/// the store, the node log, and the root record — the seam the
/// crash-fault harness injects through.
///
/// # Errors
///
/// As [`open_chain_indexed`].
pub fn open_chain_indexed_with_fs(
    dir: impl AsRef<Path>,
    config: StoreConfig,
    fs_impl: Arc<dyn StoreFs>,
) -> Result<(IndexedChain, RecoveryReport), StoreError> {
    open_chain_indexed_inner(dir, config, false, fs_impl)
}

/// Like [`open_chain_indexed`], but additionally verifies the *entire*
/// index (every node hash, key order, and balance) before serving,
/// rebuilding on any violation. Reopen cost becomes a full index read
/// — the full-paranoia path for operators who do not trust the disk.
///
/// # Errors
///
/// As [`open_chain_indexed`].
pub fn open_chain_indexed_verified(
    dir: impl AsRef<Path>,
    config: StoreConfig,
) -> Result<(IndexedChain, RecoveryReport), StoreError> {
    open_chain_indexed_inner(dir, config, true, Arc::new(RealFs))
}

fn open_chain_indexed_inner(
    dir: impl AsRef<Path>,
    config: StoreConfig,
    verify: bool,
    fs_impl: Arc<dyn StoreFs>,
) -> Result<(IndexedChain, RecoveryReport), StoreError> {
    let (store, mut report) = BlockStore::open_with_fs(dir, config, Arc::clone(&fs_impl))?;
    let store = Arc::new(store);
    match try_restore(&store, config, verify, Arc::clone(&fs_impl)) {
        Ok((chain, status)) => {
            report.addr_index = status;
            Ok((chain, report))
        }
        Err(e) => {
            let chain = rebuild_index(&store, config, fs_impl)?;
            report.addr_index = AddrIndexRecovery::Rebuilt {
                reason: rebuild_reason(&e),
            };
            Ok((chain, report))
        }
    }
}

fn rebuild_reason(e: &StoreError) -> &'static str {
    match e {
        StoreError::Io(io) if io.kind() == std::io::ErrorKind::NotFound => "no index present",
        StoreError::Io(_) => "index unreadable",
        StoreError::StaleIndexRoot { .. } => "index root anchored ahead of the store",
        StoreError::CorruptIndexRoot { .. } => "index root record corrupt",
        _ => "index failed verification",
    }
}

fn index_budget(store: &BlockStore) -> usize {
    store.params().cache_config().index_node_cache_bytes
}

/// Opens the existing index and restores a chain from it, catching up
/// a root that lags the store. Any failure is returned to the caller,
/// which rebuilds.
fn try_restore(
    store: &Arc<BlockStore>,
    config: StoreConfig,
    verify: bool,
    fs_impl: Arc<dyn StoreFs>,
) -> Result<(IndexedChain, AddrIndexRecovery), StoreError> {
    let index_dir = store.dir().join(INDEX_DIR);
    let store_tip = store.len();
    let tables = IndexedTables::open_with_fs(
        &index_dir,
        index_budget(store),
        config.segment_target_bytes,
        fs_impl,
    )?;
    let root_tip = tables.tip();
    if root_tip > store_tip {
        // The index references blocks the store no longer holds — its
        // anchoring cannot be trusted.
        return Err(StoreError::StaleIndexRoot {
            root_tip,
            store_tip,
        });
    }
    if verify {
        tables.verify_all()?;
    }
    let mut chain = restore_chain(store, tables)?;
    if root_tip < store_tip {
        chain.extend_batch(u64::MAX).map_err(StoreError::Chain)?;
        chain.sync_derived().map_err(StoreError::Chain)?;
        Ok((
            chain,
            AddrIndexRecovery::CaughtUp {
                from: root_tip,
                to: store_tip,
            },
        ))
    } else {
        Ok((chain, AddrIndexRecovery::Intact))
    }
}

fn restore_chain(
    store: &Arc<BlockStore>,
    tables: IndexedTables,
) -> Result<IndexedChain, StoreError> {
    let headers = tables.restore_headers()?;
    let span_hashes = tables.restore_span_hashes()?;
    // One block read pins the restored state to the durable chain: the
    // index's idea of the tip must be the block the store actually has.
    if let Some(last) = headers.last() {
        let tip_block = store.read_block(headers.len() as u64)?;
        if tip_block.header != *last {
            return Err(StoreError::CorruptIndexRoot {
                detail: "restored tip header disagrees with the stored tip block",
            });
        }
    }
    let source = DiskBlockSource::new(Arc::clone(store));
    Chain::from_restored_parts(store.params(), headers, span_hashes, source, tables)
        .map_err(StoreError::Chain)
}

/// Rebuilds the index from scratch off the CRC-verified blocks,
/// anchoring every [`REBUILD_BATCH`] blocks so the transient dirty set
/// stays bounded regardless of chain length.
fn rebuild_index(
    store: &Arc<BlockStore>,
    config: StoreConfig,
    fs_impl: Arc<dyn StoreFs>,
) -> Result<IndexedChain, StoreError> {
    let index_dir = store.dir().join(INDEX_DIR);
    let tables = IndexedTables::create_with_fs(
        &index_dir,
        index_budget(store),
        config.segment_target_bytes,
        fs_impl,
    )?;
    let source = DiskBlockSource::new(Arc::clone(store));
    let mut chain =
        Chain::from_restored_parts(store.params(), Vec::new(), HashMap::new(), source, tables)
            .map_err(StoreError::Chain)?;
    loop {
        let absorbed = chain
            .extend_batch(REBUILD_BATCH)
            .map_err(StoreError::Chain)?;
        chain.sync_derived().map_err(StoreError::Chain)?;
        if absorbed < REBUILD_BATCH {
            break;
        }
    }
    Ok(chain)
}

/// Copies every block of `chain` into a fresh store at `dir` and syncs
/// it — the bulk path behind `lvq ingest`.
///
/// # Errors
///
/// As [`BlockStore::create`] and [`BlockStore::append`].
pub fn ingest_chain<S: BlockSource>(
    chain: &Chain<S>,
    dir: impl AsRef<Path>,
    config: StoreConfig,
) -> Result<BlockStore, StoreError> {
    let store = BlockStore::create(dir, chain.params(), config)?;
    for height in 1..=chain.tip_height() {
        let block = chain.block(height)?;
        store.append(&block)?;
    }
    store.sync()?;
    Ok(store)
}
