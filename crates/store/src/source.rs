//! The store as a [`BlockSource`]: serve-from-disk chains.

use std::path::Path;
use std::sync::Arc;

use parking_lot::Mutex;

use lvq_chain::{Block, BlockSource, CacheStats, Chain, ChainError};

use crate::cache::LruCache;
use crate::error::StoreError;
use crate::store::{BlockStore, RecoveryReport, StoreConfig};

fn source_error(e: StoreError) -> ChainError {
    ChainError::Source {
        detail: e.to_string(),
    }
}

/// A [`BlockSource`] that materializes blocks lazily from a
/// [`BlockStore`], keeping the hot set decoded in a bounded LRU cache.
#[derive(Debug)]
pub struct DiskBlockSource {
    store: Arc<BlockStore>,
    cache: Mutex<LruCache<u64, Arc<Block>>>,
}

impl DiskBlockSource {
    /// Wraps a store with a decoded-block LRU budget of
    /// `store.config().cache_bytes`.
    pub fn new(store: Arc<BlockStore>) -> Self {
        let budget = store.config().cache_bytes;
        DiskBlockSource {
            store,
            cache: Mutex::new(LruCache::new(budget)),
        }
    }

    /// The underlying store.
    pub fn store(&self) -> &Arc<BlockStore> {
        &self.store
    }
}

impl BlockSource for DiskBlockSource {
    fn len(&self) -> u64 {
        self.store.len()
    }

    fn block(&self, height: u64) -> Result<Arc<Block>, ChainError> {
        if height == 0 || height > self.store.len() {
            return Err(ChainError::UnknownHeight { height });
        }
        if let Some(hit) = self.cache.lock().get(&height) {
            return Ok(hit);
        }
        let block = Arc::new(self.store.read_block(height).map_err(source_error)?);
        let size = block.integral_size();
        self.cache.lock().put(height, block.clone(), size);
        Ok(block)
    }

    /// Sequential full scan straight off the segments, *bypassing* the
    /// LRU so a chain-length pass (trusted assembly, `history_of`)
    /// cannot evict the serving hot set.
    fn scan(
        &self,
        visit: &mut dyn FnMut(u64, &Block) -> Result<(), ChainError>,
    ) -> Result<(), ChainError> {
        let mut failed = None;
        self.store
            .scan_blocks(&mut |height, block| match visit(height, block) {
                Ok(()) => Ok(()),
                Err(e) => {
                    failed = Some(e);
                    // Any sentinel stops the store scan; the chain error
                    // is re-raised below.
                    Err(StoreError::UnknownHeight { height })
                }
            })
            .map_err(|e| match failed.take() {
                Some(chain_error) => chain_error,
                None => source_error(e),
            })
    }

    fn resident_bytes(&self) -> u64 {
        self.cache.lock().stats().used_bytes
    }

    fn cache_stats(&self) -> CacheStats {
        self.cache.lock().stats()
    }
}

/// Opens the store in `dir` and assembles a serve-from-disk
/// [`Chain`] over it via [`Chain::assemble_trusted`] — record CRCs
/// vouch for the bytes, so commitments are not replayed.
///
/// Returns the chain together with the [`RecoveryReport`] from opening
/// the store.
///
/// # Errors
///
/// Any [`StoreError`] from opening, or [`StoreError::Chain`] if the
/// stored blocks do not form a well-linked chain.
pub fn open_chain(
    dir: impl AsRef<Path>,
    config: StoreConfig,
) -> Result<(Chain<DiskBlockSource>, RecoveryReport), StoreError> {
    let (store, report) = BlockStore::open(dir, config)?;
    let params = store.params();
    let source = DiskBlockSource::new(Arc::new(store));
    let chain = Chain::assemble_trusted(params, source).map_err(StoreError::Chain)?;
    Ok((chain, report))
}

/// Copies every block of `chain` into a fresh store at `dir` and syncs
/// it — the bulk path behind `lvq ingest`.
///
/// # Errors
///
/// As [`BlockStore::create`] and [`BlockStore::append`].
pub fn ingest_chain<S: BlockSource>(
    chain: &Chain<S>,
    dir: impl AsRef<Path>,
    config: StoreConfig,
) -> Result<BlockStore, StoreError> {
    let store = BlockStore::create(dir, chain.params(), config)?;
    for height in 1..=chain.tip_height() {
        let block = chain.block(height)?;
        store.append(&block)?;
    }
    store.sync()?;
    Ok(store)
}
