//! Store error type.

use std::error::Error;
use std::fmt;
use std::path::PathBuf;

use lvq_chain::ChainError;
use lvq_codec::DecodeError;

/// Errors from creating, opening, or reading a block store.
#[derive(Debug)]
#[non_exhaustive]
pub enum StoreError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The directory has no `store.meta` — not a block store.
    NotAStore {
        /// The directory that was probed.
        path: PathBuf,
    },
    /// `create` was pointed at a directory that already holds a store.
    AlreadyExists {
        /// The occupied directory.
        path: PathBuf,
    },
    /// A store file does not start with its expected magic.
    BadMagic {
        /// Which file (`store.meta`, `index.idx`, or a segment).
        file: &'static str,
    },
    /// A store file's format version is newer than this library.
    UnsupportedVersion {
        /// Which file carried the version.
        file: &'static str,
        /// Version found.
        found: u32,
    },
    /// `store.meta` failed its checksum or did not decode.
    CorruptMeta,
    /// A record in the middle of a segment failed its CRC or framing —
    /// unlike a torn tail, this is real corruption and refuses to load.
    CorruptRecord {
        /// Segment the record lives in.
        segment: u32,
        /// Byte offset of the record header within the segment file.
        offset: u64,
        /// What exactly failed.
        detail: &'static str,
    },
    /// Segment files are not numbered contiguously from zero.
    MissingSegment {
        /// First missing segment number.
        segment: u32,
    },
    /// The address index's checksummed root record anchors a different
    /// tip height than the block store holds — the index is out of step
    /// with the chain (distinct from [`StoreError::CorruptRecord`]: the
    /// bytes are intact, the *anchoring* is wrong). A root behind the
    /// store is caught up incrementally; a root ahead of the store
    /// references blocks the store lost and forces a rebuild.
    StaleIndexRoot {
        /// Tip height the index root record anchors.
        root_tip: u64,
        /// Tip height the block store actually holds.
        store_tip: u64,
    },
    /// The address index's root record failed validation (bad CRC,
    /// truncated, or internally inconsistent). A missing root file
    /// surfaces as [`StoreError::Io`].
    CorruptIndexRoot {
        /// What exactly failed.
        detail: &'static str,
    },
    /// A height outside `1..=len` was requested.
    UnknownHeight {
        /// The requested height.
        height: u64,
    },
    /// A stored block payload does not decode.
    Decode(DecodeError),
    /// Assembling or reading the chain on top of the store failed.
    Chain(ChainError),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "i/o error: {e}"),
            StoreError::NotAStore { path } => {
                write!(f, "{} is not a block store (no store.meta)", path.display())
            }
            StoreError::AlreadyExists { path } => {
                write!(f, "{} already holds a block store", path.display())
            }
            StoreError::BadMagic { file } => write!(f, "{file}: bad magic"),
            StoreError::UnsupportedVersion { file, found } => {
                write!(f, "{file}: unsupported version {found}")
            }
            StoreError::CorruptMeta => f.write_str("store.meta is corrupt"),
            StoreError::CorruptRecord {
                segment,
                offset,
                detail,
            } => write!(
                f,
                "corrupt record in segment {segment} at offset {offset}: {detail}"
            ),
            StoreError::MissingSegment { segment } => {
                write!(f, "segment {segment} is missing")
            }
            StoreError::StaleIndexRoot {
                root_tip,
                store_tip,
            } => write!(
                f,
                "address-index root anchors height {root_tip} but the store tip is {store_tip}"
            ),
            StoreError::CorruptIndexRoot { detail } => {
                write!(f, "address-index root record is corrupt: {detail}")
            }
            StoreError::UnknownHeight { height } => write!(f, "no block at height {height}"),
            StoreError::Decode(e) => write!(f, "stored block does not decode: {e}"),
            StoreError::Chain(e) => write!(f, "chain error: {e}"),
        }
    }
}

impl Error for StoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Decode(e) => Some(e),
            StoreError::Chain(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<DecodeError> for StoreError {
    fn from(e: DecodeError) -> Self {
        StoreError::Decode(e)
    }
}

impl From<ChainError> for StoreError {
    fn from(e: ChainError) -> Self {
        StoreError::Chain(e)
    }
}
