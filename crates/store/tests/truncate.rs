//! Reorg storage primitives: `BlockStore::truncate` (torn-tail-safe
//! rewind), the fork sidecar log, persistent-index rewind across a
//! reopen, and atomic batch-linkage validation over a disk source.

use std::fs::{self, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use proptest::prelude::*;

use lvq_bloom::BloomParams;
use lvq_chain::{
    Address, Block, Chain, ChainBuilder, ChainError, ChainParams, CommitmentPolicy, Transaction,
};
use lvq_crypto::Hash256;
use lvq_store::{
    open_chain, open_chain_indexed, AddrIndexRecovery, BlockStore, DiskBlockSource, StoreConfig,
    StoreError,
};

static NEXT_DIR: AtomicU64 = AtomicU64::new(0);

struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> Self {
        let n = NEXT_DIR.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("lvq-store-trunc-{tag}-{}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        ScratchDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn params() -> ChainParams {
    ChainParams::new(
        BloomParams::new(256, 2).unwrap(),
        8,
        CommitmentPolicy::lvq(),
    )
    .unwrap()
}

fn block_txs(h: u64, tag: &str) -> Vec<Transaction> {
    let mut txs = vec![Transaction::coinbase(Address::new("1Miner"), 50, h as u32)];
    for t in 0..h % 3 {
        txs.push(Transaction::coinbase(
            Address::new(format!("1{tag}x{h}x{t}").as_str()),
            1,
            (h * 100 + t) as u32,
        ));
    }
    txs
}

/// A straight-built chain of `blocks` blocks; heights above `fork` use
/// `tag` in their addresses so two tags diverge after a shared prefix.
fn build_chain(blocks: u64, fork: u64, tag: &str) -> Chain {
    let mut builder = ChainBuilder::new(params()).unwrap();
    for h in 1..=blocks {
        let tag = if h <= fork { "Main" } else { tag };
        builder.push_block(block_txs(h, tag)).unwrap();
    }
    builder.finish()
}

fn fill_store(dir: &Path, chain: &Chain, segment_target: u64) -> BlockStore {
    let config = StoreConfig {
        segment_target_bytes: segment_target,
        ..StoreConfig::default()
    };
    let store = BlockStore::create(dir, chain.params(), config).unwrap();
    for h in 1..=chain.tip_height() {
        store.append(&chain.block(h).unwrap()).unwrap();
    }
    store.sync().unwrap();
    store
}

fn segment_files(dir: &Path) -> Vec<String> {
    let mut names: Vec<String> = fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .filter(|n| n.ends_with(".blk"))
        .collect();
    names.sort();
    names
}

#[test]
fn truncate_across_segments_removes_files_and_reopens_clean() {
    let scratch = ScratchDir::new("across");
    let truth = build_chain(20, 20, "Main");
    // A 1-byte target rotates on every append: one record per segment.
    let store = fill_store(scratch.path(), &truth, 1);
    let segments_before = segment_files(scratch.path()).len();
    assert!(segments_before > 10, "expected per-block segments");

    assert_eq!(store.truncate(7).unwrap(), 13);
    assert_eq!(store.len(), 7);
    assert!(segment_files(scratch.path()).len() < segments_before);
    for h in 1..=7 {
        assert_eq!(
            store.read_block(h).unwrap(),
            *truth.block(h).unwrap(),
            "height {h}"
        );
    }
    assert!(matches!(
        store.read_block(8),
        Err(StoreError::UnknownHeight { height: 8 })
    ));
    assert!(matches!(
        store.truncate(8),
        Err(StoreError::UnknownHeight { height: 8 })
    ));

    // Appends after a truncate land at the rewound heights.
    for h in 8..=12 {
        assert_eq!(store.append(&truth.block(h).unwrap()).unwrap(), h);
    }
    store.sync().unwrap();
    drop(store);

    let (chain, _) = open_chain(scratch.path(), StoreConfig::default()).unwrap();
    assert_eq!(chain.tip_height(), 12);
    assert_eq!(chain.headers(), &truth.headers()[..12]);
}

#[test]
fn truncate_within_a_segment_and_to_zero() {
    let scratch = ScratchDir::new("within");
    let truth = build_chain(12, 12, "Main");
    // Default target: everything lands in one segment.
    let store = fill_store(
        scratch.path(),
        &truth,
        StoreConfig::default().segment_target_bytes,
    );
    assert_eq!(segment_files(scratch.path()).len(), 1);

    assert_eq!(store.truncate(12).unwrap(), 0, "no-op truncate");
    assert_eq!(store.truncate(5).unwrap(), 7);
    assert_eq!(store.len(), 5);
    assert_eq!(store.truncate(0).unwrap(), 5);
    assert!(store.is_empty());

    for h in 1..=3 {
        store.append(&truth.block(h).unwrap()).unwrap();
    }
    store.sync().unwrap();
    drop(store);
    let (reopened, _) = BlockStore::open(scratch.path(), StoreConfig::default()).unwrap();
    assert_eq!(reopened.len(), 3);
    assert_eq!(reopened.read_block(3).unwrap(), *truth.block(3).unwrap());
}

#[test]
fn fork_log_roundtrips_and_tolerates_a_torn_tail() {
    let scratch = ScratchDir::new("forklog");
    let truth = build_chain(10, 6, "Fork");
    let store = fill_store(
        scratch.path(),
        &truth,
        StoreConfig::default().segment_target_bytes,
    );
    assert_eq!(store.fork_log().unwrap(), vec![], "no log yet");

    let mut expected = Vec::new();
    for h in 7..=10 {
        let block = truth.block(h).unwrap();
        store.log_fork_block(h, &block).unwrap();
        expected.push((h, (*block).clone()));
    }
    assert_eq!(store.fork_log().unwrap(), expected);

    // A torn tail (crash mid-append) is tolerated: the complete
    // records before it are still returned.
    let log_path = scratch.path().join("forks.log");
    let mut file = OpenOptions::new().append(true).open(&log_path).unwrap();
    file.write_all(&[0xAB; 5]).unwrap();
    drop(file);
    assert_eq!(store.fork_log().unwrap(), expected);

    // Real corruption before the tail is loud, never silently skipped.
    let mut file = OpenOptions::new()
        .read(true)
        .write(true)
        .open(&log_path)
        .unwrap();
    file.seek(SeekFrom::Start(12)).unwrap();
    let mut byte = [0u8; 1];
    file.read_exact(&mut byte).unwrap();
    file.seek(SeekFrom::Start(12)).unwrap();
    file.write_all(&[byte[0] ^ 0xFF]).unwrap();
    drop(file);
    assert!(store.fork_log().is_err());
}

#[test]
fn fork_log_compaction_never_loses_a_reachable_branch() {
    let scratch = ScratchDir::new("compact");
    let truth = build_chain(12, 4, "Main");
    let rival = build_chain(12, 4, "Fork");
    let store = fill_store(
        scratch.path(),
        &truth,
        StoreConfig::default().segment_target_bytes,
    );

    // Journal rival blocks at heights 5..=12, as a long running ingest
    // would across many small reorgs.
    let mut logged = Vec::new();
    for h in 5..=12 {
        let block = rival.block(h).unwrap();
        store.log_fork_block(h, &block).unwrap();
        logged.push((h, (*block).clone()));
    }

    // With a reorg budget of 4 off tip 12, only heights > 8 are still
    // re-adoptable; everything reachable survives byte-identically and
    // in log order.
    assert_eq!(store.compact_fork_log(4).unwrap(), 4);
    assert_eq!(store.fork_log().unwrap(), logged[4..].to_vec());

    // Idempotent: nothing left to drop at the same depth.
    assert_eq!(store.compact_fork_log(4).unwrap(), 0);
    assert_eq!(store.fork_log().unwrap(), logged[4..].to_vec());

    // The compacted log is still a normal journal: appends and replay
    // keep working, and the store reopens without complaint.
    store.log_fork_block(12, &truth.block(12).unwrap()).unwrap();
    assert_eq!(store.fork_log().unwrap().len(), 5);
    drop(store);
    let (store, report) = BlockStore::open(scratch.path(), StoreConfig::default()).unwrap();
    assert!(report.is_clean(), "compaction must not look like damage");

    // Depth 0 means no branch is reachable: the log is removed whole.
    assert_eq!(store.compact_fork_log(0).unwrap(), 5);
    assert_eq!(store.fork_log().unwrap(), vec![]);
    assert!(!scratch.path().join("forks.log").exists());
}

#[test]
fn torn_fork_log_tail_is_repaired_at_open_so_appends_stay_readable() {
    let scratch = ScratchDir::new("forkrepair");
    let truth = build_chain(8, 5, "Fork");
    let store = fill_store(
        scratch.path(),
        &truth,
        StoreConfig::default().segment_target_bytes,
    );
    let mut expected = Vec::new();
    for h in 6..=7 {
        let block = truth.block(h).unwrap();
        store.log_fork_block(h, &block).unwrap();
        expected.push((h, (*block).clone()));
    }
    drop(store);

    // A crash mid-append leaves a torn tail.
    let log_path = scratch.path().join("forks.log");
    let mut file = OpenOptions::new().append(true).open(&log_path).unwrap();
    file.write_all(&[0xAB; 5]).unwrap();
    drop(file);

    // Reopen repairs the tail *now* — if it merely tolerated it, the
    // next append would land after the garbage and strand itself
    // behind an unreadable record.
    let (store, report) = BlockStore::open(scratch.path(), StoreConfig::default()).unwrap();
    assert_eq!(report.truncated_fork_log_bytes, 5);
    assert!(!report.is_clean());
    assert_eq!(store.fork_log().unwrap(), expected);

    let block = truth.block(8).unwrap();
    store.log_fork_block(8, &block).unwrap();
    expected.push((8, (*block).clone()));
    assert_eq!(
        store.fork_log().unwrap(),
        expected,
        "an append after the repair must stay reachable"
    );
}

#[test]
fn indexed_rewind_and_reorg_persist_across_reopen() {
    let scratch = ScratchDir::new("indexed");
    let canonical = build_chain(14, 9, "Main");
    let winner = build_chain(16, 9, "Fork");
    assert_eq!(canonical.headers()[..9], winner.headers()[..9]);
    assert_ne!(canonical.headers()[9], winner.headers()[9]);
    {
        let store = fill_store(scratch.path(), &canonical, 1 << 16);
        drop(store);
    }
    let config = StoreConfig::default();
    let (mut chain, _) = open_chain_indexed(scratch.path(), config).unwrap();
    assert_eq!(chain.tip_height(), 14);

    // A reorg through the disk-backed chain: rewind to the fork point
    // and replay the winner branch into the store.
    let branch: Vec<Arc<Block>> = (10..=16).map(|h| winner.block(h).unwrap()).collect();
    assert_eq!(chain.reorg_to(9, &branch).unwrap(), 16);
    assert_eq!(chain.headers(), winner.headers());
    chain.sync_derived().unwrap();
    chain.source().store().sync().unwrap();
    drop(chain);

    // The rewound index reopens intact (point reads, no rebuild) and
    // serves the winner's state.
    let (reopened, report) = open_chain_indexed(scratch.path(), config).unwrap();
    assert_eq!(report.addr_index, AddrIndexRecovery::Intact);
    assert_eq!(reopened.tip_height(), 16);
    assert_eq!(reopened.headers(), winner.headers());
    reopened.validate().unwrap();
    for h in 1..=16 {
        assert_eq!(
            reopened.addr_counts(h).unwrap(),
            winner.addr_counts(h).unwrap(),
            "height {h}"
        );
    }
}

#[test]
fn indexed_rewind_alone_persists_across_reopen() {
    let scratch = ScratchDir::new("rewind");
    let truth = build_chain(13, 13, "Main");
    {
        let store = fill_store(scratch.path(), &truth, 1 << 16);
        drop(store);
    }
    let config = StoreConfig::default();
    let (mut chain, _) = open_chain_indexed(scratch.path(), config).unwrap();
    chain.rewind_to(6).unwrap();
    assert_eq!(chain.tip_height(), 6);
    chain.sync_derived().unwrap();
    chain.source().store().sync().unwrap();
    drop(chain);

    let (reopened, report) = open_chain_indexed(scratch.path(), config).unwrap();
    assert_eq!(report.addr_index, AddrIndexRecovery::Intact);
    assert_eq!(reopened.tip_height(), 6);
    assert_eq!(reopened.headers(), &truth.headers()[..6]);
    reopened.validate().unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// `extend_batch` over a disk source with a non-linking block at a
    /// random batch position rejects the whole batch: the chain's tip,
    /// headers, and the store are left exactly at pre-batch state —
    /// including when the batch follows a `truncate`. Re-appending the
    /// correct blocks then converges on ground truth.
    #[test]
    fn extend_batch_is_atomic_over_a_disk_source(
        pre in 1u64..8,
        batch in 2u64..8,
        bad_pos in 0u64..8,
        overhang in 0u64..4,
        segment_target in prop_oneof![Just(1u64), Just(1u64 << 16)],
    ) {
        let bad_pos = bad_pos % batch;
        let total = pre + batch;
        let scratch = ScratchDir::new("atomic");
        let truth = build_chain(total, total, "Main");

        let config = StoreConfig {
            segment_target_bytes: segment_target,
            ..StoreConfig::default()
        };
        let store = BlockStore::create(scratch.path(), truth.params(), config).unwrap();
        // A preceding truncate: overshoot the prefix, then rewind back.
        for h in 1..=(pre + overhang).min(total) {
            store.append(&truth.block(h).unwrap()).unwrap();
        }
        store.truncate(pre).unwrap();

        let source = DiskBlockSource::new(Arc::new(store));
        let mut chain = Chain::assemble_trusted(truth.params(), source).unwrap();
        prop_assert_eq!(chain.tip_height(), pre);

        // Feed the batch with one non-linking block in the middle.
        for h in pre + 1..=total {
            let mut block = (*truth.block(h).unwrap()).clone();
            if h == pre + 1 + bad_pos {
                block.header.prev_block = Hash256::hash(b"not the parent");
            }
            chain.source().store().append(&block).unwrap();
        }
        let store_len = chain.source().store().len();
        let before = chain.headers();

        let err = chain.extend_batch(u64::MAX).unwrap_err();
        prop_assert_eq!(err, ChainError::BrokenChainLink { height: pre + 1 + bad_pos });
        prop_assert_eq!(chain.tip_height(), pre);
        prop_assert_eq!(chain.headers(), before);
        prop_assert_eq!(chain.source().store().len(), store_len);

        // Recovery: cut the feed back to the last good block, re-append
        // the real ones, and a fresh assembly converges on ground
        // truth. (Truncating the store directly bypasses the source's
        // cache invalidation, so the source is rebuilt too — live
        // rewinds go through `Chain::rewind_to`, which clears it.)
        let store = Arc::clone(chain.source().store());
        drop(chain);
        store.truncate(pre + bad_pos).unwrap();
        for h in pre + bad_pos + 1..=total {
            store.append(&truth.block(h).unwrap()).unwrap();
        }
        let chain =
            Chain::assemble_trusted(truth.params(), DiskBlockSource::new(store)).unwrap();
        prop_assert_eq!(chain.headers(), truth.headers());
        chain.validate().unwrap();
    }
}
