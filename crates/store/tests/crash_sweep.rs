//! Exhaustive crash-point sweep over every durable write path.
//!
//! A scripted workload — ingest, index push, reorg, re-index — is run
//! once under a counting [`CrashFs`] to enumerate its durable
//! operations, then re-run from scratch once *per operation per crash
//! mode*: the process "dies" exactly at that op (either skipping it
//! outright or persisting a seeded prefix of a write), the store is
//! "rebooted" by reopening with the real filesystem, and the sweep
//! hard-asserts that recovery holds:
//!
//! * the reopen never fails (the one exception — a crash before store
//!   creation completed — must present as [`StoreError::NotAStore`],
//!   i.e. cleanly recreatable, never as corruption);
//! * every surviving block passes `verify_all` and is a valid prefix
//!   state of the scripted history (truth chain or rival chain bytes,
//!   nothing else);
//! * resuming the same workload re-ingests exactly the lost suffix —
//!   already-durable blocks are not rewritten — and converges on a
//!   final state semantically identical to a never-crashed control
//!   (headers, block bytes, fork journal, and per-address query
//!   answers through the restored index).

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use lvq_bloom::BloomParams;
use lvq_chain::{
    Address, BlockHeader, Chain, ChainBuilder, ChainParams, CommitmentPolicy, Transaction,
};
use lvq_codec::Encodable;
use lvq_store::{
    open_chain_indexed, open_chain_indexed_with_fs, BlockStore, CrashFs, CrashMode, CrashSchedule,
    RealFs, StoreConfig, StoreError, StoreFs,
};

/// Height at which the rival branch forks off the truth chain.
const FORK: u64 = 4;
/// The truth chain's tip before the reorg displaces its suffix.
const TRUTH_TIP: u64 = 6;
/// The rival chain's tip after the reorg.
const RIVAL_TIP: u64 = 8;

static NEXT_DIR: AtomicU64 = AtomicU64::new(0);

struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> Self {
        let n = NEXT_DIR.fetch_add(1, Ordering::Relaxed);
        // The sweep issues thousands of real fsyncs; prefer tmpfs so
        // they are (nearly) free. Crash semantics are unaffected — the
        // harness injects faults above the filesystem.
        let shm = Path::new("/dev/shm");
        let base = if shm.is_dir() {
            shm.to_path_buf()
        } else {
            std::env::temp_dir()
        };
        let dir = base.join(format!("lvq-sweep-{tag}-{}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        ScratchDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn params() -> ChainParams {
    // The smallest sane parameters: the sweep re-runs the whole
    // workload once per crash point, so per-block cost multiplies.
    ChainParams::new(BloomParams::new(64, 2).unwrap(), 4, CommitmentPolicy::lvq()).unwrap()
}

fn config() -> StoreConfig {
    // A small segment target forces rotations inside the workload, so
    // the sweep also crashes mid-rotation.
    StoreConfig {
        segment_target_bytes: 2048,
        ..StoreConfig::default()
    }
}

fn truth_txs(h: u64) -> Vec<Transaction> {
    let mut txs = vec![Transaction::coinbase(Address::new("1Miner"), 50, h as u32)];
    if h.is_multiple_of(3) {
        txs.push(Transaction::coinbase(
            Address::new(format!("1Truth{h}").as_str()),
            1,
            (h * 100) as u32,
        ));
    }
    txs
}

fn rival_txs(h: u64) -> Vec<Transaction> {
    let mut txs = vec![Transaction::coinbase(Address::new("1Rival"), 50, h as u32)];
    if h == 7 {
        txs.push(Transaction::coinbase(Address::new("1Rival7"), 1, h as u32));
    }
    txs
}

/// The honest pre-reorg chain: truth transactions to [`TRUTH_TIP`].
fn truth_chain() -> Chain {
    let mut builder = ChainBuilder::new(params()).unwrap();
    for h in 1..=TRUTH_TIP {
        builder.push_block(truth_txs(h)).unwrap();
    }
    builder.finish()
}

/// The winning branch: shares truth's blocks through [`FORK`]
/// (identical transactions produce identical blocks), diverges after.
fn rival_chain() -> Chain {
    let mut builder = ChainBuilder::new(params()).unwrap();
    for h in 1..=RIVAL_TIP {
        let txs = if h <= FORK {
            truth_txs(h)
        } else {
            rival_txs(h)
        };
        builder.push_block(txs).unwrap();
    }
    builder.finish()
}

fn block_bytes(chain: &Chain, height: u64) -> Vec<u8> {
    chain.block(height).unwrap().encode()
}

/// Addresses whose answers pin the final state: the two coinbase
/// streams, one survivor, one displaced-by-reorg, one rival-only, and
/// one that never existed.
fn probes() -> Vec<Address> {
    vec![
        Address::new("1Miner"),
        Address::new("1Rival"),
        Address::new("1Truth3"),
        Address::new("1Truth6"),
        Address::new("1Rival7"),
        Address::new("1Nobody"),
    ]
}

/// The scripted workload, written to be *resumable*: every phase first
/// inspects durable state and only performs the work that is still
/// missing, so re-running it after a crash re-ingests exactly the lost
/// suffix. Phases:
///
/// 1. create-or-open the store, ingest truth blocks to [`TRUTH_TIP`];
/// 2. open the address index (build or catch-up) at the current tip;
/// 3. reorg: journal the displaced truth blocks to `forks.log`
///    (journal-first), truncate to [`FORK`], extend with rival blocks
///    to [`RIVAL_TIP`];
/// 4. re-open the index against the reorged store.
fn workload(
    dir: &Path,
    fs_impl: Arc<dyn StoreFs>,
    truth: &Chain,
    rival: &Chain,
) -> Result<(), StoreError> {
    let cfg = config();

    // Phase 1: ingest.
    {
        let store = if dir.join("store.meta").exists() {
            BlockStore::open_with_fs(dir, cfg, Arc::clone(&fs_impl))?.0
        } else {
            // A crash before creation completed leaves no store (that
            // is the invariant under test); recreating from scratch is
            // the legitimate recovery.
            if dir.exists() {
                fs::remove_dir_all(dir)?;
            }
            BlockStore::create_with_fs(dir, truth.params(), cfg, Arc::clone(&fs_impl))?
        };
        // Once the reorg has begun (journal entries exist), the truth
        // suffix must never be re-appended.
        let reorged = !store.fork_log()?.is_empty();
        if !reorged {
            while store.len() < TRUTH_TIP {
                store.append(&truth.block(store.len() + 1).unwrap())?;
            }
            store.sync()?;
        }
    }

    // Phase 2: index at the current tip.
    drop(open_chain_indexed_with_fs(dir, cfg, Arc::clone(&fs_impl))?);

    // Phase 3: reorg, journal-first.
    {
        let (store, _) = BlockStore::open_with_fs(dir, cfg, Arc::clone(&fs_impl))?;
        let journaled = store.fork_log()?;
        for h in FORK + 1..=TRUTH_TIP {
            let bytes = block_bytes(truth, h);
            let present = journaled
                .iter()
                .any(|(jh, jb)| *jh == h && jb.encode() == bytes);
            if !present {
                store.log_fork_block(h, &truth.block(h).unwrap())?;
            }
        }
        if store.len() > FORK
            && store.read_block(FORK + 1)?.encode() == block_bytes(truth, FORK + 1)
        {
            store.truncate(FORK)?;
        }
        while store.len() < RIVAL_TIP {
            store.append(&rival.block(store.len() + 1).unwrap())?;
        }
        store.sync()?;
    }

    // Phase 4: re-index the reorged store.
    drop(open_chain_indexed_with_fs(dir, cfg, fs_impl)?);
    Ok(())
}

/// The observable end state of the workload, compared between the
/// control and every crashed-then-resumed run.
#[derive(Debug, PartialEq)]
struct FinalState {
    tip: u64,
    headers: Vec<BlockHeader>,
    blocks: Vec<Vec<u8>>,
    fork_log: Vec<(u64, Vec<u8>)>,
    histories: Vec<Vec<(u64, Transaction)>>,
}

fn capture_final_state(dir: &Path) -> FinalState {
    let (chain, report) = open_chain_indexed(dir, config()).unwrap();
    assert!(
        report.is_clean(),
        "a completed workload must reopen clean, got {report:?}"
    );
    let store = chain.source().store();
    let blocks = (1..=store.len())
        .map(|h| store.read_block(h).unwrap().encode())
        .collect();
    let mut fork_log: Vec<(u64, Vec<u8>)> = store
        .fork_log()
        .unwrap()
        .into_iter()
        .map(|(h, b)| (h, b.encode()))
        .collect();
    fork_log.sort();
    fork_log.dedup();
    let histories = probes().iter().map(|a| chain.history_of(a)).collect();
    FinalState {
        tip: chain.tip_height(),
        headers: chain.headers(),
        blocks,
        fork_log,
        histories,
    }
}

/// Reopens a crashed store with the real filesystem and asserts the
/// recovery invariants; returns the surviving block bytes per height
/// (`None` when creation never completed and there is no store yet).
fn assert_reopens_clean(
    dir: &Path,
    truth: &Chain,
    rival: &Chain,
    context: &str,
) -> Option<Vec<Vec<u8>>> {
    let (store, report) = match BlockStore::open(dir, config()) {
        Ok(opened) => opened,
        Err(StoreError::NotAStore { .. }) => {
            assert!(
                !dir.join("store.meta").exists(),
                "{context}: NotAStore with a meta file present"
            );
            return None;
        }
        Err(e) => panic!("{context}: reopen after crash failed: {e}"),
    };
    let verified = store
        .verify_all()
        .unwrap_or_else(|e| panic!("{context}: verify_all failed: {e}"));
    assert_eq!(verified, store.len(), "{context}: verify count mismatch");
    assert!(
        store.len() <= RIVAL_TIP,
        "{context}: store longer than the scripted history"
    );
    // Every surviving block is a valid prefix state: truth bytes or
    // rival bytes at its height, never anything else.
    let mut survivors = Vec::new();
    for h in 1..=store.len() {
        let bytes = store.read_block(h).unwrap().encode();
        let is_truth = h <= TRUTH_TIP && bytes == block_bytes(truth, h);
        let is_rival = bytes == block_bytes(rival, h);
        assert!(
            is_truth || is_rival,
            "{context}: block {h} survived with bytes from neither chain"
        );
        survivors.push(bytes);
    }
    // The fork journal only ever holds the displaced truth blocks.
    for (h, block) in store.fork_log().unwrap() {
        assert!(
            (FORK + 1..=TRUTH_TIP).contains(&h),
            "{context}: journal entry at unexpected height {h}"
        );
        assert_eq!(
            block.encode(),
            block_bytes(truth, h),
            "{context}: journal entry at {h} is not the displaced truth block"
        );
    }
    // The report's claims must be consistent with a clean second open:
    // whatever was repaired, repairing it again must find nothing.
    let _ = report;
    drop(store);
    let (_, second) = BlockStore::open(dir, config()).unwrap();
    assert!(
        second.is_clean() || second.rebuilt_index,
        "{context}: repairs did not converge: {second:?}"
    );
    Some(survivors)
}

/// Runs the workload to completion under a counting `CrashFs`,
/// returning the number of durable operations it performs and which
/// of them were byte writes.
fn count_crash_points() -> (u64, Vec<u64>) {
    let scratch = ScratchDir::new("count");
    let truth = truth_chain();
    let rival = rival_chain();
    let fs_impl = CrashFs::new(CrashSchedule::count_only());
    workload(scratch.path(), Arc::new(fs_impl.clone()), &truth, &rival)
        .expect("counting run must complete");
    assert!(!fs_impl.crashed());
    (fs_impl.ops(), fs_impl.write_ops())
}

#[test]
fn crash_at_every_durable_op_recovers_and_resumes() {
    let truth = truth_chain();
    let rival = rival_chain();
    // The rival branch really is a fork of truth: identical through
    // FORK, divergent after.
    for h in 1..=FORK {
        assert_eq!(block_bytes(&truth, h), block_bytes(&rival, h));
    }
    assert_ne!(block_bytes(&truth, FORK + 1), block_bytes(&rival, FORK + 1));

    let (total_ops, write_ops) = count_crash_points();
    assert!(
        total_ops > 40,
        "workload exercises too few durable ops ({total_ops}) — did the seam regress?"
    );
    assert!(!write_ops.is_empty());

    // The never-crashed control every recovered run must converge to.
    let control_dir = ScratchDir::new("control");
    workload(control_dir.path(), Arc::new(RealFs), &truth, &rival).unwrap();
    let control = capture_final_state(control_dir.path());
    assert_eq!(control.tip, RIVAL_TIP);
    assert_eq!(control.fork_log.len(), (TRUTH_TIP - FORK) as usize);

    // Abort sweeps every op; Torn only differs from Abort at byte
    // writes, so its pass is restricted to those.
    let abort_points: Vec<u64> = (0..total_ops).collect();
    for (mode, points) in [
        (CrashMode::Abort, &abort_points),
        (CrashMode::Torn, &write_ops),
    ] {
        for &op in points {
            let context = format!("{mode:?}@{op}");
            let scratch = ScratchDir::new("pt");
            let fs_impl = CrashFs::new(CrashSchedule::at(op, mode, 0xC0FFEE ^ op));

            // The workload usually surfaces the crash as an error; a
            // crash landing in a best-effort epilogue (a Drop-time
            // flush) is swallowed there, exactly as a process dying
            // after its last required durable op would be. Either way
            // the recovery invariants below must hold.
            let _ = workload(scratch.path(), Arc::new(fs_impl.clone()), &truth, &rival);
            assert!(
                fs_impl.crashed(),
                "{context}: schedule within the counted range must fire"
            );

            // Reboot: reopen with the real filesystem.
            let survivors = assert_reopens_clean(scratch.path(), &truth, &rival, &context);

            // Resume: the same workload, run to completion.
            workload(scratch.path(), Arc::new(RealFs), &truth, &rival)
                .unwrap_or_else(|e| panic!("{context}: resume failed: {e}"));
            let resumed = capture_final_state(scratch.path());
            assert_eq!(resumed, control, "{context}: resumed state diverges");

            // The resume only re-ingested the lost suffix: blocks that
            // survived the crash were not rewritten — except the
            // displaced truth suffix, which the scripted reorg
            // legitimately replaces with rival blocks.
            if let Some(survivors) = survivors {
                for (i, bytes) in survivors.iter().enumerate() {
                    let h = (i + 1) as u64;
                    if h > FORK && h <= TRUTH_TIP && *bytes == block_bytes(&truth, h) {
                        assert_eq!(
                            resumed.blocks[i],
                            block_bytes(&rival, h),
                            "{context}: displaced block {h} not replaced by the reorg"
                        );
                    } else {
                        assert_eq!(
                            resumed.blocks[i], *bytes,
                            "{context}: durable block {h} was rewritten during resume"
                        );
                    }
                }
            }
        }
    }
}
