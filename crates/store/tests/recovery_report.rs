//! [`RecoveryReport`] accuracy: every repair the report claims really
//! happened on disk, and nothing the report does *not* claim changed.
//!
//! The test damages a known-clean store in a randomly chosen way,
//! snapshots every file, reopens, and diffs the directory against the
//! damaged snapshot. Each changed, created, or removed file must be
//! explained by a specific report field; a clean report must mean a
//! byte-identical directory (modulo stale temp-file debris, whose
//! removal is documented cleanup, not a repair).

use std::collections::BTreeMap;
use std::fs::{self, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;

use lvq_bloom::BloomParams;
use lvq_chain::{Address, Chain, ChainBuilder, ChainParams, CommitmentPolicy, Transaction};
use lvq_store::{BlockStore, StoreConfig};

static NEXT_DIR: AtomicU64 = AtomicU64::new(0);

struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> Self {
        let n = NEXT_DIR.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("lvq-report-{tag}-{}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        ScratchDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn params() -> ChainParams {
    ChainParams::new(BloomParams::new(64, 2).unwrap(), 4, CommitmentPolicy::lvq()).unwrap()
}

fn build_chain(blocks: u64) -> Chain {
    let mut builder = ChainBuilder::new(params()).unwrap();
    for h in 1..=blocks {
        builder
            .push_block(vec![Transaction::coinbase(
                Address::new("1Miner"),
                50,
                h as u32,
            )])
            .unwrap();
    }
    builder.finish()
}

/// Every file in the (flat) store directory, by name.
fn snapshot(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    fs::read_dir(dir)
        .unwrap()
        .map(|e| {
            let e = e.unwrap();
            let name = e.file_name().into_string().unwrap();
            let bytes = fs::read(e.path()).unwrap();
            (name, bytes)
        })
        .collect()
}

fn append_garbage(path: &Path, n: u64) {
    let mut file = OpenOptions::new().append(true).open(path).unwrap();
    file.write_all(&vec![0xAB; n as usize]).unwrap();
}

fn last_segment(dir: &Path) -> PathBuf {
    let mut seg = 0u32;
    while dir.join(format!("segment-{:04}.blk", seg + 1)).exists() {
        seg += 1;
    }
    dir.join(format!("segment-{seg:04}.blk"))
}

/// The damage kinds the proptest draws from.
#[derive(Debug, Clone, Copy)]
enum Damage {
    /// No damage at all: the report must be clean and the directory
    /// untouched.
    None,
    /// Garbage appended to the last segment — a torn block append.
    TornSegmentTail,
    /// Garbage appended to `forks.log` — a torn journal append.
    TornForkLog,
    /// `index.idx` deleted — the index cache must be rebuilt.
    MissingIndex,
    /// Stale `*.tmp` debris from a crash between temp write and rename.
    StaleTmps,
    /// `index.idx` rolled back to an older snapshot — the unindexed
    /// tail records must be re-adopted.
    StaleIndex,
}

fn damage_strategy() -> impl Strategy<Value = Damage> {
    prop_oneof![
        Just(Damage::None),
        Just(Damage::TornSegmentTail),
        Just(Damage::TornForkLog),
        Just(Damage::MissingIndex),
        Just(Damage::StaleTmps),
        Just(Damage::StaleIndex),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn report_claims_are_accurate_and_complete(
        blocks in 3u64..10,
        damage in damage_strategy(),
        garbage in 1u64..40,
        extra in 1u64..4,
    ) {
        let scratch = ScratchDir::new("acc");
        let dir = scratch.path();
        let truth = build_chain(blocks + extra);
        let config = StoreConfig {
            // Small segments so garbage and rollbacks interact with
            // rotation boundaries too.
            segment_target_bytes: 512,
            ..StoreConfig::default()
        };

        // A clean baseline: `blocks` blocks, one journaled fork entry.
        {
            let store = BlockStore::create(dir, truth.params(), config).unwrap();
            for h in 1..=blocks {
                store.append(&truth.block(h).unwrap()).unwrap();
            }
            store.log_fork_block(blocks, &truth.block(blocks).unwrap()).unwrap();
            store.sync().unwrap();
        }

        // Inflict the damage.
        match damage {
            Damage::None => {}
            Damage::TornSegmentTail => append_garbage(&last_segment(dir), garbage),
            Damage::TornForkLog => append_garbage(&dir.join("forks.log"), garbage),
            Damage::MissingIndex => fs::remove_file(dir.join("index.idx")).unwrap(),
            Damage::StaleTmps => {
                for tmp in ["store.meta.tmp", "index.idx.tmp", "forks.log.tmp"] {
                    fs::write(dir.join(tmp), b"debris").unwrap();
                }
            }
            Damage::StaleIndex => {
                let old_index = fs::read(dir.join("index.idx")).unwrap();
                {
                    let (store, _) = BlockStore::open(dir, config).unwrap();
                    for h in blocks + 1..=blocks + extra {
                        store.append(&truth.block(h).unwrap()).unwrap();
                    }
                    store.sync().unwrap();
                }
                fs::write(dir.join("index.idx"), old_index).unwrap();
            }
        }
        let damaged = snapshot(dir);

        let (store, report) = BlockStore::open(dir, config).unwrap();
        let after = snapshot(dir);

        // Positive claims: the report describes exactly the damage.
        match damage {
            Damage::None | Damage::StaleTmps => {
                prop_assert!(report.is_clean(), "unexpected repairs: {report:?}");
            }
            Damage::TornSegmentTail => {
                prop_assert_eq!(report.truncated_tail_bytes, garbage);
                prop_assert_eq!(report.recovered_records, 0);
            }
            Damage::TornForkLog => {
                prop_assert_eq!(report.truncated_fork_log_bytes, garbage);
                prop_assert_eq!(report.truncated_tail_bytes, 0);
            }
            Damage::MissingIndex => {
                prop_assert!(report.rebuilt_index);
                prop_assert_eq!(report.recovered_records, blocks);
                prop_assert_eq!(report.truncated_tail_bytes, 0);
            }
            Damage::StaleIndex => {
                prop_assert!(!report.rebuilt_index, "a valid old index is adopted");
                prop_assert_eq!(report.recovered_records, extra);
                prop_assert_eq!(report.truncated_tail_bytes, 0);
            }
        }

        // The store really recovered: every block readable and correct.
        let expect_len = match damage {
            Damage::StaleIndex => blocks + extra,
            _ => blocks,
        };
        prop_assert_eq!(store.len(), expect_len);
        prop_assert_eq!(store.verify_all().unwrap(), expect_len);

        // Completeness: nothing unreported changed on disk. Build the
        // set of files each report field licenses the open to touch.
        for (name, bytes) in &damaged {
            let now = after.get(name);
            if now.map(|b| b == bytes).unwrap_or(false) {
                continue; // untouched
            }
            let licensed = if name.ends_with(".tmp") {
                // Debris removal is documented cleanup, always allowed
                // — but only removal, never rewriting.
                now.is_none()
            } else if name.ends_with(".blk") {
                *name == last_segment(dir).file_name().unwrap().to_string_lossy()
                    && (report.truncated_tail_bytes > 0 || report.repaired_segment_header)
            } else if name == "forks.log" {
                report.truncated_fork_log_bytes > 0
            } else if name == "index.idx" {
                !report.is_clean()
            } else {
                false
            };
            prop_assert!(
                licensed,
                "file {name} changed without a report claim licensing it ({report:?})"
            );
        }
        // No unexplained new files either (a rewritten index is the
        // only file open may create).
        for name in after.keys() {
            if !damaged.contains_key(name) {
                prop_assert!(
                    name == "index.idx" && !report.is_clean(),
                    "file {name} appeared without a report claim"
                );
            }
        }

        // The repairs converged: a second open is clean and changes
        // nothing (the store is still live, but it has not written
        // since the snapshot).
        drop(store);
        let (_, second) = BlockStore::open(dir, config).unwrap();
        prop_assert!(second.is_clean(), "repairs did not converge: {second:?}");
    }
}
