//! Store durability: round-trip identity under random shapes, torn-tail
//! recovery, and loud CRC failures for real corruption.

use std::fs::{self, OpenOptions};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;

use lvq_bloom::BloomParams;
use lvq_chain::{
    Address, Block, BlockSource, Chain, ChainBuilder, ChainParams, CommitmentPolicy, Transaction,
};
use lvq_store::{ingest_chain, open_chain, BlockStore, DiskBlockSource, StoreConfig, StoreError};

static NEXT_DIR: AtomicU64 = AtomicU64::new(0);

/// A unique scratch directory, removed on drop.
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> Self {
        let n = NEXT_DIR.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("lvq-store-test-{tag}-{}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        ScratchDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn params() -> ChainParams {
    ChainParams::new(
        BloomParams::new(256, 2).unwrap(),
        8,
        CommitmentPolicy::lvq(),
    )
    .unwrap()
}

fn build_chain(blocks: u64, seed: u64) -> Chain {
    let mut builder = ChainBuilder::new(params()).unwrap();
    for h in 1..=blocks {
        let mut txs = vec![Transaction::coinbase(Address::new("1Miner"), 50, h as u32)];
        // Vary block sizes so records have different lengths.
        for t in 0..(seed + h) % 4 {
            txs.push(Transaction::coinbase(
                Address::new(format!("1Addr{seed}x{h}x{t}").as_str()),
                1,
                (h * 100 + t) as u32,
            ));
        }
        builder.push_block(txs).unwrap();
    }
    builder.finish()
}

fn small_segments(segment_target_bytes: u64) -> StoreConfig {
    StoreConfig {
        segment_target_bytes,
        ..StoreConfig::default()
    }
}

/// Path of the highest-numbered segment file.
fn last_segment_path(dir: &Path) -> PathBuf {
    let mut seg = 0u32;
    while dir.join(format!("segment-{:04}.blk", seg + 1)).exists() {
        seg += 1;
    }
    dir.join(format!("segment-{seg:04}.blk"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Append → reopen → read-back returns bit-identical blocks for
    /// random chain lengths and segment sizes (forcing 1..many
    /// segments), with a clean recovery report.
    #[test]
    fn roundtrip_identity(
        blocks in 1u64..24,
        seed in 0u64..1000,
        segment_target in prop_oneof![Just(1u64), Just(256), Just(1024), Just(64 * 1024)],
    ) {
        let chain = build_chain(blocks, seed);
        let scratch = ScratchDir::new("roundtrip");
        let config = small_segments(segment_target);
        {
            let store = ingest_chain(&chain, scratch.path(), config).unwrap();
            prop_assert_eq!(store.len(), blocks);
        }
        let (store, report) = BlockStore::open(scratch.path(), config).unwrap();
        prop_assert!(report.is_clean(), "unexpected recovery: {report:?}");
        prop_assert_eq!(store.len(), blocks);
        for h in 1..=blocks {
            let stored = store.read_block(h).unwrap();
            let original: &Block = &chain.block(h).unwrap();
            prop_assert_eq!(&stored, original, "height {}", h);
        }
        prop_assert_eq!(store.verify_all().unwrap(), blocks);
    }
}

#[test]
fn torn_tail_recovers_to_last_complete_record() {
    let chain = build_chain(6, 7);
    let scratch = ScratchDir::new("torn");
    let config = small_segments(64 * 1024); // everything in one segment
    drop(ingest_chain(&chain, scratch.path(), config).unwrap());

    let seg = last_segment_path(scratch.path());
    let clean_len = fs::metadata(&seg).unwrap().len();

    // Simulate a crash mid-append: a partial record at the tail (a
    // plausible length field, then garbage cut short).
    let mut f = OpenOptions::new().append(true).open(&seg).unwrap();
    use std::io::Write;
    f.write_all(&500u32.to_le_bytes()).unwrap();
    f.write_all(&0xDEAD_BEEFu32.to_le_bytes()).unwrap();
    f.write_all(&[0xAB; 37]).unwrap(); // 37 of the 500 payload bytes
    drop(f);
    // The stale index must not mask the torn tail.
    fs::remove_file(scratch.path().join("index.idx")).unwrap();

    let (store, report) = BlockStore::open(scratch.path(), config).unwrap();
    assert!(report.rebuilt_index);
    assert_eq!(report.truncated_tail_bytes, 8 + 37);
    assert_eq!(store.len(), 6, "all complete records survive");
    assert_eq!(store.verify_all().unwrap(), 6);
    for h in 1..=6 {
        assert_eq!(&store.read_block(h).unwrap(), &*chain.block(h).unwrap());
    }
    drop(store);
    // The truncation is durable: a second open is clean.
    let (_, report) = BlockStore::open(scratch.path(), config).unwrap();
    assert!(report.is_clean(), "second open after recovery: {report:?}");
    assert_eq!(fs::metadata(&seg).unwrap().len(), clean_len);
}

#[test]
fn torn_header_recovers_too() {
    let chain = build_chain(4, 3);
    let scratch = ScratchDir::new("torn-header");
    let config = small_segments(64 * 1024);
    drop(ingest_chain(&chain, scratch.path(), config).unwrap());

    let seg = last_segment_path(scratch.path());
    let mut f = OpenOptions::new().append(true).open(&seg).unwrap();
    use std::io::Write;
    f.write_all(&[0x01, 0x02, 0x03]).unwrap(); // 3 of the 8 header bytes
    drop(f);
    fs::remove_file(scratch.path().join("index.idx")).unwrap();

    let (store, report) = BlockStore::open(scratch.path(), config).unwrap();
    assert_eq!(report.truncated_tail_bytes, 3);
    assert_eq!(store.len(), 4);
}

#[test]
fn torn_tail_on_exact_record_boundary_reports_clean_end() {
    // A torn append whose bytes never reached the disk at all leaves
    // the segment ending exactly on a record boundary. That is a clean
    // end: the report must show zero truncated bytes even though the
    // over-long stale index forces a rebuild.
    let chain = build_chain(6, 17);
    let scratch = ScratchDir::new("boundary");
    let config = small_segments(64 * 1024);
    drop(ingest_chain(&chain, scratch.path(), config).unwrap());

    // Cut the file back to the end of record 4 — exactly a boundary.
    let seg = last_segment_path(scratch.path());
    let full = fs::read(&seg).unwrap();
    let mut offset = 12u64; // segment header
    for _ in 0..4 {
        let at = offset as usize;
        let len = u32::from_le_bytes(full[at..at + 4].try_into().unwrap());
        offset += 8 + len as u64;
    }
    OpenOptions::new()
        .write(true)
        .open(&seg)
        .unwrap()
        .set_len(offset)
        .unwrap();

    let (store, report) = BlockStore::open(scratch.path(), config).unwrap();
    assert_eq!(
        report.truncated_tail_bytes, 0,
        "a record-boundary end is clean, nothing was torn: {report:?}"
    );
    assert!(!report.repaired_segment_header);
    assert!(
        report.rebuilt_index,
        "the stale index covers records past end-of-file"
    );
    assert_eq!(store.len(), 4);
    assert_eq!(store.verify_all().unwrap(), 4);
}

#[test]
fn torn_segment_header_at_rollover_reports_torn_tail_not_rebuilt_index() {
    // A crash between creating `segment-0001.blk` at rotation and
    // writing its 12-byte header leaves a short file. That is a torn
    // tail of the store — the index, which never covered the unborn
    // segment, is NOT rebuilt.
    let chain = build_chain(5, 23);
    let scratch = ScratchDir::new("rollover-torn");
    let config = small_segments(64 * 1024);
    drop(ingest_chain(&chain, scratch.path(), config).unwrap());

    fs::write(scratch.path().join("segment-0001.blk"), [0xAB; 5]).unwrap();

    let (store, report) = BlockStore::open(scratch.path(), config).unwrap();
    assert!(report.repaired_segment_header);
    assert_eq!(report.truncated_tail_bytes, 5);
    assert!(!report.rebuilt_index, "the index is still a valid prefix");
    assert!(!report.is_clean());
    assert_eq!(store.len(), 5);

    // The repaired segment is a first-class tail: appends land in it.
    assert_eq!(store.append(&chain.block(1).unwrap()).unwrap(), 6);
    assert_eq!(store.verify_all().unwrap(), 6);
    drop(store);
    let (_, report) = BlockStore::open(scratch.path(), config).unwrap();
    assert!(report.is_clean(), "repair is durable: {report:?}");
}

#[test]
fn empty_segment_file_at_rollover_is_repaired_and_reported() {
    // Same crash, even earlier: the file exists but holds zero bytes.
    // Nothing was truncated, but the open must still say it repaired
    // the header rather than claiming a perfectly clean end.
    let chain = build_chain(4, 29);
    let scratch = ScratchDir::new("rollover-empty");
    let config = small_segments(64 * 1024);
    drop(ingest_chain(&chain, scratch.path(), config).unwrap());

    fs::write(scratch.path().join("segment-0001.blk"), []).unwrap();

    let (store, report) = BlockStore::open(scratch.path(), config).unwrap();
    assert!(report.repaired_segment_header);
    assert_eq!(report.truncated_tail_bytes, 0);
    assert!(!report.rebuilt_index);
    assert!(!report.is_clean());
    assert_eq!(store.len(), 4);
    assert_eq!(store.verify_all().unwrap(), 4);
}

#[test]
fn stale_index_readopts_tail_records() {
    let chain = build_chain(8, 11);
    let scratch = ScratchDir::new("stale-index");
    let config = small_segments(64 * 1024);

    let store = BlockStore::create(scratch.path(), chain.params(), config).unwrap();
    for h in 1..=5u64 {
        store.append(&chain.block(h).unwrap()).unwrap();
    }
    store.sync().unwrap();
    // Keep the 5-record index, then append 3 more and "crash" (drop
    // also syncs, so restore the stale index afterwards to simulate
    // the index write never happening).
    let index_path = scratch.path().join("index.idx");
    let stale = fs::read(&index_path).unwrap();
    for h in 6..=8u64 {
        store.append(&chain.block(h).unwrap()).unwrap();
    }
    drop(store);
    fs::write(&index_path, &stale).unwrap();

    let (store, report) = BlockStore::open(scratch.path(), config).unwrap();
    assert!(!report.rebuilt_index, "stale index is still a valid prefix");
    assert_eq!(report.recovered_records, 3);
    assert_eq!(report.truncated_tail_bytes, 0);
    assert_eq!(store.len(), 8);
    for h in 1..=8 {
        assert_eq!(&store.read_block(h).unwrap(), &*chain.block(h).unwrap());
    }
}

#[test]
fn bit_flip_fails_crc_loudly() {
    let chain = build_chain(6, 5);
    let scratch = ScratchDir::new("bitflip");
    let config = small_segments(64 * 1024);
    drop(ingest_chain(&chain, scratch.path(), config).unwrap());

    // Flip one bit in the middle of the file — inside some record's
    // payload, far from the tail.
    let seg = last_segment_path(scratch.path());
    let mut bytes = fs::read(&seg).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    fs::write(&seg, &bytes).unwrap();

    // Reads through the (still valid) index hit the CRC.
    let (store, _) = BlockStore::open(scratch.path(), config).unwrap();
    let failures: Vec<u64> = (1..=6).filter(|&h| store.read_block(h).is_err()).collect();
    assert!(
        !failures.is_empty(),
        "some record must fail its CRC after the flip"
    );
    assert!(matches!(
        store.verify_all().unwrap_err(),
        StoreError::CorruptRecord { .. }
    ));
    drop(store);

    // Without the index, the rebuild scan refuses outright: the bad
    // record is not at the tail, so it is corruption, not a torn write.
    fs::remove_file(scratch.path().join("index.idx")).unwrap();
    match BlockStore::open(scratch.path(), config) {
        Err(StoreError::CorruptRecord { .. }) => {}
        other => panic!("expected CorruptRecord, got {other:?}"),
    }
}

#[test]
fn flipped_final_record_is_treated_as_torn_write() {
    // WAL semantics: a checksum failure exactly at end-of-file is
    // indistinguishable from a torn append and rolls back one record.
    let chain = build_chain(5, 9);
    let scratch = ScratchDir::new("tail-flip");
    let config = small_segments(64 * 1024);
    drop(ingest_chain(&chain, scratch.path(), config).unwrap());

    let seg = last_segment_path(scratch.path());
    let mut bytes = fs::read(&seg).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x01;
    fs::write(&seg, &bytes).unwrap();
    fs::remove_file(scratch.path().join("index.idx")).unwrap();

    let (store, report) = BlockStore::open(scratch.path(), config).unwrap();
    assert_eq!(store.len(), 4, "final record rolled back");
    assert!(report.truncated_tail_bytes > 0);
    assert_eq!(store.verify_all().unwrap(), 4);
}

#[test]
fn open_chain_serves_identical_chain_state() {
    let chain = build_chain(16, 21);
    let scratch = ScratchDir::new("open-chain");
    let config = small_segments(2048); // force several segments
    let store = ingest_chain(&chain, scratch.path(), config).unwrap();
    assert!(store.segment_count() > 1, "expected rotation");
    drop(store);

    let (served, report) = open_chain(scratch.path(), config).unwrap();
    assert!(report.is_clean());
    assert_eq!(served.tip_height(), chain.tip_height());
    assert_eq!(served.headers(), chain.headers());
    for h in 1..=chain.tip_height() {
        assert_eq!(
            served.addr_counts(h).unwrap(),
            chain.addr_counts(h).unwrap()
        );
        assert_eq!(&*served.block(h).unwrap(), &*chain.block(h).unwrap());
        assert_eq!(
            served.leaf_filter(h).unwrap(),
            chain.leaf_filter(h).unwrap()
        );
    }
    let busy = Address::new("1Miner");
    assert_eq!(served.history_of(&busy), chain.history_of(&busy));
    // The disk-served chain withstands full validation.
    served.validate().unwrap();
}

#[test]
fn lru_cache_serves_repeats_and_reports_stats() {
    let chain = build_chain(10, 2);
    let scratch = ScratchDir::new("cache");
    drop(ingest_chain(&chain, scratch.path(), StoreConfig::default()).unwrap());

    let (store, _) = BlockStore::open(scratch.path(), StoreConfig::default()).unwrap();
    let source = DiskBlockSource::new(std::sync::Arc::new(store));
    assert_eq!(source.cache_stats().hits, 0);
    source.block(3).unwrap();
    source.block(3).unwrap();
    source.block(3).unwrap();
    let stats = source.cache_stats();
    assert_eq!(stats.hits, 2);
    assert_eq!(stats.misses, 1);
    assert!(source.resident_bytes() > 0);
}

#[test]
fn appending_after_reopen_continues_heights() {
    let chain = build_chain(9, 13);
    let scratch = ScratchDir::new("reopen-append");
    let config = small_segments(1024);

    let store = BlockStore::create(scratch.path(), chain.params(), config).unwrap();
    for h in 1..=4u64 {
        store.append(&chain.block(h).unwrap()).unwrap();
    }
    drop(store);

    let (store, _) = BlockStore::open(scratch.path(), config).unwrap();
    for h in 5..=9u64 {
        assert_eq!(store.append(&chain.block(h).unwrap()).unwrap(), h);
    }
    assert_eq!(store.verify_all().unwrap(), 9);
    for h in 1..=9 {
        assert_eq!(&store.read_block(h).unwrap(), &*chain.block(h).unwrap());
    }
}
