//! Durability and equivalence of the persistent address index.
//!
//! The contract under test: query traffic served through the index is
//! *byte-identical* to the rebuild path, and no damage to the index —
//! torn node-log tail, flipped bit, stale or corrupt root record — ever
//! produces a wrong answer. Damage is detected and answered with a loud
//! rebuild.

use std::fs::{self, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;

use lvq_bloom::BloomParams;
use lvq_chain::{
    Address, BlockSource, Chain, ChainBuilder, ChainParams, CommitmentPolicy, TableSource,
    Transaction,
};
use lvq_codec::Encodable;
use lvq_core::Prover;
use lvq_store::{
    crc32, ingest_chain, open_chain_indexed, open_chain_indexed_verified, AddrIndexRecovery,
    BlockStore, StoreConfig,
};

static NEXT_DIR: AtomicU64 = AtomicU64::new(0);

/// A unique scratch directory, removed on drop.
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> Self {
        let n = NEXT_DIR.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("lvq-index-test-{tag}-{}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        ScratchDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn params() -> ChainParams {
    ChainParams::new(
        BloomParams::new(256, 2).unwrap(),
        8,
        CommitmentPolicy::lvq(),
    )
    .unwrap()
}

fn build_chain(blocks: u64, seed: u64) -> Chain {
    let mut builder = ChainBuilder::new(params()).unwrap();
    for h in 1..=blocks {
        let mut txs = vec![Transaction::coinbase(Address::new("1Miner"), 50, h as u32)];
        for t in 0..(seed + h) % 4 {
            txs.push(Transaction::coinbase(
                Address::new(format!("1Addr{seed}x{h}x{t}").as_str()),
                1,
                (h * 100 + t) as u32,
            ));
        }
        builder.push_block(txs).unwrap();
    }
    builder.finish()
}

/// Probe set: the ubiquitous miner, a handful of one-shot addresses
/// that exist at known heights, and two that exist nowhere.
fn probes(blocks: u64, seed: u64) -> Vec<Address> {
    let mut out = vec![Address::new("1Miner")];
    for h in [1, blocks / 2 + 1, blocks] {
        out.push(Address::new(format!("1Addr{seed}x{h}x0").as_str()));
    }
    out.push(Address::new("1Nobody"));
    out.push(Address::new(format!("1Addr{seed}x0x9").as_str()));
    out
}

/// Full wire bytes of the prover's answer for `address` — the quantity
/// pinned byte-for-byte between the index path and the rebuild path.
fn respond_bytes<S, T>(chain: &Chain<S, T>, address: &Address) -> Vec<u8>
where
    S: BlockSource,
    T: TableSource,
{
    let prover = Prover::from_chain(chain).expect("known scheme");
    let (response, _) = prover.respond(address).expect("prover never fails");
    response.encode()
}

fn assert_equivalent<S, T>(truth: &Chain, served: &Chain<S, T>, blocks: u64, seed: u64)
where
    S: BlockSource,
    T: TableSource,
{
    assert_eq!(served.tip_height(), truth.tip_height());
    assert_eq!(served.headers(), truth.headers());
    for address in probes(blocks, seed) {
        assert_eq!(
            respond_bytes(truth, &address),
            respond_bytes(served, &address),
            "response bytes diverge for {address:?}"
        );
        assert_eq!(
            truth.history_of(&address),
            served.history_of(&address),
            "history diverges for {address:?}"
        );
    }
}

fn index_root_path(dir: &Path) -> PathBuf {
    dir.join("addr-index").join("root.idx")
}

/// Path of the highest-numbered node-log segment.
fn last_node_segment(dir: &Path) -> PathBuf {
    let index = dir.join("addr-index");
    let mut seg = 0u32;
    while index.join(format!("nodes-{:04}.seg", seg + 1)).exists() {
        seg += 1;
    }
    index.join(format!("nodes-{seg:04}.seg"))
}

/// Rewrites the root record's anchored tip in place, re-sealing the CRC
/// — the record stays *valid*, only its anchoring becomes a lie.
fn patch_root_tip(dir: &Path, new_tip: u64) {
    let path = index_root_path(dir);
    let mut bytes = fs::read(&path).unwrap();
    bytes[8..16].copy_from_slice(&new_tip.to_le_bytes());
    let body_len = bytes.len() - 4;
    let crc = crc32(&bytes[..body_len]);
    bytes[body_len..].copy_from_slice(&crc.to_le_bytes());
    fs::write(&path, bytes).unwrap();
}

fn flip_byte(path: &Path, offset: u64) {
    let mut file = OpenOptions::new()
        .read(true)
        .write(true)
        .open(path)
        .unwrap();
    let mut byte = [0u8; 1];
    file.seek(SeekFrom::Start(offset)).unwrap();
    file.read_exact(&mut byte).unwrap();
    byte[0] ^= 0xFF;
    file.seek(SeekFrom::Start(offset)).unwrap();
    file.write_all(&byte).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The tentpole guarantee: for random chains, the response bytes a
    /// client receives through the persistent index — first open
    /// (rebuild), then reopen (pure point reads) — are identical to the
    /// in-memory rebuild path's.
    #[test]
    fn index_query_traffic_is_byte_identical_to_rebuild(
        blocks in 1u64..20,
        seed in 0u64..500,
    ) {
        let truth = build_chain(blocks, seed);
        let scratch = ScratchDir::new("byteident");
        let config = StoreConfig::default();
        drop(ingest_chain(&truth, scratch.path(), config).unwrap());

        // First open: no index yet — built from the blocks.
        {
            let (served, report) = open_chain_indexed(scratch.path(), config).unwrap();
            prop_assert!(matches!(
                report.addr_index,
                AddrIndexRecovery::Rebuilt { reason: "no index present" }
            ), "unexpected first-open outcome: {:?}", report.addr_index);
            assert_equivalent(&truth, &served, blocks, seed);
        }

        // Reopen: restored from the anchored root, no replay.
        let (served, report) = open_chain_indexed(scratch.path(), config).unwrap();
        prop_assert_eq!(report.addr_index, AddrIndexRecovery::Intact);
        prop_assert!(report.is_clean(), "unexpected recovery: {report:?}");
        assert_equivalent(&truth, &served, blocks, seed);
    }

    /// A flipped byte anywhere in the node log never changes an answer:
    /// the verified reopen either proves the flip harmless (it landed in
    /// an unreferenced record) or detects it and rebuilds. Both paths
    /// serve byte-identical traffic.
    #[test]
    fn bit_flip_in_node_log_never_lies(
        blocks in 4u64..16,
        seed in 0u64..500,
        flip in any::<u64>(),
    ) {
        let truth = build_chain(blocks, seed);
        let scratch = ScratchDir::new("bitflip");
        let config = StoreConfig::default();
        drop(ingest_chain(&truth, scratch.path(), config).unwrap());
        drop(open_chain_indexed(scratch.path(), config).unwrap());

        let victim = last_node_segment(scratch.path());
        let len = fs::metadata(&victim).unwrap().len();
        // Skip the 12-byte segment header: damaging it refuses the whole
        // log (also a rebuild, but trivially so).
        flip_byte(&victim, 12 + flip % (len - 12));

        let (served, report) = open_chain_indexed_verified(scratch.path(), config).unwrap();
        prop_assert!(matches!(
            report.addr_index,
            AddrIndexRecovery::Intact | AddrIndexRecovery::Rebuilt { .. }
        ));
        assert_equivalent(&truth, &served, blocks, seed);
    }
}

#[test]
fn stale_root_behind_store_catches_up_without_rebuild() {
    let truth = build_chain(14, 3);
    let scratch = ScratchDir::new("stale");
    let config = StoreConfig::default();

    // Persist only the first 10 blocks, index them…
    let store = BlockStore::create(scratch.path(), truth.params(), config).unwrap();
    for h in 1..=10 {
        store.append(&truth.block(h).unwrap()).unwrap();
    }
    store.sync().unwrap();
    drop(store);
    drop(open_chain_indexed(scratch.path(), config).unwrap());

    // …then extend the store to 14 behind the index's back.
    let (store, _) = BlockStore::open(scratch.path(), config).unwrap();
    for h in 11..=14 {
        store.append(&truth.block(h).unwrap()).unwrap();
    }
    store.sync().unwrap();
    drop(store);

    let (served, report) = open_chain_indexed(scratch.path(), config).unwrap();
    assert_eq!(
        report.addr_index,
        AddrIndexRecovery::CaughtUp { from: 10, to: 14 }
    );
    assert!(
        !report.is_clean(),
        "a catch-up is recovery, not a clean open"
    );
    assert_equivalent(&truth, &served, 14, 3);
    drop(served);

    // The catch-up re-anchored: the next open is clean.
    let (_, report) = open_chain_indexed(scratch.path(), config).unwrap();
    assert_eq!(report.addr_index, AddrIndexRecovery::Intact);
}

#[test]
fn root_ahead_of_store_forces_rebuild() {
    let truth = build_chain(10, 7);
    let scratch = ScratchDir::new("ahead");
    let config = StoreConfig::default();
    drop(ingest_chain(&truth, scratch.path(), config).unwrap());
    drop(open_chain_indexed(scratch.path(), config).unwrap());

    // A valid root record claiming three blocks the store never had:
    // its anchoring cannot be trusted, so everything is rebuilt.
    patch_root_tip(scratch.path(), 13);

    let (served, report) = open_chain_indexed(scratch.path(), config).unwrap();
    assert_eq!(
        report.addr_index,
        AddrIndexRecovery::Rebuilt {
            reason: "index root anchored ahead of the store"
        }
    );
    assert_equivalent(&truth, &served, 10, 7);
}

#[test]
fn corrupt_root_record_forces_rebuild() {
    let truth = build_chain(8, 11);
    let scratch = ScratchDir::new("rootflip");
    let config = StoreConfig::default();
    drop(ingest_chain(&truth, scratch.path(), config).unwrap());
    drop(open_chain_indexed(scratch.path(), config).unwrap());

    flip_byte(&index_root_path(scratch.path()), 20);

    let (served, report) = open_chain_indexed(scratch.path(), config).unwrap();
    assert_eq!(
        report.addr_index,
        AddrIndexRecovery::Rebuilt {
            reason: "index root record corrupt"
        }
    );
    assert_equivalent(&truth, &served, 8, 11);
}

#[test]
fn torn_node_log_tail_is_unreferenced_waste() {
    let truth = build_chain(9, 5);
    let scratch = ScratchDir::new("torn-tail");
    let config = StoreConfig::default();
    drop(ingest_chain(&truth, scratch.path(), config).unwrap());
    drop(open_chain_indexed(scratch.path(), config).unwrap());

    // A crash between a log append and the root rewrite leaves bytes
    // past the last anchored node. They are not referenced, so even the
    // full-verification reopen is Intact.
    let victim = last_node_segment(scratch.path());
    let mut file = OpenOptions::new().append(true).open(&victim).unwrap();
    file.write_all(&[0xAB; 200]).unwrap();
    drop(file);

    let (served, report) = open_chain_indexed_verified(scratch.path(), config).unwrap();
    assert_eq!(report.addr_index, AddrIndexRecovery::Intact);
    assert_equivalent(&truth, &served, 9, 5);
    drop(served);

    // Truncation, by contrast, cuts into *referenced* records: detected
    // and rebuilt, never served wrong. (Take off the 200 garbage bytes
    // plus a slice of real records.)
    let len = fs::metadata(&victim).unwrap().len();
    OpenOptions::new()
        .write(true)
        .open(&victim)
        .unwrap()
        .set_len(len - 230)
        .unwrap();

    let (served, report) = open_chain_indexed_verified(scratch.path(), config).unwrap();
    assert!(
        matches!(report.addr_index, AddrIndexRecovery::Rebuilt { .. }),
        "truncated log must rebuild, got {:?}",
        report.addr_index
    );
    assert_equivalent(&truth, &served, 9, 5);
}

#[test]
fn index_cache_reports_clears_and_rebudgets() {
    let truth = build_chain(12, 2);
    let scratch = ScratchDir::new("idxcache");
    let config = StoreConfig::default();
    drop(ingest_chain(&truth, scratch.path(), config).unwrap());
    drop(open_chain_indexed(scratch.path(), config).unwrap());

    let (served, _) = open_chain_indexed(scratch.path(), config).unwrap();
    for address in probes(12, 2) {
        let _ = served.history_of(&address);
    }
    let stats = served.cache_stats();
    assert!(
        stats.index_nodes.hits + stats.index_nodes.misses > 0,
        "index reads must flow through the node cache: {stats:?}"
    );
    assert!(stats.index_nodes.used_bytes > 0);

    served.tables().clear_cache();
    let cleared = served.cache_stats().index_nodes;
    assert_eq!(cleared.entries, 0);
    assert_eq!(cleared.used_bytes, 0);
    assert!(
        cleared.hits + cleared.misses > 0,
        "counters survive a clear"
    );

    // Starve the cache: reads still work (and still verify), they just
    // stop retaining.
    served.tables().set_cache_budget(0);
    for address in probes(12, 2) {
        let _ = served.history_of(&address);
    }
    assert_eq!(served.cache_stats().index_nodes.used_bytes, 0);
    assert_equivalent(&truth, &served, 12, 2);
}
