//! Concurrency invariants of the store: a writer appending while
//! readers stream and point-read (the live-ingest serving pattern), and
//! LRU byte accounting when many workers fault the same block at once.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;

use proptest::prelude::*;

use lvq_bloom::BloomParams;
use lvq_chain::{
    Address, BlockSource, Chain, ChainBuilder, ChainParams, CommitmentPolicy, Transaction,
};
use lvq_store::{BlockStore, DiskBlockSource, StoreConfig};

static NEXT_DIR: AtomicU64 = AtomicU64::new(0);

struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> Self {
        let n = NEXT_DIR.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("lvq-store-conc-{tag}-{}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        ScratchDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn params() -> ChainParams {
    ChainParams::new(
        BloomParams::new(256, 2).unwrap(),
        8,
        CommitmentPolicy::lvq(),
    )
    .unwrap()
}

fn build_chain(blocks: u64, seed: u64) -> Chain {
    let mut builder = ChainBuilder::new(params()).unwrap();
    for h in 1..=blocks {
        let mut txs = vec![Transaction::coinbase(Address::new("1Miner"), 50, h as u32)];
        for t in 0..(seed + h) % 4 {
            txs.push(Transaction::coinbase(
                Address::new(format!("1Addr{seed}x{h}x{t}").as_str()),
                1,
                (h * 100 + t) as u32,
            ));
        }
        builder.push_block(txs).unwrap();
    }
    builder.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// A writer appends the whole chain while several readers hammer the
    /// store: `len()` is monotone from every reader's point of view, no
    /// point read or full `verify_all` scan ever surfaces a partial
    /// record, and every block read back is bit-identical to ground
    /// truth. Random segment targets exercise mid-run rotation.
    #[test]
    fn append_while_reading_never_exposes_partial_records(
        blocks in 12u64..40,
        seed in 0u64..1000,
        segment_target in prop_oneof![Just(1u64), Just(256), Just(4096)],
    ) {
        let chain = Arc::new(build_chain(blocks, seed));
        let scratch = ScratchDir::new("append-read");
        let config = StoreConfig { segment_target_bytes: segment_target, ..StoreConfig::default() };
        let store = Arc::new(BlockStore::create(scratch.path(), chain.params(), config).unwrap());
        let done = Arc::new(AtomicBool::new(false));

        let mut readers = Vec::new();
        for r in 0..3usize {
            let store = store.clone();
            let chain = chain.clone();
            let done = done.clone();
            readers.push(thread::spawn(move || {
                let mut last_len = 0u64;
                let mut rounds = 0u64;
                loop {
                    let len = store.len();
                    assert!(len >= last_len, "len went backwards: {len} < {last_len}");
                    last_len = len;
                    // Point reads across the currently visible prefix.
                    for h in 1..=len {
                        let block = store.read_block(h).unwrap_or_else(|e| {
                            panic!("reader {r} saw a bad record at height {h}: {e}")
                        });
                        assert_eq!(&block, &*chain.block(h).unwrap(), "height {h}");
                    }
                    // Full CRC re-scan sees at least the snapshot it started
                    // from.
                    let verified = store.verify_all().unwrap();
                    assert!(verified >= len);
                    rounds += 1;
                    if done.load(Ordering::Acquire) && store.len() == last_len {
                        break;
                    }
                }
                rounds
            }));
        }

        for h in 1..=blocks {
            let appended = store.append(&chain.block(h).unwrap()).unwrap();
            assert_eq!(appended, h);
            if h % 5 == 0 {
                thread::yield_now();
            }
        }
        done.store(true, Ordering::Release);

        for handle in readers {
            let rounds = handle.join().expect("reader panicked");
            prop_assert!(rounds > 0);
        }
        prop_assert_eq!(store.len(), blocks);
        prop_assert_eq!(store.verify_all().unwrap(), blocks);
    }
}

#[test]
fn concurrent_faults_of_the_same_block_do_not_drift_cache_accounting() {
    // Two workers missing on the same height both decode and both
    // `put`; the second insert must replace the first without
    // double-charging its bytes. With a budget big enough for the whole
    // chain, the steady-state `used_bytes` must equal the exact sum of
    // the distinct cached blocks — any double-charge shows up as excess.
    let blocks = 12u64;
    let chain = Arc::new(build_chain(blocks, 31));
    let scratch = ScratchDir::new("cache-race");
    let config = StoreConfig {
        cache_bytes: 64 * 1024 * 1024,
        ..StoreConfig::default()
    };
    let store = BlockStore::create(scratch.path(), chain.params(), config).unwrap();
    for h in 1..=blocks {
        store.append(&chain.block(h).unwrap()).unwrap();
    }
    let source = Arc::new(DiskBlockSource::new(Arc::new(store)));

    let mut workers = Vec::new();
    for w in 0..8u64 {
        let source = source.clone();
        let chain = chain.clone();
        workers.push(thread::spawn(move || {
            for i in 0..200u64 {
                // All workers converge on the same few heights so
                // same-block fault races actually happen.
                let h = 1 + (w + i) % blocks;
                let block = source.block(h).unwrap();
                assert_eq!(&*block, &*chain.block(h).unwrap());
            }
        }));
    }
    for handle in workers {
        handle.join().expect("worker panicked");
    }

    let expected: u64 = (1..=blocks)
        .map(|h| chain.block(h).unwrap().integral_size() as u64)
        .sum();
    let stats = source.cache_stats();
    assert_eq!(
        stats.used_bytes, expected,
        "cache byte accounting drifted: {stats:?}"
    );
    assert_eq!(stats.entries, blocks);
    // Every lookup was either a hit or a miss; once warm, a full pass
    // is all hits and moves the byte count not at all.
    assert_eq!(stats.hits + stats.misses, 8 * 200);
    for h in 1..=blocks {
        source.block(h).unwrap();
    }
    assert_eq!(source.cache_stats().used_bytes, expected);
}
