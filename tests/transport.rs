//! Transport-layer tests: the in-process [`LocalTransport`] and the
//! framed-TCP [`TcpTransport`] must be observationally identical —
//! byte-for-byte equal responses and byte-for-byte equal [`Traffic`]
//! accounting — and a [`NodeServer`] must survive adversarial clients.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use proptest::prelude::*;

use lvq::codec::{decode_exact, Encodable};
use lvq::node::{Message, ResyncOutcome, WireError, WireErrorCode, PROTOCOL_VERSION};
use lvq::prelude::*;

fn workload_for(scheme: Scheme, segment_len: u64, blocks: u64, seed: u64) -> Workload {
    let config = SchemeConfig::new(scheme, BloomParams::new(512, 2).unwrap(), segment_len).unwrap();
    WorkloadBuilder::new(config.chain_params())
        .blocks(blocks)
        .traffic(TrafficModel::tiny())
        .seed(seed)
        .probe("1WireProbe", 6, 4.min(blocks))
        .build()
        .unwrap()
}

fn scheme_strategy() -> impl Strategy<Value = Scheme> {
    prop_oneof![
        Just(Scheme::Strawman),
        Just(Scheme::LvqWithoutBmt),
        Just(Scheme::LvqWithoutSmt),
        Just(Scheme::Lvq),
    ]
}

/// Polls `cond` until it holds or two seconds elapse.
fn wait_for(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(2);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The same request bytes through a `LocalTransport` and through a
    /// `TcpTransport`-to-`NodeServer` pair must produce byte-identical
    /// response payloads and identical `Traffic` — the frame prefix is
    /// wire overhead, never measurement.
    #[test]
    fn tcp_and_local_transports_are_byte_identical(
        scheme in scheme_strategy(),
        blocks in 4u64..32,
        seg_exp in 1u32..5,
        seed in 0u64..1_000,
    ) {
        let segment_len = 1u64 << seg_exp;
        let workload = workload_for(scheme, segment_len, blocks, seed);
        let addresses: Vec<Address> =
            vec![Address::new("1WireProbe"), Address::new("1Nobody")];

        let full = Arc::new(FullNode::new(workload.chain).unwrap());
        let server =
            NodeServer::bind(Arc::clone(&full), "127.0.0.1:0", ServerConfig::default()).unwrap();
        let mut tcp = TcpTransport::connect(server.local_addr()).unwrap();
        let mut local = LocalTransport::new(full.as_ref());

        let lo = 1 + seed % blocks;
        let hi = (lo + segment_len).min(blocks);
        let requests = vec![
            Message::GetHeaders,
            Message::QueryRequest { address: addresses[0].clone(), range: None },
            Message::QueryRequest { address: addresses[1].clone(), range: Some((lo, hi)) },
            Message::BatchQueryRequest { addresses: addresses.clone(), range: None },
            Message::BatchQueryRequest { addresses: addresses.clone(), range: Some((lo, hi)) },
        ];
        for request in &requests {
            let bytes = request.encode();
            let (tcp_reply, tcp_traffic) = tcp.exchange(&bytes).unwrap();
            let (local_reply, local_traffic) = local.exchange(&bytes).unwrap();
            prop_assert_eq!(&tcp_reply, &local_reply);
            prop_assert_eq!(tcp_traffic, local_traffic);
            prop_assert_eq!(tcp_traffic.request_bytes, bytes.len() as u64);
            prop_assert_eq!(tcp_traffic.response_bytes, tcp_reply.len() as u64);
        }
        prop_assert_eq!(tcp.cumulative_traffic(), local.cumulative_traffic());
        prop_assert_eq!(tcp.exchanges(), requests.len() as u64);
        prop_assert_eq!(tcp.exchanges(), local.exchanges());

        let stats = server.shutdown();
        prop_assert_eq!(stats.requests, requests.len() as u64);
        prop_assert_eq!(stats.errors, 0);
        prop_assert_eq!(stats.request_bytes, tcp.cumulative_traffic().request_bytes);
        prop_assert_eq!(stats.response_bytes, tcp.cumulative_traffic().response_bytes);
    }

    /// A full verified light-node session behaves identically over both
    /// transports: same histories, same measured traffic.
    #[test]
    fn light_sessions_agree_across_transports(
        scheme in scheme_strategy(),
        blocks in 4u64..24,
        seed in 0u64..1_000,
    ) {
        let workload = workload_for(scheme, 8, blocks, seed);
        let config = SchemeConfig::new(scheme, BloomParams::new(512, 2).unwrap(), 8).unwrap();
        let address = Address::new("1WireProbe");

        let full = Arc::new(FullNode::new(workload.chain).unwrap());
        let server =
            NodeServer::bind(Arc::clone(&full), "127.0.0.1:0", ServerConfig::default()).unwrap();
        let mut tcp = TcpTransport::connect(server.local_addr()).unwrap();
        let mut local = LocalTransport::new(full.as_ref());

        let mut light_tcp = LightNode::sync_from(&mut tcp, config).unwrap();
        let mut light_local = LightNode::sync_from(&mut local, config).unwrap();
        let spec = QuerySpec::address(address);
        let over_tcp = light_tcp.run(&spec, &mut tcp).unwrap();
        let over_local = light_local.run(&spec, &mut local).unwrap();
        prop_assert_eq!(over_tcp.histories, over_local.histories);
        prop_assert_eq!(over_tcp.traffic, over_local.traffic);
        prop_assert_eq!(
            light_tcp.cumulative_traffic(),
            light_local.cumulative_traffic()
        );
    }
}

/// Spins up a small server for the adversarial tests.
fn adversarial_server() -> (NodeServer, SchemeConfig, Address) {
    let config = SchemeConfig::new(Scheme::Lvq, BloomParams::new(512, 2).unwrap(), 8).unwrap();
    let workload = workload_for(Scheme::Lvq, 8, 16, 7);
    let full = Arc::new(FullNode::new(workload.chain).unwrap());
    let server = NodeServer::bind(full, "127.0.0.1:0", ServerConfig::default()).unwrap();
    (server, config, Address::new("1WireProbe"))
}

/// After the adversary is done, an honest client must still be served.
fn assert_still_serving(server: &NodeServer, config: SchemeConfig, address: &Address) {
    let mut tcp = TcpTransport::connect(server.local_addr()).unwrap();
    let mut light = LightNode::sync_from(&mut tcp, config).unwrap();
    let history = light
        .run(&QuerySpec::address(address.clone()), &mut tcp)
        .unwrap()
        .into_single();
    assert_eq!(history.transactions.len(), 6);
}

/// Reads one length-prefixed frame and decodes it as a [`Message`].
fn read_message(stream: &mut TcpStream) -> Message {
    let mut header = [0u8; 4];
    stream.read_exact(&mut header).unwrap();
    let mut payload = vec![0u8; u32::from_le_bytes(header) as usize];
    stream.read_exact(&mut payload).unwrap();
    decode_exact::<Message>(&payload).unwrap()
}

#[test]
fn garbage_payload_gets_a_structured_error_and_the_connection_survives() {
    let (server, config, address) = adversarial_server();
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    // A well-formed frame whose payload names the right protocol
    // version but an unknown message tag.
    stream.write_all(&5u32.to_le_bytes()).unwrap();
    stream
        .write_all(&[PROTOCOL_VERSION, 0xEE, b'h', b'i', 0x01])
        .unwrap();
    // The server answers with a structured refusal on the SAME
    // connection instead of dropping it...
    assert_eq!(
        read_message(&mut stream),
        Message::Error(WireError::with_detail(WireErrorCode::UnknownTag, 0xEE))
    );
    // ...which still works for real requests afterwards.
    let get_headers = Message::GetHeaders.encode();
    stream
        .write_all(&u32::try_from(get_headers.len()).unwrap().to_le_bytes())
        .unwrap();
    stream.write_all(&get_headers).unwrap();
    assert!(matches!(read_message(&mut stream), Message::Headers(_)));
    drop(stream);
    wait_for("decode error to be counted", || server.stats().errors == 1);
    assert_still_serving(&server, config, &address);
}

#[test]
fn future_protocol_version_is_refused_not_dropped() {
    let (server, config, address) = adversarial_server();
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    // A client from the future: a perfectly formed request whose
    // version byte says 255.
    let mut payload = Message::GetHeaders.encode();
    payload[0] = 255;
    stream
        .write_all(&u32::try_from(payload.len()).unwrap().to_le_bytes())
        .unwrap();
    stream.write_all(&payload).unwrap();
    assert_eq!(
        read_message(&mut stream),
        Message::Error(WireError::with_detail(
            WireErrorCode::UnsupportedVersion,
            255
        ))
    );
    drop(stream);
    wait_for("version error to be counted", || server.stats().errors == 1);
    assert_still_serving(&server, config, &address);
    let stats = server.shutdown();
    assert_eq!(stats.errors, 1);
    assert_eq!(stats.by_kind.invalid, 1);
}

#[test]
fn oversized_frame_is_rejected_before_allocation() {
    let (server, config, address) = adversarial_server();
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    // Announce a frame just over the server's limit and keep the
    // connection open: the rejection must come from the header alone.
    stream.write_all(&u32::MAX.to_le_bytes()).unwrap();
    let mut sink = Vec::new();
    let _ = stream.read_to_end(&mut sink);
    assert!(sink.is_empty());
    wait_for("oversized frame to be counted", || {
        server.stats().errors == 1
    });
    assert_still_serving(&server, config, &address);
}

#[test]
fn truncated_frame_is_a_mid_request_disconnect() {
    let (server, config, address) = adversarial_server();
    {
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        // Promise 100 bytes, deliver 10, vanish.
        stream.write_all(&100u32.to_le_bytes()).unwrap();
        stream.write_all(&[0u8; 10]).unwrap();
    }
    wait_for("disconnect to be counted", || server.stats().errors == 1);
    assert_still_serving(&server, config, &address);
}

#[test]
fn clean_disconnect_is_not_an_error() {
    let (server, config, address) = adversarial_server();
    drop(TcpStream::connect(server.local_addr()).unwrap());
    wait_for("connection to be accepted", || {
        server.stats().connections == 1
    });
    // Give the worker time to observe EOF; a clean close between
    // requests is the normal end of a session, not a fault.
    std::thread::sleep(Duration::from_millis(50));
    assert_eq!(server.stats().errors, 0);
    assert_still_serving(&server, config, &address);
    let stats = server.shutdown();
    assert_eq!(stats.errors, 0);
    assert_eq!(stats.connections, 2);
}

#[test]
fn several_adversaries_cannot_starve_honest_clients() {
    let (server, config, address) = adversarial_server();
    for round in 0..3u32 {
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        match round % 3 {
            // Frame-level faults: the server can only drop the
            // connection (a length-prefixed stream cannot resync).
            0 => stream.write_all(&u32::MAX.to_le_bytes()).unwrap(),
            1 => {
                stream.write_all(&64u32.to_le_bytes()).unwrap();
                stream.write_all(&[7u8; 8]).unwrap();
            }
            // Payload-level fault: a one-byte payload whose version
            // byte is garbage earns a structured refusal, which the
            // adversary politely reads before vanishing (so the close
            // is a clean EOF, not a write race).
            _ => {
                stream.write_all(&1u32.to_le_bytes()).unwrap();
                stream.write_all(&[0xEE]).unwrap();
                assert!(matches!(read_message(&mut stream), Message::Error(_)));
            }
        }
        drop(stream);
        assert_still_serving(&server, config, &address);
    }
    wait_for("all three faults to be counted", || {
        server.stats().errors == 3
    });
    let stats = server.shutdown();
    assert_eq!(stats.errors, 3);
    // Three honest sessions, each a header sync plus one query; the
    // adversaries never got a single request through.
    assert_eq!(stats.requests, 3 * 2);
    assert_eq!(stats.by_kind.invalid, 1);
}

/// A chain of coinbase-only blocks up to `blocks`; equal prefixes give
/// equal headers, so a longer chain is a true extension of a shorter
/// one.
fn miner_chain(config: SchemeConfig, blocks: u32) -> Chain {
    let mut builder = ChainBuilder::new(config.chain_params()).unwrap();
    for h in 1..=blocks {
        builder
            .push_block(vec![Transaction::coinbase(Address::new("1Miner"), 50, h)])
            .unwrap();
    }
    builder.finish()
}

#[test]
fn incremental_sync_follows_a_growing_chain_over_tcp() {
    let config = SchemeConfig::new(Scheme::Lvq, BloomParams::new(512, 2).unwrap(), 4).unwrap();
    let miner = Address::new("1Miner");

    // Day one: the chain is 8 blocks long.
    let full = Arc::new(FullNode::new(miner_chain(config, 8)).unwrap());
    let server = NodeServer::bind(full, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut tcp = TcpTransport::connect(server.local_addr()).unwrap();
    let mut light = LightNode::sync_from(&mut tcp, config).unwrap();
    assert_eq!(light.client().tip_height(), 8);
    drop(tcp);
    server.shutdown();

    // Day two: the same chain has grown to 12 blocks; the light node
    // fetches only the 4 headers it is missing.
    let grown = Arc::new(FullNode::new(miner_chain(config, 12)).unwrap());
    let server = NodeServer::bind(grown, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut tcp = TcpTransport::connect(server.local_addr()).unwrap();
    assert_eq!(light.sync_new(&mut tcp).unwrap(), ResyncOutcome::Synced(4));
    assert_eq!(light.client().tip_height(), 12);
    // Caught up: a second incremental sync fetches nothing — the peer
    // has nothing above our tip, which the typed outcome reports as
    // `PeerBehind` (at or behind us).
    assert_eq!(light.sync_new(&mut tcp).unwrap(), ResyncOutcome::PeerBehind);

    // The freshly appended headers verify queries over the new blocks.
    let history = light
        .run(&QuerySpec::address(miner), &mut tcp)
        .unwrap()
        .into_single();
    assert_eq!(history.transactions.len(), 12);

    drop(tcp);
    let stats = server.shutdown();
    assert_eq!(stats.by_kind.get_headers_from, 2);
    assert_eq!(stats.errors, 0);
}
