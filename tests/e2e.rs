//! Cross-crate end-to-end tests: workload generation → chain commitment
//! → prover → wire → light-client verification, across all four schemes.

use lvq::codec::{decode_exact, Encodable};
use lvq::core::QueryResponse;
use lvq::prelude::*;

fn workload_for(scheme: Scheme, bf_bytes: u32, segment_len: u64, blocks: u64) -> Workload {
    let config =
        SchemeConfig::new(scheme, BloomParams::new(bf_bytes, 2).unwrap(), segment_len).unwrap();
    WorkloadBuilder::new(config.chain_params())
        .blocks(blocks)
        .traffic(TrafficModel::tiny())
        .seed(99)
        .probes(probes::table3_scaled(blocks))
        .build()
        .unwrap()
}

#[test]
fn all_schemes_verify_all_probes() {
    for scheme in Scheme::ALL {
        let workload = workload_for(scheme, 640, 16, 48);
        let config = SchemeConfig::new(scheme, BloomParams::new(640, 2).unwrap(), 16).unwrap();
        let full = FullNode::new(workload.chain).unwrap();
        let mut peer = LocalTransport::new(&full);
        let mut light = LightNode::sync_from(&mut peer, config).unwrap();
        for probe in &workload.probes {
            let history = light
                .run(&QuerySpec::address(probe.address.clone()), &mut peer)
                .unwrap()
                .into_single();
            assert_eq!(
                history.transactions.len() as u64,
                probe.tx_count,
                "scheme {scheme}, probe {}",
                probe.address
            );
            // Heights must match the planting exactly.
            let mut heights: Vec<u64> = history.transactions.iter().map(|(h, _)| *h).collect();
            heights.dedup();
            assert_eq!(heights, probe.block_heights);
            // Balance agrees with ground truth Eq. 1.
            let truth = full.chain().history_of(&probe.address);
            let txs: Vec<Transaction> = truth.into_iter().map(|(_, t)| t).collect();
            assert_eq!(history.balance, balance_of(&probe.address, txs.iter()));
        }
    }
}

#[test]
fn responses_survive_the_wire() {
    // Encode → decode → verify must behave identically to verifying the
    // in-memory response (the node layer already does this; this pins
    // it at the QueryResponse level for every scheme).
    for scheme in Scheme::ALL {
        let workload = workload_for(scheme, 640, 8, 24);
        let address = workload.probes[3].address.clone();
        let prover = Prover::from_chain(&workload.chain).unwrap();
        let (response, _) = prover.respond(&address).unwrap();

        let bytes = response.encode();
        assert_eq!(bytes.len(), response.encoded_len(), "scheme {scheme}");
        let decoded: QueryResponse = decode_exact(&bytes).unwrap();
        assert_eq!(decoded, response);

        let client = LightClient::new(prover.config(), workload.chain.headers());
        let a = client.verify(&address, &response).unwrap();
        let b = client.verify(&address, &decoded).unwrap();
        assert_eq!(a, b);
    }
}

#[test]
fn segment_division_drives_segmented_responses() {
    // A non-power-of-two tip forces sub-segments (paper §V-B); the
    // response must have exactly one bundle per (sub-)segment.
    let workload = workload_for(Scheme::Lvq, 640, 16, 45); // 45 = 32+8+4+1 within 2 segments
    let address = workload.probes[0].address.clone();
    let prover = Prover::from_chain(&workload.chain).unwrap();
    let (response, _) = prover.respond(&address).unwrap();
    let QueryResponse::Segmented(segmented) = &response else {
        panic!("LVQ responses are segmented");
    };
    let segs = segments(45, 16);
    assert_eq!(segmented.segments.len(), segs.len());
    // 45 = 2*16 complete + 8 + 4 + 1.
    assert_eq!(segs.len(), 5);

    let client = LightClient::new(prover.config(), workload.chain.headers());
    client.verify(&address, &response).unwrap();
}

#[test]
fn per_block_schemes_transmit_one_filter_per_block() {
    let workload = workload_for(Scheme::Strawman, 640, 16, 24);
    let address = workload.probes[0].address.clone();
    let prover = Prover::from_chain(&workload.chain).unwrap();
    let (response, _) = prover.respond(&address).unwrap();
    let QueryResponse::PerBlock(per_block) = &response else {
        panic!("strawman responses are per-block");
    };
    assert_eq!(per_block.entries.len(), 24);
    // The response is dominated by the 24 transmitted filters.
    let breakdown = response.size_breakdown();
    assert!(breakdown.bloom_filters >= 24 * 640);
}

#[test]
fn size_breakdown_is_exhaustive() {
    for scheme in Scheme::ALL {
        let workload = workload_for(scheme, 640, 8, 24);
        for probe in &workload.probes {
            let prover = Prover::from_chain(&workload.chain).unwrap();
            let (response, _) = prover.respond(&probe.address).unwrap();
            let b = response.size_breakdown();
            assert_eq!(
                b.total(),
                response.total_bytes(),
                "scheme {scheme}, probe {}",
                probe.address
            );
        }
    }
}

#[test]
fn workload_ledgers_are_utxo_consistent() {
    // The synthetic ledger passes full-node economic validation: every
    // input spends a real unspent output and the monetary base equals
    // blocks × subsidy.
    let workload = workload_for(Scheme::Lvq, 640, 16, 32);
    let utxo = workload.chain.validate_utxo().unwrap();
    assert_eq!(utxo.total_value(), 32 * 25_0000_0000);
}

#[test]
fn range_queries_match_full_queries() {
    // For every scheme and a sweep of ranges, a range query must return
    // exactly the slice of the full history inside the range.
    for scheme in Scheme::ALL {
        let workload = workload_for(scheme, 640, 16, 45);
        let prover = Prover::from_chain(&workload.chain).unwrap();
        let client = LightClient::new(prover.config(), workload.chain.headers());
        for probe in &workload.probes {
            let truth = workload.chain.history_of(&probe.address);
            for (lo, hi) in [(1u64, 45u64), (1, 16), (17, 45), (5, 29), (40, 40)] {
                let (response, _) = prover.respond_range(&probe.address, lo, hi).unwrap();
                let history = client
                    .verify_range(&probe.address, lo, hi, &response)
                    .unwrap();
                let expected: Vec<u64> = truth
                    .iter()
                    .filter(|(h, _)| (lo..=hi).contains(h))
                    .map(|(h, _)| *h)
                    .collect();
                let got: Vec<u64> = history.transactions.iter().map(|(h, _)| *h).collect();
                assert_eq!(got, expected, "scheme {scheme} range {lo}..={hi}");
            }
        }
    }
}

#[test]
fn batch_range_queries_match_single_range_queries() {
    // A batched range query must agree, address by address, with the
    // dedicated single-address range query (same boundary rules, same
    // verified histories) — while sharing one BMT proof per segment.
    for scheme in Scheme::ALL {
        let workload = workload_for(scheme, 640, 16, 45);
        let prover = Prover::from_chain(&workload.chain).unwrap();
        let client = LightClient::new(prover.config(), workload.chain.headers());
        let addresses: Vec<Address> = workload.probes.iter().map(|p| p.address.clone()).collect();
        for (lo, hi) in [(1u64, 45u64), (1, 16), (17, 45), (5, 29), (40, 40)] {
            let (response, _) = prover.respond_batch_range(&addresses, lo, hi).unwrap();
            let histories = client
                .verify_batch_range(&addresses, lo, hi, &response)
                .unwrap();
            assert_eq!(histories.len(), addresses.len());
            for (probe, history) in workload.probes.iter().zip(&histories) {
                let (single, _) = prover.respond_range(&probe.address, lo, hi).unwrap();
                let expected = client
                    .verify_range(&probe.address, lo, hi, &single)
                    .unwrap();
                assert_eq!(history, &expected, "scheme {scheme} range {lo}..={hi}");
            }
        }
        // Degenerate ranges are rejected on both sides.
        assert!(prover.respond_batch_range(&addresses, 0, 10).is_err());
        assert!(prover.respond_batch_range(&addresses, 9, 5).is_err());
        assert!(prover.respond_batch_range(&addresses, 1, 99).is_err());
    }
}

#[test]
fn range_response_cannot_hide_inrange_blocks() {
    // The boundary-segment rule (failed leaves below `lo` need no
    // fragment) must not create a hole: a fragment for an in-range
    // failed leaf still cannot be dropped.
    let workload = workload_for(Scheme::Lvq, 640, 16, 45);
    let probe = &workload.probes[5]; // busiest probe
    let (lo, hi) = (5u64, 45u64);
    let prover = Prover::from_chain(&workload.chain).unwrap();
    let (response, _) = prover.respond_range(&probe.address, lo, hi).unwrap();
    let client = LightClient::new(prover.config(), workload.chain.headers());
    client
        .verify_range(&probe.address, lo, hi, &response)
        .unwrap();

    let lvq::core::QueryResponse::Segmented(mut segmented) = response else {
        panic!("LVQ is segmented");
    };
    let dropped = segmented
        .segments
        .iter_mut()
        .find_map(|bundle| {
            let keep: Vec<_> = bundle
                .fragments
                .iter()
                .filter(|(h, _)| *h >= lo)
                .cloned()
                .collect();
            if keep.is_empty() {
                None
            } else {
                bundle.fragments.retain(|(h, _)| *h != keep[0].0);
                Some(keep[0].0)
            }
        })
        .expect("busy probe has in-range fragments");
    let _ = dropped;
    let err = client
        .verify_range(
            &probe.address,
            lo,
            hi,
            &lvq::core::QueryResponse::Segmented(segmented),
        )
        .unwrap_err();
    assert_eq!(err, lvq::core::QueryError::FragmentSetMismatch);
}

#[test]
fn bandwidth_model_orders_schemes_like_sizes() {
    // Transfer-time estimates must be monotone in response size.
    let model = BandwidthModel::broadband();
    let workload_strawman = workload_for(Scheme::Strawman, 640, 16, 48);
    let workload_lvq = workload_for(Scheme::Lvq, 1_920, 64, 48);
    let absent_strawman = workload_strawman.probes[0].address.clone();
    let absent_lvq = workload_lvq.probes[0].address.clone();
    let (resp_strawman, _) = Prover::from_chain(&workload_strawman.chain)
        .unwrap()
        .respond(&absent_strawman)
        .unwrap();
    let (resp_lvq, _) = Prover::from_chain(&workload_lvq.chain)
        .unwrap()
        .respond(&absent_lvq)
        .unwrap();
    // The headline result: for an absent address LVQ is far smaller
    // than the strawman.
    assert!(resp_lvq.total_bytes() < resp_strawman.total_bytes() / 2);
    assert!(
        model.transfer_time(resp_lvq.total_bytes())
            <= model.transfer_time(resp_strawman.total_bytes())
    );
}
