//! Cross-crate property tests: protocol invariants under randomised
//! chains, addresses and parameters.

use proptest::prelude::*;

use lvq::codec::{decode_exact, Encodable};
use lvq::core::{BatchQueryResponse, QueryResponse};
use lvq::prelude::*;

/// Builds a small chain from a proptest-chosen shape.
fn build(
    scheme: Scheme,
    blocks: u64,
    segment_len: u64,
    seed: u64,
    probe_txs: u64,
    probe_blocks: u64,
) -> Workload {
    let config = SchemeConfig::new(scheme, BloomParams::new(512, 2).unwrap(), segment_len).unwrap();
    WorkloadBuilder::new(config.chain_params())
        .blocks(blocks)
        .traffic(TrafficModel {
            txs_per_block: 4,
            new_address_prob: 0.5,
            reuse_skew: 2.0,
            max_inputs: 2,
            max_outputs: 2,
        })
        .seed(seed)
        .probe("1PropProbe", probe_txs.max(probe_blocks), probe_blocks)
        .build()
        .unwrap()
}

fn scheme_strategy() -> impl Strategy<Value = Scheme> {
    prop_oneof![
        Just(Scheme::Strawman),
        Just(Scheme::LvqWithoutBmt),
        Just(Scheme::LvqWithoutSmt),
        Just(Scheme::Lvq),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Honest prover → honest verifier always succeeds and returns
    /// exactly the planted history, for every scheme and odd chain
    /// shapes (partial segments included).
    #[test]
    fn honest_roundtrip_is_lossless(
        scheme in scheme_strategy(),
        blocks in 1u64..40,
        seg_exp in 0u32..6,
        seed in 0u64..1_000,
        probe_blocks in 0u64..8,
        extra_txs in 0u64..6,
    ) {
        let probe_blocks = probe_blocks.min(blocks);
        let probe_txs = probe_blocks + extra_txs.min(probe_blocks * 2);
        let workload = build(scheme, blocks, 1 << seg_exp, seed, probe_txs, probe_blocks);
        let address = workload.probes[0].address.clone();

        let prover = Prover::from_chain(&workload.chain).unwrap();
        let (response, _) = prover.respond(&address).unwrap();
        let client = LightClient::new(prover.config(), workload.chain.headers());
        let history = client.verify(&address, &response).unwrap();

        let truth = workload.chain.history_of(&address);
        prop_assert_eq!(history.transactions.len(), truth.len());
        for ((h_got, tx_got), (h_want, tx_want)) in history.transactions.iter().zip(&truth) {
            prop_assert_eq!(h_got, h_want);
            prop_assert_eq!(tx_got.txid(), tx_want.txid());
        }
    }

    /// Responses are wire-stable: encode/decode preserves both the
    /// value and the verification outcome.
    #[test]
    fn responses_roundtrip_the_wire(
        scheme in scheme_strategy(),
        blocks in 1u64..24,
        seed in 0u64..500,
    ) {
        let workload = build(scheme, blocks, 8, seed, 2.min(blocks) * 2, 2.min(blocks));
        let address = workload.probes[0].address.clone();
        let prover = Prover::from_chain(&workload.chain).unwrap();
        let (response, _) = prover.respond(&address).unwrap();
        let bytes = response.encode();
        prop_assert_eq!(bytes.len(), response.encoded_len());
        let decoded: QueryResponse = decode_exact(&bytes).unwrap();
        prop_assert_eq!(&decoded, &response);
    }

    /// The size breakdown always partitions the total exactly.
    #[test]
    fn breakdown_partitions_total(
        scheme in scheme_strategy(),
        blocks in 1u64..24,
        seed in 0u64..500,
        probe_blocks in 0u64..6,
    ) {
        let probe_blocks = probe_blocks.min(blocks);
        let workload = build(scheme, blocks, 4, seed, probe_blocks * 2, probe_blocks);
        let address = workload.probes[0].address.clone();
        let prover = Prover::from_chain(&workload.chain).unwrap();
        let (response, _) = prover.respond(&address).unwrap();
        prop_assert_eq!(response.size_breakdown().total(), response.total_bytes());
    }

    /// A batched query over several addresses — one present, two absent
    /// — verifies to exactly the histories the single-address protocol
    /// yields, and the batch response is wire-stable.
    #[test]
    fn batch_equals_singles(
        scheme in scheme_strategy(),
        blocks in 1u64..32,
        seg_exp in 0u32..5,
        seed in 0u64..500,
        probe_blocks in 0u64..6,
    ) {
        let probe_blocks = probe_blocks.min(blocks);
        let workload = build(scheme, blocks, 1 << seg_exp, seed, probe_blocks * 2, probe_blocks);
        let addresses = vec![
            workload.probes[0].address.clone(),
            Address::new("1BatchAbsentA"),
            Address::new("1BatchAbsentB"),
        ];

        let prover = Prover::from_chain(&workload.chain).unwrap();
        let (response, _) = prover.respond_batch(&addresses).unwrap();
        let client = LightClient::new(prover.config(), workload.chain.headers());
        let histories = client.verify_batch(&addresses, &response).unwrap();
        prop_assert_eq!(histories.len(), addresses.len());
        for (address, batched) in addresses.iter().zip(&histories) {
            let (single, _) = prover.respond(address).unwrap();
            let single = client.verify(address, &single).unwrap();
            prop_assert_eq!(batched, &single);
        }

        let bytes = response.encode();
        prop_assert_eq!(bytes.len(), response.encoded_len());
        let decoded: BatchQueryResponse = decode_exact(&bytes).unwrap();
        prop_assert_eq!(&decoded, &response);
    }

    /// Corrupting any single byte of an encoded response never panics
    /// the decoder or the verifier, and (almost always) gets rejected;
    /// if it still verifies, it must decode to the same history.
    #[test]
    fn bit_flips_never_panic(
        seed in 0u64..200,
        victim_byte in 0usize..10_000,
        xor in 1u8..=255,
    ) {
        let workload = build(Scheme::Lvq, 12, 4, seed, 4, 2);
        let address = workload.probes[0].address.clone();
        let prover = Prover::from_chain(&workload.chain).unwrap();
        let (response, _) = prover.respond(&address).unwrap();
        let client = LightClient::new(prover.config(), workload.chain.headers());
        let baseline = client.verify(&address, &response).unwrap();

        let mut bytes = response.encode();
        let idx = victim_byte % bytes.len();
        bytes[idx] ^= xor;
        if let Ok(mutated) = decode_exact::<QueryResponse>(&bytes) {
            if let Ok(history) = client.verify(&address, &mutated) {
                // A mutation that survives both decode and verify must
                // be semantically identical (e.g. it hit a byte of a
                // transaction that still hashes correctly — impossible —
                // or an unused bloom bit... which the hash commitments
                // also forbid). Accept only exact equality.
                prop_assert_eq!(history, baseline);
            }
        }
    }
}
