//! Worker-pool tests under the readiness loop: a saturated
//! [`NodeServer`] must shed load with [`Message::Busy`] — never hang a
//! client, never close its connection, never emit a torn frame — and
//! its [`ServerStats`] books must agree with what clients observed.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use proptest::prelude::*;

use lvq::codec::{decode_exact, Encodable};
use lvq::node::{Handled, Message, NodeError, ServeNode, WireErrorCode};
use lvq::prelude::*;

/// A [`FullNode`] behind a gate: every request blocks inside the proof
/// worker until [`Gate::release`], so a test can pin all workers busy
/// and fill the dispatch queue deterministically instead of racing a
/// microsecond proof.
struct GatedNode {
    inner: FullNode,
    gate: Arc<Gate>,
}

struct Gate {
    released: Mutex<bool>,
    cvar: Condvar,
    /// Requests that have entered a proof worker (gauge of occupancy).
    entered: AtomicUsize,
}

impl Gate {
    fn new() -> Arc<Gate> {
        Arc::new(Gate {
            released: Mutex::new(false),
            cvar: Condvar::new(),
            entered: AtomicUsize::new(0),
        })
    }

    fn release(&self) {
        *self.released.lock().unwrap() = true;
        self.cvar.notify_all();
    }
}

impl ServeNode for GatedNode {
    fn handle_classified(&self, request: &[u8]) -> Handled {
        self.gate.entered.fetch_add(1, Ordering::SeqCst);
        let mut open = self.gate.released.lock().unwrap();
        while !*open {
            open = self.gate.cvar.wait(open).unwrap();
        }
        drop(open);
        self.inner.handle_classified(request)
    }
}

fn pool_server(workers: usize, queue: usize) -> (NodeServer<GatedNode>, Arc<Gate>, SchemeConfig) {
    let config = SchemeConfig::new(Scheme::Lvq, BloomParams::new(512, 2).unwrap(), 8).unwrap();
    let workload = WorkloadBuilder::new(config.chain_params())
        .blocks(8)
        .traffic(TrafficModel::tiny())
        .seed(3)
        .probe("1PoolProbe", 4, 4)
        .build()
        .unwrap();
    let gate = Gate::new();
    let node = GatedNode {
        inner: FullNode::new(workload.chain).unwrap(),
        gate: Arc::clone(&gate),
    };
    let server_config = ServerConfig::default()
        .with_workers(workers)
        .with_accept_queue(queue);
    let server = NodeServer::bind(Arc::new(node), "127.0.0.1:0", server_config).unwrap();
    (server, gate, config)
}

/// Polls `cond` until it holds or two seconds elapse.
fn wait_for(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(2);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Saturation: with every proof worker blocked inside a gated
    /// request and the dispatch queue full behind them, each further
    /// request receives exactly one well-formed `Busy` frame on a
    /// connection that *stays open* — and once the gate lifts, the
    /// queued requests are served and the shed clients succeed on the
    /// same socket. At the end, the server's request total equals the
    /// exchanges the clients observed succeeding, and its busy total
    /// the sheds.
    #[test]
    fn saturated_pool_sheds_busy_and_recovers(
        workers in 1usize..=3,
        queue in 1usize..=3,
        overflow in 1usize..=4,
    ) {
        let (server, gate, config) = pool_server(workers, queue);
        let addr = server.local_addr();
        let get_headers = Message::GetHeaders.encode();
        let mut served_exchanges = 0u64;

        let get_headers = get_headers.as_slice();
        let replies = std::thread::scope(|scope| -> Result<Vec<Vec<u8>>, NodeError> {
            // Occupy every worker, one at a time so each request has
            // transited the (possibly single-slot) dispatch queue into
            // a worker before the next arrives. `entered` confirms the
            // request is inside a worker, not waiting in the queue.
            let mut held = Vec::new();
            for occupied in 1..=workers {
                held.push(scope.spawn(move || -> Result<Vec<u8>, NodeError> {
                    let mut t = TcpTransport::connect(addr)?;
                    Ok(t.exchange(get_headers)?.0)
                }));
                wait_for("a worker to be occupied", || {
                    gate.entered.load(Ordering::SeqCst) == occupied
                });
            }

            // Fill the dispatch queue behind the blocked workers.
            let queued: Vec<_> = (0..queue)
                .map(|_| {
                    scope.spawn(move || -> Result<Vec<u8>, NodeError> {
                        let mut t = TcpTransport::connect(addr)?;
                        Ok(t.exchange(get_headers)?.0)
                    })
                })
                .collect();
            // `dispatched` counts hand-offs to the pool; with all
            // workers pinned at the gate, everything past the first
            // `workers` hand-offs is sitting in the dispatch queue.
            wait_for("dispatch queue to fill", || {
                server.stats().dispatched == (workers + queue) as u64
            });

            // Every further request is shed with one structured Busy
            // frame — and the connection stays open for later retries.
            let mut shed: Vec<TcpTransport> = Vec::new();
            for _ in 0..overflow {
                let mut t = TcpTransport::connect(addr).unwrap();
                let (reply, _) = t.exchange(get_headers).unwrap();
                assert!(matches!(
                    decode_exact::<Message>(&reply).unwrap(),
                    Message::Busy
                ));
                shed.push(t);
            }
            wait_for("sheds to be counted", || {
                server.stats().busy == overflow as u64
            });

            // Lift the gate: the held and queued requests complete.
            gate.release();
            let mut replies = Vec::new();
            for handle in held.into_iter().chain(queued) {
                replies.push(handle.join().expect("client thread")?);
            }

            // The shed connections were never closed: the same sockets
            // now get real answers.
            for t in &mut shed {
                replies.push(t.exchange(get_headers)?.0);
            }
            Ok(replies)
        });
        let replies = replies.expect("every gated client is eventually served");
        for reply in replies {
            prop_assert!(matches!(
                decode_exact::<Message>(&reply).unwrap(),
                Message::Headers(_)
            ));
            served_exchanges += 1;
        }

        // And an honest end-to-end session still verifies.
        let mut tcp = TcpTransport::connect(addr).unwrap();
        let mut light = LightNode::sync_from(&mut tcp, config).unwrap();
        let history = light
            .run(&QuerySpec::address(Address::new("1PoolProbe")), &mut tcp)
            .unwrap()
            .into_single();
        prop_assert_eq!(history.transactions.len(), 4);
        served_exchanges += 2;
        drop(tcp);

        let stats = server.shutdown();
        prop_assert_eq!(stats.requests, served_exchanges);
        prop_assert_eq!(stats.busy, overflow as u64);
        prop_assert_eq!(stats.errors, 0);
        prop_assert_eq!(stats.connections, (workers + queue + overflow + 1) as u64);
        prop_assert_eq!(stats.workers, workers as u64);
    }
}

#[test]
fn zero_deadline_turns_every_response_into_a_deadline_error() {
    let config = SchemeConfig::new(Scheme::Lvq, BloomParams::new(512, 2).unwrap(), 8).unwrap();
    let workload = WorkloadBuilder::new(config.chain_params())
        .blocks(8)
        .traffic(TrafficModel::tiny())
        .seed(3)
        .build()
        .unwrap();
    let full = Arc::new(FullNode::new(workload.chain).unwrap());
    let server_config = ServerConfig::default().with_request_deadline(Some(Duration::ZERO));
    let server = NodeServer::bind(full, "127.0.0.1:0", server_config).unwrap();

    // No response can beat a zero deadline, so the client receives a
    // small structured DeadlineExceeded error instead of the payload.
    let mut tcp = TcpTransport::connect(server.local_addr()).unwrap();
    match LightNode::sync_from(&mut tcp, config) {
        Err(NodeError::Server(e)) => assert_eq!(e.code, WireErrorCode::DeadlineExceeded),
        other => panic!("expected a deadline refusal, got {other:?}"),
    }
    drop(tcp);

    let stats = server.shutdown();
    assert_eq!(stats.deadline_misses, 1);
    assert_eq!(stats.requests, 0);
    assert_eq!(stats.errors, 1);
}
