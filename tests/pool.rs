//! Worker-pool tests: a saturated [`NodeServer`] must shed load with
//! [`Message::Busy`] — never hang a client, never emit a torn frame —
//! and its [`ServerStats`] books must agree with what clients observed.

use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use proptest::prelude::*;

use lvq::codec::{decode_exact, Encodable};
use lvq::node::{Message, NodeError, WireErrorCode};
use lvq::prelude::*;

fn pool_server(workers: usize, accept_queue: usize) -> (NodeServer, SchemeConfig, Address) {
    let config = SchemeConfig::new(Scheme::Lvq, BloomParams::new(512, 2).unwrap(), 8).unwrap();
    let workload = WorkloadBuilder::new(config.chain_params())
        .blocks(8)
        .traffic(TrafficModel::tiny())
        .seed(3)
        .probe("1PoolProbe", 4, 4)
        .build()
        .unwrap();
    let full = Arc::new(FullNode::new(workload.chain).unwrap());
    let server_config = ServerConfig {
        workers,
        accept_queue,
        ..ServerConfig::default()
    };
    let server = NodeServer::bind(full, "127.0.0.1:0", server_config).unwrap();
    (server, config, Address::new("1PoolProbe"))
}

/// Polls `cond` until it holds or two seconds elapse.
fn wait_for(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(2);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Saturation: with every worker owned by a held-open session and
    /// the accept queue full, each further client receives exactly one
    /// well-formed `Busy` frame — no hang, no torn frame — and once
    /// the held sessions leave, the queued clients are served. At the
    /// end, the server's request total equals the exchanges the
    /// clients observed succeeding, and its busy total the sheds.
    #[test]
    fn saturated_pool_sheds_busy_and_recovers(
        workers in 1usize..=3,
        queue in 1usize..=3,
        overflow in 1usize..=4,
    ) {
        let (server, config, address) = pool_server(workers, queue);
        let get_headers = Message::GetHeaders.encode();
        let mut served_exchanges = 0u64;

        // Occupy every worker with a session held open mid-stream. The
        // completed exchange proves the connection is owned by a
        // worker, not waiting in the queue.
        let mut held: Vec<TcpTransport> = Vec::new();
        for _ in 0..workers {
            let mut t = TcpTransport::connect(server.local_addr()).unwrap();
            let (reply, _) = t.exchange(&get_headers).unwrap();
            prop_assert!(matches!(
                decode_exact::<Message>(&reply).unwrap(),
                Message::Headers(_)
            ));
            served_exchanges += 1;
            held.push(t);
        }

        // Fill the accept queue: these connections are accepted but no
        // worker is free to serve them.
        let queued: Vec<TcpStream> = (0..queue)
            .map(|_| TcpStream::connect(server.local_addr()).unwrap())
            .collect();
        wait_for("queued connections to be accepted", || {
            server.stats().connections == (workers + queue) as u64
        });
        wait_for("queue high-water to reach capacity", || {
            server.stats().queue_highwater == queue as u64
        });

        // Every further client is shed with one structured Busy frame.
        for _ in 0..overflow {
            let mut t = TcpTransport::connect(server.local_addr()).unwrap();
            let (reply, _) = t.exchange(&get_headers).unwrap();
            prop_assert!(matches!(
                decode_exact::<Message>(&reply).unwrap(),
                Message::Busy
            ));
            // The shed connection is closed, not left dangling: a
            // further exchange fails (EOF, or a broken-pipe write,
            // depending on who notices the close first).
            prop_assert!(t.exchange(&get_headers).is_err());
        }
        wait_for("sheds to be counted", || {
            server.stats().busy == overflow as u64
        });

        // Release the workers; the queued clients get served after all.
        drop(held);
        for stream in queued {
            let mut t = TcpTransport::from_stream(stream);
            let (reply, _) = t.exchange(&get_headers).unwrap();
            prop_assert!(matches!(
                decode_exact::<Message>(&reply).unwrap(),
                Message::Headers(_)
            ));
            served_exchanges += 1;
        }

        // And an honest end-to-end session still verifies.
        let mut tcp = TcpTransport::connect(server.local_addr()).unwrap();
        let mut light = LightNode::sync_from(&mut tcp, config).unwrap();
        let history = light
            .run(&QuerySpec::address(address), &mut tcp)
            .unwrap()
            .into_single();
        prop_assert_eq!(history.transactions.len(), 4);
        served_exchanges += 2;
        drop(tcp);

        let stats = server.shutdown();
        prop_assert_eq!(stats.requests, served_exchanges);
        prop_assert_eq!(stats.busy, overflow as u64);
        prop_assert_eq!(stats.errors, 0);
        prop_assert_eq!(stats.connections, (workers + queue + overflow + 1) as u64);
        prop_assert_eq!(stats.workers, workers as u64);
    }
}

#[test]
fn zero_deadline_turns_every_response_into_a_deadline_error() {
    let config = SchemeConfig::new(Scheme::Lvq, BloomParams::new(512, 2).unwrap(), 8).unwrap();
    let workload = WorkloadBuilder::new(config.chain_params())
        .blocks(8)
        .traffic(TrafficModel::tiny())
        .seed(3)
        .build()
        .unwrap();
    let full = Arc::new(FullNode::new(workload.chain).unwrap());
    let server_config = ServerConfig {
        request_deadline: Some(Duration::ZERO),
        ..ServerConfig::default()
    };
    let server = NodeServer::bind(full, "127.0.0.1:0", server_config).unwrap();

    // No response can beat a zero deadline, so the client receives a
    // small structured DeadlineExceeded error instead of the payload.
    let mut tcp = TcpTransport::connect(server.local_addr()).unwrap();
    match LightNode::sync_from(&mut tcp, config) {
        Err(NodeError::Server(e)) => assert_eq!(e.code, WireErrorCode::DeadlineExceeded),
        other => panic!("expected a deadline refusal, got {other:?}"),
    }
    drop(tcp);

    let stats = server.shutdown();
    assert_eq!(stats.deadline_misses, 1);
    assert_eq!(stats.requests, 0);
    assert_eq!(stats.errors, 1);
}
