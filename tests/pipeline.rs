//! Protocol-negotiation and pipelining edge tests: v1↔v2 byte
//! identity, downgrade on the same connection, duplicate and unknown
//! request ids, and out-of-order response reassembly — over both the
//! in-process [`FullNode`] and a real [`NodeServer`] socket.

use std::io::Write as _;
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use proptest::prelude::*;

use lvq::codec::{decode_exact, Encodable};
use lvq::node::frame::{read_frame, write_frame, MAX_FRAME_LEN};
use lvq::node::{
    envelope, Handled, HelloInfo, Message, NodeError, ServeNode, WireError, WireErrorCode,
    PROTOCOL_VERSION,
};
use lvq::prelude::*;

/// A small chain with two four-transaction probe addresses.
fn test_node() -> (FullNode, SchemeConfig) {
    let config = SchemeConfig::new(Scheme::Lvq, BloomParams::new(512, 2).unwrap(), 8).unwrap();
    let workload = WorkloadBuilder::new(config.chain_params())
        .blocks(8)
        .traffic(TrafficModel::tiny())
        .seed(5)
        .probe("1Slow", 4, 4)
        .probe("1Quick", 4, 4)
        .build()
        .unwrap();
    (FullNode::new(workload.chain).unwrap(), config)
}

fn shared_node() -> &'static FullNode {
    static NODE: OnceLock<FullNode> = OnceLock::new();
    NODE.get_or_init(|| test_node().0)
}

/// Any well-formed v1 request a light client can send. Addresses mix
/// the workload's real probes with misses.
fn address_strategy() -> impl Strategy<Value = Address> {
    (0u32..6).prop_map(|n| match n {
        0 => Address::new("1Slow"),
        1 => Address::new("1Quick"),
        n => Address::new(format!("1Miss{n}").as_str()),
    })
}

fn request_strategy() -> impl Strategy<Value = Message> {
    prop_oneof![
        Just(Message::GetHeaders),
        (0u64..40).prop_map(|height| Message::GetHeadersFrom {
            height,
            tip_hash: Hash256::ZERO,
        }),
        address_strategy().prop_map(|address| Message::QueryRequest {
            address,
            range: None
        }),
        (address_strategy(), 1u64..8, 0u64..8).prop_map(|(address, lo, span)| {
            Message::QueryRequest {
                address,
                range: Some((lo, lo + span)),
            }
        }),
        proptest::collection::vec(address_strategy(), 1..4).prop_map(|addresses| {
            Message::BatchQueryRequest {
                addresses,
                range: None,
            }
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The tentpole identity: serving a request through the v2
    /// envelope produces byte-for-byte the v1 response under the same
    /// id — the envelope is a pure splice, never a re-encode.
    #[test]
    fn v2_exchange_is_v1_byte_identical_modulo_id(
        request in request_strategy(),
        id in 1u64..u64::MAX,
    ) {
        let full = shared_node();
        let v1 = request.encode();
        let v1_reply = full.handle(&v1).unwrap();
        let v2_reply = full.handle(&envelope::wrap_v2(&v1, id)).unwrap();
        prop_assert_eq!(v2_reply, envelope::wrap_v2(&v1_reply, id));
    }
}

/// Over a real socket: a v1 client and a negotiated v2 client receive
/// identical payload bytes from the same [`NodeServer`], with the v2
/// exchange metering exactly the envelope overhead on top.
#[test]
fn v1_and_v2_wire_exchanges_are_byte_identical() {
    let (full, _) = test_node();
    let full = Arc::new(full);
    let server =
        NodeServer::bind(Arc::clone(&full), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr();

    let mut v1 = TcpTransport::connect(addr).unwrap();
    let Negotiated::V2(mut v2) =
        PipelinedTcpTransport::negotiate(addr, TcpOptions::default(), 8).unwrap()
    else {
        panic!("a v2 server must acknowledge the Hello")
    };
    assert_eq!(v2.granted(), 8);

    let requests = [
        Message::GetHeaders,
        Message::QueryRequest {
            address: Address::new("1Quick"),
            range: None,
        },
        Message::BatchQueryRequest {
            addresses: vec![Address::new("1Quick"), Address::new("1Slow")],
            range: Some((1, 8)),
        },
    ];
    let overhead = (envelope::V2_HEAD - 1) as u64;
    for request in requests {
        let encoded = request.encode();
        let (v1_reply, v1_traffic) = v1.exchange(&encoded).unwrap();
        let (v2_reply, v2_traffic) = v2.exchange(&encoded).unwrap();
        // The server over TCP serves the very bytes the in-process
        // node produces, and v2 carries the same payload as v1.
        assert_eq!(v1_reply, full.handle(&encoded).unwrap());
        assert_eq!(v2_reply, v1_reply);
        assert_eq!(
            v2_traffic.request_bytes,
            v1_traffic.request_bytes + overhead
        );
        assert_eq!(
            v2_traffic.response_bytes,
            v1_traffic.response_bytes + overhead
        );
    }
    drop(v1);
    drop(v2);
    let stats = server.shutdown();
    assert_eq!(stats.errors, 0);
}

/// A v2 client dialing a v1-only server (emulated with a raw frame
/// loop that refuses the version byte exactly as the old server did)
/// downgrades on the same connection and completes a verified session
/// — through the [`SequentialPipeline`] shim, so pipelined callers
/// need no v1 code path of their own.
#[test]
fn v2_client_downgrades_against_a_v1_server_on_the_same_connection() {
    let (full, config) = test_node();
    let full = Arc::new(full);
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();

    let server_full = Arc::clone(&full);
    let server = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().unwrap();
        while let Ok(payload) = read_frame(&mut stream, MAX_FRAME_LEN) {
            let reply = if payload.first() == Some(&PROTOCOL_VERSION) {
                server_full
                    .handle(&payload)
                    .expect("well-formed v1 request")
            } else {
                // What a v1 server answers to an unknown version byte.
                Message::Error(WireError::with_detail(
                    WireErrorCode::UnsupportedVersion,
                    u64::from(payload.first().copied().unwrap_or(0)),
                ))
                .encode()
            };
            write_frame(&mut stream, &reply).unwrap();
        }
    });

    let negotiated = PipelinedTcpTransport::negotiate(addr, TcpOptions::default(), 8).unwrap();
    let Negotiated::V1(mut tcp) = negotiated else {
        panic!("a v1 refusal must downgrade, not error")
    };

    // The downgraded connection carries a full verified session.
    let mut light = LightNode::sync_from(&mut tcp, config).unwrap();
    let mut shim = SequentialPipeline::new(tcp);
    let specs = [
        QuerySpec::address(Address::new("1Quick")),
        QuerySpec::address(Address::new("1Slow")),
    ];
    let runs = light.run_pipelined(&specs, &mut shim).unwrap();
    assert_eq!(runs.len(), 2);
    for run in runs {
        assert_eq!(run.into_single().transactions.len(), 4);
    }
    drop(shim);
    server.join().unwrap();
}

/// Reusing an in-flight request id is refused with a structured
/// [`WireErrorCode::DuplicateRequestId`] under that id — the original
/// request still completes normally.
#[test]
fn duplicate_request_id_is_refused_with_a_structured_error() {
    let (full, _) = test_node();
    let server = NodeServer::bind(Arc::new(full), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();

    let hello = envelope::encode_v2(
        &Message::Hello(HelloInfo {
            max_in_flight: 4,
            features: 0,
        }),
        0,
    );
    write_frame(&mut stream, &hello).unwrap();
    let ack = read_frame(&mut stream, MAX_FRAME_LEN).unwrap();
    let (ack_id, ack_v1) = envelope::unwrap_v2(&ack).unwrap();
    assert_eq!(ack_id, 0);
    assert!(matches!(
        decode_exact::<Message>(&ack_v1).unwrap(),
        Message::HelloAck(_)
    ));

    // Both frames under id 7 in one write, so the second is parsed
    // while the first is still in flight.
    let request = envelope::wrap_v2(&Message::GetHeaders.encode(), 7);
    let mut burst = Vec::new();
    for _ in 0..2 {
        burst.extend_from_slice(&u32::try_from(request.len()).unwrap().to_le_bytes());
        burst.extend_from_slice(&request);
    }
    stream.write_all(&burst).unwrap();

    let mut replies = Vec::new();
    for _ in 0..2 {
        let reply = read_frame(&mut stream, MAX_FRAME_LEN).unwrap();
        let (id, v1) = envelope::unwrap_v2(&reply).unwrap();
        assert_eq!(id, 7);
        replies.push(decode_exact::<Message>(&v1).unwrap());
    }
    assert!(replies.iter().any(|m| matches!(m, Message::Headers(_))));
    assert!(replies.iter().any(|m| matches!(
        m,
        Message::Error(e) if e.code == WireErrorCode::DuplicateRequestId && e.detail == 7
    )));
    drop(stream);

    let stats = server.shutdown();
    assert_eq!(stats.requests, 1);
    assert_eq!(stats.errors, 1);
}

/// A response carrying an id the client never submitted surfaces as
/// [`NodeError::UnknownRequestId`] — a corrupt reply stream is never
/// silently matched to some other outstanding request.
#[test]
fn unknown_request_id_is_surfaced_to_the_client() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();

    let server = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().unwrap();
        // Ack the handshake honestly…
        let _hello = read_frame(&mut stream, MAX_FRAME_LEN).unwrap();
        let ack = envelope::encode_v2(
            &Message::HelloAck(HelloInfo {
                max_in_flight: 4,
                features: 0,
            }),
            0,
        );
        write_frame(&mut stream, &ack).unwrap();
        // …then answer the first request under a fabricated id.
        let _request = read_frame(&mut stream, MAX_FRAME_LEN).unwrap();
        let reply = envelope::wrap_v2(&Message::Busy.encode(), 999);
        write_frame(&mut stream, &reply).unwrap();
    });

    let Negotiated::V2(mut v2) =
        PipelinedTcpTransport::negotiate(addr, TcpOptions::default(), 4).unwrap()
    else {
        panic!("the fake server acks the Hello")
    };
    v2.submit(&Message::GetHeaders.encode()).unwrap();
    match v2.recv() {
        Err(NodeError::UnknownRequestId { id: 999 }) => {}
        other => panic!("expected an unknown-id fault, got {other:?}"),
    }
    drop(v2);
    server.join().unwrap();
}

/// A [`FullNode`] that stalls any request mentioning the `1Slow`
/// probe, forcing its response to finish after later requests.
struct SlowNode {
    inner: FullNode,
}

impl ServeNode for SlowNode {
    fn handle_classified(&self, request: &[u8]) -> Handled {
        if request.windows(5).any(|w| w == b"1Slow") {
            std::thread::sleep(Duration::from_millis(200));
        }
        self.inner.handle_classified(request)
    }
}

/// Out-of-order completion end to end: a slow proof submitted first
/// comes back last on the wire, and [`LightNode::run_pipelined`]
/// still returns verified results in spec order.
#[test]
fn out_of_order_responses_are_reassembled_in_spec_order() {
    let (full, config) = test_node();
    let node = Arc::new(SlowNode { inner: full });
    let server_config = ServerConfig::default().with_workers(2);
    let server = NodeServer::bind(node, "127.0.0.1:0", server_config).unwrap();
    let addr = server.local_addr();

    let Negotiated::V2(mut v2) =
        PipelinedTcpTransport::negotiate(addr, TcpOptions::default(), 4).unwrap()
    else {
        panic!("a v2 server must acknowledge the Hello")
    };

    // Raw arrival order: the slow request goes in first, comes out
    // last.
    let slow = Message::QueryRequest {
        address: Address::new("1Slow"),
        range: None,
    }
    .encode();
    let quick = Message::QueryRequest {
        address: Address::new("1Quick"),
        range: None,
    }
    .encode();
    let slow_id = v2.submit(&slow).unwrap();
    let quick_id = v2.submit(&quick).unwrap();
    let (first, _, _) = v2.recv().unwrap();
    let (second, _, _) = v2.recv().unwrap();
    assert_eq!(
        first, quick_id,
        "the quick proof must overtake the slow one"
    );
    assert_eq!(second, slow_id);

    // The high-level client reassembles into spec order regardless.
    let mut light = LightNode::sync_from(&mut v2, config).unwrap();
    let specs = [
        QuerySpec::address(Address::new("1Slow")),
        QuerySpec::address(Address::new("1Quick")),
        QuerySpec::address(Address::new("1Quick")),
    ];
    let runs = light.run_pipelined(&specs, &mut v2).unwrap();
    assert_eq!(runs.len(), 3);
    for run in runs {
        assert_eq!(run.into_single().transactions.len(), 4);
    }
    drop(v2);

    let stats = server.shutdown();
    assert_eq!(stats.errors, 0);
    assert!(stats.pipelined_depth_highwater >= 2);
}
