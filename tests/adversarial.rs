//! Security tests (paper §VI): every forgery a malicious full node can
//! attempt against a light client must be rejected. Each test mutates an
//! honest response in one specific way and checks the verifier's
//! verdict — including the one *documented gap*: the strawman cannot
//! detect omitted transactions (Challenge 3).

use lvq::core::{BlockFragment, ExistenceProof, QueryError, QueryResponse, SegmentedResponse};
use lvq::merkle::bmt::BmtProofNode;
use lvq::merkle::{BmtProof, SmtProofKind};
use lvq::prelude::*;

/// A workload where `Addr4`-class probes give blocks with multiple
/// matching transactions.
fn workload_for(scheme: Scheme) -> Workload {
    let config = SchemeConfig::new(scheme, BloomParams::new(640, 2).unwrap(), 16).unwrap();
    WorkloadBuilder::new(config.chain_params())
        .blocks(32)
        .traffic(TrafficModel::tiny())
        .seed(1234)
        .probe("1VictimAddress", 8, 4) // multiple txs in some blocks
        .build()
        .unwrap()
}

struct Scenario {
    workload: Workload,
    address: Address,
    response: QueryResponse,
    client: LightClient,
}

fn scenario(scheme: Scheme) -> Scenario {
    let workload = workload_for(scheme);
    let address = workload.probes[0].address.clone();
    let prover = Prover::from_chain(&workload.chain).unwrap();
    let (response, _) = prover.respond(&address).unwrap();
    let client = LightClient::new(prover.config(), workload.chain.headers());
    // Sanity: the honest response verifies.
    client.verify(&address, &response).unwrap();
    Scenario {
        workload,
        address,
        response,
        client,
    }
}

fn as_segmented(response: &mut QueryResponse) -> &mut SegmentedResponse {
    match response {
        QueryResponse::Segmented(s) => s,
        QueryResponse::PerBlock(_) => panic!("expected a segmented response"),
    }
}

/// Finds the first existence fragment in a segmented response.
fn first_existence(segmented: &mut SegmentedResponse) -> &mut ExistenceProof {
    for bundle in &mut segmented.segments {
        for (_, fragment) in &mut bundle.fragments {
            if let BlockFragment::Existence(proof) = fragment {
                return proof;
            }
        }
    }
    panic!("no existence fragment in response");
}

// --- (a) omitting a matching transaction -----------------------------

#[test]
fn lvq_rejects_omitted_transaction() {
    let mut s = scenario(Scheme::Lvq);
    let existence = first_existence(as_segmented(&mut s.response));
    existence.transactions.pop();
    let err = s.client.verify(&s.address, &s.response).unwrap_err();
    assert!(
        matches!(err, QueryError::CountMismatch { .. }),
        "smt count pins the transaction count: {err}"
    );
}

#[test]
fn strawman_cannot_detect_omission_but_flags_it() {
    // The documented gap (Challenge 3): the strawman accepts the
    // censored history — but the client reports CorrectnessOnly, so a
    // caller knows the balance cannot be trusted.
    let mut s = scenario(Scheme::Strawman);
    let QueryResponse::PerBlock(per_block) = &mut s.response else {
        panic!("strawman responses are per-block");
    };
    let censored = per_block
        .entries
        .iter_mut()
        .find_map(|entry| match &mut entry.fragment {
            BlockFragment::MerkleBranches(txs) if txs.len() > 1 => Some(txs),
            _ => None,
        })
        .expect("victim has a block with several transactions");
    censored.pop();

    let truth = s.workload.chain.history_of(&s.address).len();
    let history = s.client.verify(&s.address, &s.response).unwrap();
    assert_eq!(history.completeness, Completeness::CorrectnessOnly);
    assert!(history.transactions.len() < truth, "omission went through");
}

// --- (b) forging an SMT count ----------------------------------------

#[test]
fn forged_smt_count_rejected() {
    let mut s = scenario(Scheme::Lvq);
    let existence = first_existence(as_segmented(&mut s.response));
    let SmtProofKind::Present(branch) = existence.smt.kind() else {
        panic!("existence proofs carry presence branches");
    };
    let forged_branch = lvq::merkle::SmtBranch::from_parts(
        branch.index(),
        branch.key().to_vec(),
        branch.value() - 1, // claim one fewer appearance
        branch.siblings().to_vec(),
    );
    existence.smt = SmtProof::from_parts(
        existence.smt.leaf_count(),
        SmtProofKind::Present(forged_branch),
    );
    existence.transactions.pop();
    let err = s.client.verify(&s.address, &s.response).unwrap_err();
    assert!(
        matches!(
            err,
            QueryError::Smt {
                source: lvq::merkle::SmtError::CommitmentMismatch,
                ..
            }
        ),
        "hash commitment pins the count: {err}"
    );
}

// --- (c) tampering a BMT node's filter --------------------------------

#[test]
fn tampered_bmt_filter_rejected() {
    let mut s = scenario(Scheme::Lvq);
    let segmented = as_segmented(&mut s.response);
    let bundle = &mut segmented.segments[0];

    fn poison(node: &BmtProofNode) -> BmtProofNode {
        match node {
            BmtProofNode::CleanLeaf { filter } => {
                let mut f = filter.clone();
                f.insert(b"poison");
                BmtProofNode::CleanLeaf { filter: f }
            }
            BmtProofNode::CleanNode {
                filter,
                left_hash,
                right_hash,
            } => {
                let mut f = filter.clone();
                f.insert(b"poison");
                BmtProofNode::CleanNode {
                    filter: f,
                    left_hash: *left_hash,
                    right_hash: *right_hash,
                }
            }
            BmtProofNode::FailedLeaf { filter } => BmtProofNode::FailedLeaf {
                filter: filter.clone(),
            },
            BmtProofNode::Branch { left, right } => BmtProofNode::Branch {
                left: Box::new(poison(left)),
                right: right.clone(),
            },
        }
    }
    bundle.proof = BmtProof::from_root(poison(bundle.proof.root()));
    let err = s.client.verify(&s.address, &s.response).unwrap_err();
    assert!(matches!(err, QueryError::Bmt { .. }), "{err}");
}

// --- (d) claiming a matching block is clean ---------------------------

#[test]
fn hiding_a_failed_leaf_as_clean_rejected() {
    let mut s = scenario(Scheme::Lvq);
    let segmented = as_segmented(&mut s.response);

    fn whitewash(node: &BmtProofNode) -> BmtProofNode {
        match node {
            BmtProofNode::FailedLeaf { filter } => BmtProofNode::CleanLeaf {
                filter: filter.clone(),
            },
            BmtProofNode::Branch { left, right } => BmtProofNode::Branch {
                left: Box::new(whitewash(left)),
                right: Box::new(whitewash(right)),
            },
            other => other.clone(),
        }
    }
    for bundle in &mut segmented.segments {
        bundle.proof = BmtProof::from_root(whitewash(bundle.proof.root()));
        bundle.fragments.clear();
    }
    let err = s.client.verify(&s.address, &s.response).unwrap_err();
    assert!(
        matches!(
            err,
            QueryError::Bmt {
                source: lvq::merkle::BmtError::NotClean,
                ..
            }
        ),
        "the committed filter itself betrays the lie: {err}"
    );
}

// --- (e) dropping a block's fragment -----------------------------------

#[test]
fn dropped_fragment_rejected() {
    let mut s = scenario(Scheme::Lvq);
    let segmented = as_segmented(&mut s.response);
    let bundle = segmented
        .segments
        .iter_mut()
        .find(|b| !b.fragments.is_empty())
        .expect("victim appears somewhere");
    bundle.fragments.remove(0);
    let err = s.client.verify(&s.address, &s.response).unwrap_err();
    assert_eq!(err, QueryError::FragmentSetMismatch);
}

#[test]
fn per_block_empty_for_matching_block_rejected() {
    let mut s = scenario(Scheme::LvqWithoutBmt);
    let QueryResponse::PerBlock(per_block) = &mut s.response else {
        panic!("per-block scheme");
    };
    let entry = per_block
        .entries
        .iter_mut()
        .find(|e| matches!(e.fragment, BlockFragment::Existence(_)))
        .expect("victim appears somewhere");
    entry.fragment = BlockFragment::Empty;
    let err = s.client.verify(&s.address, &s.response).unwrap_err();
    assert!(matches!(err, QueryError::UnexpectedFragment { .. }));
}

// --- (f) truncating the response ---------------------------------------

#[test]
fn truncated_segments_rejected() {
    let mut s = scenario(Scheme::Lvq);
    as_segmented(&mut s.response).segments.pop();
    let err = s.client.verify(&s.address, &s.response).unwrap_err();
    assert_eq!(err, QueryError::SegmentMismatch);
}

#[test]
fn truncated_per_block_entries_rejected() {
    let mut s = scenario(Scheme::Strawman);
    let QueryResponse::PerBlock(per_block) = &mut s.response else {
        panic!("per-block scheme");
    };
    per_block.entries.pop();
    let err = s.client.verify(&s.address, &s.response).unwrap_err();
    assert!(matches!(err, QueryError::WrongEntryCount { .. }));
}

// --- (g) replacing existence with absence ------------------------------

#[test]
fn absence_proof_for_present_address_rejected() {
    let mut s = scenario(Scheme::Lvq);
    // Build a *valid* presence SMT proof and mislabel it as absence: the
    // verifier must notice the proof itself shows presence.
    let heights = s.workload.probes[0].block_heights.clone();
    let block = s.workload.chain.block(heights[0]).unwrap();
    let smt = block.address_smt().unwrap();
    let presence = smt.prove(s.address.as_bytes());

    let segmented = as_segmented(&mut s.response);
    'outer: for bundle in &mut segmented.segments {
        for (height, fragment) in &mut bundle.fragments {
            if *height == heights[0] {
                *fragment = BlockFragment::AbsenceSmt(presence.clone());
                break 'outer;
            }
        }
    }
    let err = s.client.verify(&s.address, &s.response).unwrap_err();
    assert!(
        matches!(
            err,
            QueryError::UnexpectedFragment { .. } | QueryError::Smt { .. }
        ),
        "{err}"
    );
}

// --- (h) substituting another block ------------------------------------

#[test]
fn integral_block_from_wrong_height_rejected() {
    let mut s = scenario(Scheme::LvqWithoutSmt);
    let segmented = as_segmented(&mut s.response);
    // Replace some integral block with the block from height 1.
    let substitute = (*s.workload.chain.block(1).unwrap()).clone();
    let mut replaced = false;
    for bundle in &mut segmented.segments {
        for (height, fragment) in &mut bundle.fragments {
            if *height != 1 && matches!(fragment, BlockFragment::IntegralBlock(_)) {
                *fragment = BlockFragment::IntegralBlock(Box::new(substitute.clone()));
                replaced = true;
            }
        }
    }
    assert!(replaced, "no-SMT responses carry integral blocks");
    let err = s.client.verify(&s.address, &s.response).unwrap_err();
    assert!(matches!(err, QueryError::BlockHeaderMismatch { .. }));
}

// --- (i) padding a count with a duplicated transaction ------------------

#[test]
fn duplicated_transaction_rejected() {
    let mut s = scenario(Scheme::Lvq);
    let existence = first_existence(as_segmented(&mut s.response));
    if existence.transactions.len() < 2 {
        // Fall back: duplicate the only transaction and bump nothing —
        // count check fires first, which is also a rejection.
        existence
            .transactions
            .push(existence.transactions[0].clone());
        let err = s.client.verify(&s.address, &s.response).unwrap_err();
        assert!(matches!(
            err,
            QueryError::CountMismatch { .. } | QueryError::DuplicateTransaction { .. }
        ));
        return;
    }
    // Replace the second transaction with a copy of the first: the
    // count matches but the Merkle slots collide.
    existence.transactions[1] = existence.transactions[0].clone();
    let err = s.client.verify(&s.address, &s.response).unwrap_err();
    assert!(
        matches!(err, QueryError::DuplicateTransaction { .. }),
        "{err}"
    );
}

// --- (j) cross-address response replay ----------------------------------

#[test]
fn response_for_another_address_rejected() {
    let s = scenario(Scheme::Lvq);
    let prover = Prover::from_chain(&s.workload.chain).unwrap();
    let (other_response, _) = prover.respond(&Address::new("1SomebodyElse")).unwrap();
    // The victim address *is* on chain; a response proving the history
    // of an absent address cannot satisfy the victim's bit positions.
    let err = s.client.verify(&s.address, &other_response).unwrap_err();
    assert!(matches!(
        err,
        QueryError::Bmt { .. } | QueryError::FragmentSetMismatch | QueryError::Smt { .. }
    ));
}

// --- (k) batch forgeries ------------------------------------------------

struct BatchScenario {
    addresses: Vec<Address>,
    response: lvq::core::BatchQueryResponse,
    client: LightClient,
}

fn batch_scenario() -> BatchScenario {
    let workload = workload_for(Scheme::Lvq);
    let addresses = vec![
        workload.probes[0].address.clone(),
        Address::new("1SecondVictim"), // absent: empty sections
    ];
    let prover = Prover::from_chain(&workload.chain).unwrap();
    let (response, _) = prover.respond_batch(&addresses).unwrap();
    let client = LightClient::new(prover.config(), workload.chain.headers());
    // Sanity: the honest batch verifies.
    client.verify_batch(&addresses, &response).unwrap();
    BatchScenario {
        addresses,
        response,
        client,
    }
}

fn as_batch_segmented(
    response: &mut lvq::core::BatchQueryResponse,
) -> &mut lvq::core::BatchSegmentedResponse {
    match response {
        lvq::core::BatchQueryResponse::Segmented(s) => s,
        lvq::core::BatchQueryResponse::PerBlock(_) => panic!("expected a segmented batch"),
    }
}

#[test]
fn batch_dropped_address_section_rejected() {
    // Serving one fewer fragment section than there are addresses must
    // fail before any per-address interpretation happens.
    let mut s = batch_scenario();
    as_batch_segmented(&mut s.response).segments[0]
        .sections
        .pop();
    let err = s
        .client
        .verify_batch(&s.addresses, &s.response)
        .unwrap_err();
    assert!(
        matches!(err, QueryError::SectionCountMismatch { .. }),
        "{err}"
    );
}

#[test]
fn batch_emptied_address_section_rejected() {
    // Keeping the section count but censoring one address's fragments:
    // the shared proof's failed leaves for that address go unanswered.
    let mut s = batch_scenario();
    let segmented = as_batch_segmented(&mut s.response);
    let section = segmented
        .segments
        .iter_mut()
        .flat_map(|b| b.sections.iter_mut())
        .find(|section| !section.is_empty())
        .expect("victim appears somewhere");
    section.clear();
    let err = s
        .client
        .verify_batch(&s.addresses, &s.response)
        .unwrap_err();
    assert_eq!(err, QueryError::FragmentSetMismatch);
}

#[test]
fn batch_cross_address_splice_rejected() {
    // Swapping two addresses' sections inside a bundle: the absent
    // address suddenly "owns" fragments while the present one has none.
    // Both sides of the swap violate the proof's per-address coverage.
    let mut s = batch_scenario();
    let segmented = as_batch_segmented(&mut s.response);
    let bundle = segmented
        .segments
        .iter_mut()
        .find(|b| b.sections.iter().any(|section| !section.is_empty()))
        .expect("victim appears somewhere");
    bundle.sections.swap(0, 1);
    let err = s
        .client
        .verify_batch(&s.addresses, &s.response)
        .unwrap_err();
    assert_eq!(err, QueryError::FragmentSetMismatch);
}

#[test]
fn batch_single_response_splice_rejected() {
    // Splicing a *single-address* proof bundle for one address into the
    // batch (replacing the shared batch proof wholesale) cannot work:
    // the batch verifier re-derives every address's coverage from the
    // batch proof itself, and a single-address descent does not carry
    // the other addresses' evidence.
    let s = batch_scenario();
    let workload = workload_for(Scheme::Lvq);
    let prover = Prover::from_chain(&workload.chain).unwrap();
    // An honest batch for [absent, victim] — i.e. the right addresses in
    // the wrong order — must not verify for [victim, absent].
    let reversed: Vec<Address> = s.addresses.iter().rev().cloned().collect();
    let (reversed_response, _) = prover.respond_batch(&reversed).unwrap();
    let err = s
        .client
        .verify_batch(&s.addresses, &reversed_response)
        .unwrap_err();
    assert!(
        matches!(
            err,
            QueryError::FragmentSetMismatch | QueryError::Bmt { .. } | QueryError::Smt { .. }
        ),
        "{err}"
    );
}
