//! Quickstart: build a small LVQ chain, run one verifiable query over
//! the simulated wire, and inspect what crossed it.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use lvq::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Configure full LVQ: 1 KB Bloom filters, two hash functions,
    //    segments of 8 blocks (the paper's M, scaled down).
    let config = SchemeConfig::new(Scheme::Lvq, BloomParams::new(1_000, 2)?, 8)?;

    // 2. Build a 16-block chain. Alice receives coins in blocks 3 and 11.
    let alice = Address::new("1AliceQuickstart");
    let mut builder = ChainBuilder::new(config.chain_params())?;
    for height in 1..=16u32 {
        let mut txs = vec![Transaction::coinbase(Address::new("1Miner"), 50, height)];
        if height == 3 || height == 11 {
            txs.push(Transaction::coinbase(alice.clone(), 7, 1_000 + height));
        }
        builder.push_block(txs)?;
    }
    let chain = builder.finish();
    chain.validate()?;

    // 3. Stand up a full node and a header-only light node.
    let full = FullNode::new(chain)?;
    let mut peer = LocalTransport::new(&full);
    let mut light = LightNode::sync_from(&mut peer, config)?;
    println!(
        "light node stores {} bytes of headers for {} blocks",
        light.client().storage_bytes(),
        light.client().tip_height(),
    );

    // 4. Query and verify Alice's history.
    let run = light.run(&QuerySpec::address(alice), &mut peer)?;
    let history = &run.histories[0];
    println!(
        "verified history: {} transactions, balance {} satoshi, completeness {:?}",
        history.transactions.len(),
        history.balance.net(),
        history.completeness,
    );
    for (height, tx) in &history.transactions {
        println!("  block {height}: txid {}", tx.txid());
    }

    // 5. The communication cost — the quantity the paper's evaluation
    //    is about.
    println!(
        "wire traffic: {} request bytes, {} response bytes",
        run.traffic.request_bytes, run.traffic.response_bytes,
    );
    let estimate = BandwidthModel::mobile().transfer_time(run.traffic.total());
    println!("estimated transfer on a mobile link: {estimate:?}");

    assert_eq!(history.balance.net(), 14);
    assert_eq!(history.completeness, Completeness::Complete);
    Ok(())
}
