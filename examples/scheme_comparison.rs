//! Side-by-side comparison of the four schemes on one ledger — a
//! miniature of the paper's Fig. 12 plus the storage story of
//! Challenge 1, runnable in a couple of seconds.
//!
//! ```text
//! cargo run --release --example scheme_comparison
//! ```

use lvq::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let blocks = 128u64;
    println!("one ledger, {blocks} blocks, four commitment schemes\n");
    println!(
        "{:<14} {:>9} {:>14} {:>14} {:>14}",
        "scheme", "hdr B/blk", "absent addr", "light addr", "busy addr"
    );

    for scheme in Scheme::ALL {
        // Per the paper §VII-B: 10 KB-class filters for per-block
        // schemes, 30 KB-class and M = chain length for BMT schemes
        // (scaled 1:16 like the small experiment scale).
        let bf = if scheme.is_per_block() { 640 } else { 1_920 };
        let config = SchemeConfig::new(scheme, BloomParams::new(bf, 2)?, blocks)?;

        // Same seed => byte-identical transaction stream per scheme.
        let workload = WorkloadBuilder::new(config.chain_params())
            .blocks(blocks)
            .traffic(TrafficModel::tiny())
            .seed(7)
            .probe("1AbsentAddr", 0, 0)
            .probe("1LightAddr", 3, 2)
            .probe("1BusyAddr", 60, 40)
            .build()?;

        let full = FullNode::new(workload.chain)?;
        let mut peer = LocalTransport::new(&full);
        let mut light = LightNode::sync_from(&mut peer, config)?;
        let header_bytes = light.client().storage_bytes() / blocks;

        let mut sizes = Vec::new();
        for probe in &workload.probes {
            let run = light.run(&QuerySpec::address(probe.address.clone()), &mut peer)?;
            sizes.push(run.traffic.response_bytes);
        }
        println!(
            "{:<14} {:>9} {:>12} B {:>12} B {:>12} B",
            scheme.name(),
            header_bytes,
            sizes[0],
            sizes[1],
            sizes[2]
        );
    }

    println!(
        "\nreading guide (paper Fig. 12): the strawman pays one filter per block\n\
         even for an absent address; BMT collapses that to a handful of endpoint\n\
         filters; SMT keeps busy addresses cheap where w/o-SMT ships whole blocks."
    );
    Ok(())
}
