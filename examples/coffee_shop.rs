//! The paper's §I motivating scenario: a coffee shop owner runs a light
//! node on a phone and wants to check — *before* handing over the
//! coffee — that a customer's address really has the balance the
//! customer claims, even though the only reachable full node may lie.
//!
//! The example runs the query twice: once against an honest full node,
//! and once against a malicious one that hides the customer's spending
//! history (which would inflate the apparent balance). LVQ's
//! completeness verification catches the manipulation.
//!
//! ```text
//! cargo run --example coffee_shop
//! ```

use lvq::core::{QueryError, QueryResponse};
use lvq::node::{Message, NodeError};
use lvq::prelude::*;

/// A wrapper around an honest full node that censors one block's
/// fragment from every segmented response — the "hide the spend"
/// attack.
struct CensoringFullNode {
    inner: FullNode,
    censor_height: u64,
}

impl CensoringFullNode {
    fn handle(&self, request: &[u8]) -> Result<Vec<u8>, NodeError> {
        let reply = self.inner.handle(request)?;
        let message: Message = lvq::codec::decode_exact(&reply)?;
        let Message::QueryResponse(mut response) = message else {
            return Ok(reply);
        };
        if let QueryResponse::Segmented(segmented) = response.as_mut() {
            for bundle in &mut segmented.segments {
                bundle.fragments.retain(|(h, _)| *h != self.censor_height);
            }
        }
        Ok(Message::QueryResponse(response).encode())
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = SchemeConfig::new(Scheme::Lvq, BloomParams::new(1_000, 2)?, 8)?;
    let customer = Address::new("1SuspiciousCustomer");
    let _shop = Address::new("1CoffeeShop");

    // Chain history: the customer receives 100, then spends 95 in
    // block 9 — leaving only 5 satoshi.
    let mut builder = ChainBuilder::new(config.chain_params())?;
    for height in 1..=16u32 {
        let mut txs = vec![Transaction::coinbase(Address::new("1Miner"), 50, height)];
        if height == 4 {
            txs.push(Transaction::coinbase(customer.clone(), 100, 9_000));
        }
        if height == 9 {
            txs.push(Transaction {
                version: 1,
                inputs: vec![TxInput {
                    prev_out: TxOutPoint {
                        txid: Hash256::hash(b"funding"),
                        vout: 0,
                    },
                    address: customer.clone(),
                    value: 95,
                }],
                outputs: vec![TxOutput {
                    address: Address::new("1SomebodyElse"),
                    value: 95,
                }],
                lock_time: 0,
            });
        }
        builder.push_block(txs)?;
    }
    let full = FullNode::new(builder.finish())?;
    let mut peer = LocalTransport::new(&full);

    // --- Honest full node -------------------------------------------
    let mut light = LightNode::sync_from(&mut peer, config)?;
    let run = light.run(&QuerySpec::address(customer.clone()), &mut peer)?;
    let history = &run.histories[0];
    println!(
        "honest node: balance = {} satoshi ({} transactions, {:?})",
        history.balance.net(),
        history.transactions.len(),
        history.completeness,
    );
    assert_eq!(history.balance.net(), 5);
    println!("=> the shop owner sees the customer cannot afford a 50-satoshi coffee\n");

    // --- Malicious full node: hide the spend in block 9 --------------
    let malicious = CensoringFullNode {
        inner: full,
        censor_height: 9,
    };
    let client = LightClient::new(config, {
        // The shop already has the headers from the honest sync.
        malicious.inner.chain().headers()
    });
    let request = Message::QueryRequest {
        address: customer.clone(),
        range: None,
    }
    .encode();
    let reply = malicious.handle(&request)?;
    let Message::QueryResponse(response) = lvq::codec::decode_exact(&reply)? else {
        unreachable!("full node answers queries with responses");
    };
    match client.verify(&customer, &response) {
        Ok(history) => {
            println!(
                "!! censored history accepted with balance {} — completeness is broken",
                history.balance.net()
            );
            let _ = history;
            unreachable!("LVQ must reject the censored response");
        }
        Err(err) => {
            println!("malicious node rejected: {err}");
            assert!(matches!(err, QueryError::FragmentSetMismatch));
            println!(
                "=> the BMT proof pins block 9 as a failed leaf; omitting its fragment is detected"
            );
        }
    }
    Ok(())
}
