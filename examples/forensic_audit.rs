//! Behaviour analysis over a verified history (paper §II-B): an auditor
//! with only a light node reconstructs the complete activity profile of
//! a busy address — transaction frequency, in/out volumes, counterparty
//! fan-out — and can *prove* the profile is complete, because LVQ's
//! inexistence proofs rule out hidden transactions.
//!
//! ```text
//! cargo run --example forensic_audit
//! ```

use std::collections::BTreeSet;

use lvq::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 64-block chain with a busy "exchange-like" probe: 40
    // transactions across 24 blocks, plus realistic background traffic.
    let config = SchemeConfig::new(Scheme::Lvq, BloomParams::new(1_920, 2)?, 64)?;
    let workload = WorkloadBuilder::new(config.chain_params())
        .blocks(64)
        .traffic(TrafficModel::tiny())
        .seed(2026)
        .probe("1ExchangeHotWallet", 40, 24)
        .build()?;
    let exchange = workload.probes[0].address.clone();

    let full = FullNode::new(workload.chain)?;
    let mut peer = LocalTransport::new(&full);
    let mut light = LightNode::sync_from(&mut peer, config)?;
    let run = light.run(&QuerySpec::address(exchange.clone()), &mut peer)?;
    let history = &run.histories[0];
    assert_eq!(history.completeness, Completeness::Complete);

    println!("forensic profile of {exchange}");
    println!(
        "  verified transactions : {} (provably complete)",
        history.transactions.len()
    );

    // Activity timeline: blocks touched and the longest quiet gap.
    let heights: Vec<u64> = history.transactions.iter().map(|(h, _)| *h).collect();
    let active: BTreeSet<u64> = heights.iter().copied().collect();
    let longest_gap = active
        .iter()
        .zip(active.iter().skip(1))
        .map(|(a, b)| b - a)
        .max()
        .unwrap_or(0);
    println!(
        "  active blocks          : {} of 64 (longest gap {} blocks)",
        active.len(),
        longest_gap
    );

    // Flow analysis (paper Eq. 1, split by direction).
    println!(
        "  received / spent       : {} / {} satoshi (net {})",
        history.balance.received,
        history.balance.spent,
        history.balance.net()
    );

    // Counterparty fan-out — the kind of signal used to label an
    // address as an exchange or mining pool (§II-B).
    let mut counterparties: BTreeSet<Address> = BTreeSet::new();
    for (_, tx) in &history.transactions {
        for addr in tx.addresses() {
            if addr != &exchange {
                counterparties.insert(addr.clone());
            }
        }
    }
    println!("  distinct counterparties: {}", counterparties.len());
    let intensity = history.transactions.len() as f64 / active.len().max(1) as f64;
    let label = if counterparties.len() >= 20 && intensity >= 1.2 {
        "exchange-like (many counterparties, bursty)"
    } else if intensity > 1.5 {
        "batching service"
    } else {
        "personal wallet"
    };
    println!("  heuristic label        : {label}");

    println!(
        "\nproof cost: {} response bytes for the complete profile",
        run.traffic.response_bytes
    );
    Ok(())
}
