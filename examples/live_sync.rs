//! A growing chain: the full node keeps mining (via
//! `ChainBuilder::resume`), the light node follows by appending
//! verified headers, and every new block is immediately queryable with
//! completeness guarantees — including verifiable range queries over
//! just the new blocks.
//!
//! ```text
//! cargo run --example live_sync
//! ```

use lvq::prelude::*;

fn mine_blocks(
    chain: Chain,
    from: u32,
    to: u32,
    merchant: &Address,
) -> Result<Chain, Box<dyn std::error::Error>> {
    let mut builder = ChainBuilder::resume(chain)?;
    for h in from..=to {
        let mut txs = vec![Transaction::coinbase(Address::new("1Miner"), 50, h)];
        if h % 4 == 0 {
            txs.push(Transaction::coinbase(
                merchant.clone(),
                u64::from(h),
                9_000 + h,
            ));
        }
        builder.push_block(txs)?;
    }
    Ok(builder.finish())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = SchemeConfig::new(Scheme::Lvq, BloomParams::new(512, 2)?, 16)?;
    let merchant = Address::new("1Merchant");

    // Epoch 1: the chain reaches height 16.
    let genesis = ChainBuilder::new(config.chain_params())?.finish();
    let chain = mine_blocks(genesis, 1, 16, &merchant)?;
    let mut client = LightClient::new(config, chain.headers());
    client.validate_header_chain()?;
    println!("light node synced to height {}", client.tip_height());

    // Epoch 2: twelve more blocks arrive; the light node appends only
    // the new headers (it never re-downloads).
    let chain = mine_blocks(chain, 17, 28, &merchant)?;
    let new_headers: Vec<BlockHeader> = chain.headers()[16..].to_vec();
    client.append_headers(new_headers)?;
    println!("appended 12 headers, tip now {}", client.tip_height());

    // Query only the new range: blocks 17..=28.
    let prover = Prover::new(&chain, config)?;
    let (response, _) = prover.respond_range(&merchant, 17, 28)?;
    let fresh = client.verify_range(&merchant, 17, 28, &response)?;
    println!(
        "new-range history: {} transactions, {} response bytes",
        fresh.transactions.len(),
        response.total_bytes()
    );
    assert_eq!(
        fresh
            .transactions
            .iter()
            .map(|(h, _)| *h)
            .collect::<Vec<_>>(),
        vec![20, 24, 28]
    );

    // And the full history still verifies over the grown chain.
    let (full_response, _) = prover.respond(&merchant)?;
    let all = client.verify(&merchant, &full_response)?;
    assert_eq!(all.transactions.len(), 7); // heights 4,8,12,16,20,24,28
    assert_eq!(all.completeness, Completeness::Complete);
    println!(
        "full history: {} transactions, balance {} satoshi — complete",
        all.transactions.len(),
        all.balance.net()
    );
    Ok(())
}
