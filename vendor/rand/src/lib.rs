//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so the workspace
//! vendors the small slice of the rand 0.8 API it actually uses:
//! [`rngs::StdRng`] (a deterministic xoshiro256** generator seeded via
//! SplitMix64), the [`Rng`]/[`SeedableRng`] traits with `gen`,
//! `gen_range`, `gen_bool` and `fill_bytes`, and
//! [`seq::index::sample`]. Streams are deterministic under a fixed
//! seed (the workloads' only requirement) but are **not** bit-equal to
//! upstream rand's ChaCha-based `StdRng`.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Types that can be produced uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn draw(rng: &mut impl RngCore) -> Self;
}

/// The minimal core-generator interface.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with uniformly distributed bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    ///
    /// Panics if the range is empty, matching rand 0.8.
    fn sample_single(self, rng: &mut impl RngCore) -> T;
}

/// The user-facing generator interface (subset of rand 0.8's `Rng`).
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// Panics unless `0 ≤ p ≤ 1`, matching rand 0.8.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        f64::draw(self) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Seedable generators (subset of rand 0.8's `SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic stand-in for rand's `StdRng`: xoshiro256**
    /// seeded through SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion (Vigna): decorrelates nearby seeds.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256** (Blackman & Vigna, public domain reference).
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

macro_rules! impl_int_standard {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw(rng: &mut impl RngCore) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_int_standard!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn draw(rng: &mut impl RngCore) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for bool {
    fn draw(rng: &mut impl RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw(rng: &mut impl RngCore) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw(rng: &mut impl RngCore) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Numeric types [`Rng::gen_range`] can draw uniformly.
///
/// Generic (rather than per-type `SampleRange` impls) so that integer
/// literals in a range expression unify with the type demanded by the
/// call site, matching upstream rand's inference behaviour.
pub trait SampleUniform: Copy + PartialOrd {
    /// `hi - lo` widened to `u64` (requires `lo <= hi`).
    fn span_to(self, hi: Self) -> u64;

    /// `self + delta` (delta fits by construction).
    fn offset(self, delta: u64) -> Self;

    /// Reinterprets 64 uniform bits as `Self` (full-width draw).
    fn from_bits(bits: u64) -> Self;

    /// The type's minimum value.
    const MIN_VALUE: Self;

    /// The type's maximum value.
    const MAX_VALUE: Self;
}

macro_rules! impl_sample_uniform {
    ($(($t:ty, $u:ty)),*) => {$(
        impl SampleUniform for $t {
            fn span_to(self, hi: Self) -> u64 {
                (hi as $u).wrapping_sub(self as $u) as u64
            }

            fn offset(self, delta: u64) -> Self {
                self.wrapping_add(delta as $t)
            }

            fn from_bits(bits: u64) -> Self {
                bits as $t
            }

            const MIN_VALUE: Self = <$t>::MIN;
            const MAX_VALUE: Self = <$t>::MAX;
        }
    )*};
}
impl_sample_uniform!(
    (u8, u8),
    (u16, u16),
    (u32, u32),
    (u64, u64),
    (usize, usize),
    (i8, u8),
    (i16, u16),
    (i32, u32),
    (i64, u64),
    (isize, usize)
);

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single(self, rng: &mut impl RngCore) -> T {
        assert!(self.start < self.end, "gen_range on empty range");
        let span = self.start.span_to(self.end);
        self.start.offset(uniform_u64(rng, span))
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single(self, rng: &mut impl RngCore) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range on empty range");
        if lo.span_to(hi) == u64::MAX || (lo == T::MIN_VALUE && hi == T::MAX_VALUE) {
            return T::from_bits(rng.next_u64());
        }
        let span = lo.span_to(hi) + 1;
        lo.offset(uniform_u64(rng, span))
    }
}

/// Unbiased draw from `0..span` by rejection (Lemire-style threshold).
fn uniform_u64(rng: &mut impl RngCore, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    /// Index sampling (subset of `rand::seq::index`).
    pub mod index {
        use crate::{Rng, RngCore};

        /// A set of sampled indices.
        #[derive(Debug, Clone)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            /// The sampled indices as a vector.
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }

            /// Iterates over the sampled indices.
            pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
                self.0.iter().copied()
            }
        }

        impl IntoIterator for IndexVec {
            type Item = usize;
            type IntoIter = std::vec::IntoIter<usize>;
            fn into_iter(self) -> Self::IntoIter {
                self.0.into_iter()
            }
        }

        /// Samples `amount` distinct indices from `0..length`
        /// (partial Fisher–Yates, uniform without replacement).
        ///
        /// Panics if `amount > length`, matching rand 0.8.
        pub fn sample(rng: &mut impl RngCore, length: usize, amount: usize) -> IndexVec {
            assert!(
                amount <= length,
                "cannot sample {amount} indices from {length}"
            );
            let mut pool: Vec<usize> = (0..length).collect();
            let mut out = Vec::with_capacity(amount);
            for i in 0..amount {
                let j = rng.gen_range(i..length);
                pool.swap(i, j);
                out.push(pool[i]);
            }
            IndexVec(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(3usize..=3);
            assert_eq!(w, 3);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn sample_is_distinct_and_in_range() {
        let mut rng = StdRng::seed_from_u64(4);
        let picked = super::seq::index::sample(&mut rng, 50, 20).into_vec();
        assert_eq!(picked.len(), 20);
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 20, "indices must be distinct");
        assert!(picked.iter().all(|&i| i < 50));
    }
}
