//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind parking_lot's non-poisoning
//! API (`lock()` returns the guard directly). Poisoning is resolved
//! by ignoring it — a panicking critical section aborts the test that
//! caused it anyway, and the data is plain-old-data in this workspace.

#![forbid(unsafe_code)]

use std::sync::{self, TryLockError};

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual exclusion primitive (non-poisoning `lock`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock (non-poisoning `read`/`write`).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let _held = m.lock();
        assert!(m.try_lock().is_none());
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(String::from("a"));
        l.write().push('b');
        assert_eq!(&*l.read(), "ab");
    }
}
