//! Offline placeholder for the `serde` crate.
//!
//! The workspace's `serde` cargo features are optional and disabled by
//! default; this placeholder exists only so dependency resolution
//! succeeds without registry access. It intentionally provides **no**
//! derive macros: enabling a `serde` feature of a workspace crate in
//! this offline environment is a compile error by design, pointing
//! here.

#![forbid(unsafe_code)]
