//! Offline stand-in for the `criterion` crate.
//!
//! Provides just enough of criterion's API for the workspace's
//! `harness = false` benches to compile and produce useful numbers:
//! groups, `bench_function`, `iter`/`iter_batched`, throughput labels,
//! and the `criterion_group!`/`criterion_main!` macros. Measurement is
//! a fixed-iteration median-of-samples wall-clock estimate — fine for
//! order-of-magnitude comparisons, not statistically rigorous.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-exported identity function mirroring `criterion::black_box`.
///
/// The compiler may still constant-fold through it; acceptable for the
/// coarse measurements this stub produces.
pub fn black_box<T>(x: T) -> T {
    x
}

/// How batched inputs are sized (accepted, not acted on).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration setup output.
    SmallInput,
    /// Large per-iteration setup output.
    LargeInput,
}

/// Throughput annotation for a benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// The top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the default number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function(&mut self, name: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        let sample_size = self.sample_size;
        self.benchmark_group("ungrouped")
            .with_sample_size(sample_size)
            .bench_function(name, f);
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    fn with_sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Sets the number of samples for subsequent benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Times one benchmark and prints a one-line summary.
    pub fn bench_function(&mut self, name: impl Into<String>, mut f: impl FnMut(&mut Bencher)) {
        let name = name.into();
        let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size.max(1) {
            let mut bencher = Bencher {
                elapsed: Duration::ZERO,
                iters: 0,
            };
            f(&mut bencher);
            if bencher.iters > 0 {
                samples.push(bencher.elapsed / bencher.iters);
            }
        }
        samples.sort_unstable();
        let median = samples
            .get(samples.len() / 2)
            .copied()
            .unwrap_or(Duration::ZERO);
        let label = match self.throughput {
            Some(Throughput::Bytes(b)) if median > Duration::ZERO => {
                let rate = b as f64 / median.as_secs_f64() / (1 << 20) as f64;
                format!("  ({rate:.1} MiB/s)")
            }
            Some(Throughput::Elements(e)) if median > Duration::ZERO => {
                let rate = e as f64 / median.as_secs_f64();
                format!("  ({rate:.0} elem/s)")
            }
            _ => String::new(),
        };
        println!("{}/{name}: median {median:?}{label}", self.name);
    }

    /// Ends the group (prints nothing extra; provided for API parity).
    pub fn finish(self) {}
}

/// The per-benchmark timing handle.
pub struct Bencher {
    elapsed: Duration,
    iters: u32,
}

/// Iterations per timing sample: small enough that workload-scale
/// benches finish, large enough to absorb clock granularity.
const ITERS_PER_SAMPLE: u32 = 3;

impl Bencher {
    /// Times repeated runs of `routine`.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..ITERS_PER_SAMPLE {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iters += ITERS_PER_SAMPLE;
    }

    /// Times `routine` over fresh inputs from `setup`, excluding setup
    /// time.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        for _ in 0..ITERS_PER_SAMPLE {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
            self.iters += 1;
        }
    }
}

/// Declares a benchmark group runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("stub");
        group.sample_size(2);
        group.throughput(Throughput::Bytes(1024));
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(2);
        targets = sample_bench
    }

    #[test]
    fn harness_runs() {
        benches();
    }
}
