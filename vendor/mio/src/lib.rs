//! Offline stand-in for [mio](https://docs.rs/mio): a minimal readiness
//! API over raw file descriptors.
//!
//! This build environment has no registry access, so — exactly like the
//! `vendor/crossbeam` stand-in — this crate provides only the surface
//! the workspace actually uses:
//!
//! - [`Poll`]: level-triggered readiness over a set of registered file
//!   descriptors. Backed by `epoll(7)` on Linux (O(ready) wakeups, the
//!   whole point at C10K) and by `poll(2)` on other unix platforms
//!   (O(registered), correct but slower — fine for CI portability).
//! - [`Waker`]: wakes a [`Poll::poll`] call from another thread, backed
//!   by an `eventfd(2)` on Linux and a self-pipe elsewhere.
//! - [`rlimit`]: query and raise `RLIMIT_NOFILE`, so experiments that
//!   open tens of thousands of sockets can lift the soft limit toward
//!   the hard limit instead of failing with `EMFILE`.
//!
//! All `unsafe` in the workspace lives here: the serving crates forbid
//! `unsafe_code`, and this crate confines it to hand-written bindings
//! for a handful of libc symbols (libc is already linked by `std`).
//!
//! The API is deliberately mio-shaped ([`Token`], [`Interest`],
//! [`Events`], `register`/`reregister`/`deregister`) so a future swap
//! to the real crate is mechanical, but it takes [`RawFd`] instead of
//! `&mut impl Source`: the callers own plain `std::net` sockets.

#![warn(missing_docs)]

use std::io;
use std::os::raw::{c_int, c_uint, c_void};
use std::os::unix::io::RawFd;
use std::time::Duration;

#[cfg(not(unix))]
compile_error!("the vendored mio stand-in supports unix platforms only");

/// Caller-chosen identifier attached to a registered file descriptor;
/// readiness [`Event`]s carry it back.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Token(pub usize);

/// Which readiness to watch for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest(u8);

impl Interest {
    /// Watch for readability.
    pub const READABLE: Interest = Interest(0b01);
    /// Watch for writability.
    pub const WRITABLE: Interest = Interest(0b10);

    /// Combines two interests (`READABLE.add(WRITABLE)`).
    #[must_use]
    pub const fn add(self, other: Interest) -> Interest {
        Interest(self.0 | other.0)
    }

    /// Does this interest include readability?
    pub const fn is_readable(self) -> bool {
        self.0 & Self::READABLE.0 != 0
    }

    /// Does this interest include writability?
    pub const fn is_writable(self) -> bool {
        self.0 & Self::WRITABLE.0 != 0
    }
}

/// One readiness event delivered by [`Poll::poll`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    token: Token,
    readable: bool,
    writable: bool,
    error: bool,
}

impl Event {
    /// The token the ready descriptor was registered with.
    pub fn token(&self) -> Token {
        self.token
    }

    /// Ready to read (includes peer hangup, which reads as EOF).
    pub fn is_readable(&self) -> bool {
        self.readable
    }

    /// Ready to write.
    pub fn is_writable(&self) -> bool {
        self.writable
    }

    /// An error condition was signalled (`EPOLLERR`); reading from the
    /// descriptor surfaces the concrete error.
    pub fn is_error(&self) -> bool {
        self.error
    }
}

/// Reusable buffer of readiness events.
#[derive(Debug)]
pub struct Events {
    inner: Vec<Event>,
    capacity: usize,
}

impl Events {
    /// A buffer that delivers at most `capacity` events per poll.
    pub fn with_capacity(capacity: usize) -> Events {
        Events {
            inner: Vec::with_capacity(capacity),
            capacity: capacity.max(1),
        }
    }

    /// Iterates over the events delivered by the last poll.
    pub fn iter(&self) -> std::slice::Iter<'_, Event> {
        self.inner.iter()
    }

    /// Were any events delivered by the last poll?
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

impl<'a> IntoIterator for &'a Events {
    type Item = &'a Event;
    type IntoIter = std::slice::Iter<'a, Event>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.iter()
    }
}

fn last_err() -> io::Error {
    io::Error::last_os_error()
}

/// Milliseconds for epoll_wait/poll: `None` blocks forever; sub-ms
/// timeouts round up so a short timeout never busy-spins.
fn timeout_ms(timeout: Option<Duration>) -> c_int {
    match timeout {
        None => -1,
        Some(d) => {
            let ms = d.as_millis();
            let ms = if ms == 0 && d.as_nanos() > 0 { 1 } else { ms };
            c_int::try_from(ms).unwrap_or(c_int::MAX)
        }
    }
}

// ---------------------------------------------------------------------
// Linux backend: epoll + eventfd.
// ---------------------------------------------------------------------

#[cfg(target_os = "linux")]
mod sys {
    use super::*;

    const EPOLL_CLOEXEC: c_int = 0x80000;
    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLLIN: u32 = 0x1;
    const EPOLLOUT: u32 = 0x4;
    const EPOLLERR: u32 = 0x8;
    const EPOLLHUP: u32 = 0x10;
    const EPOLLRDHUP: u32 = 0x2000;
    const EFD_NONBLOCK: c_int = 0x800;
    const EFD_CLOEXEC: c_int = 0x80000;

    /// `struct epoll_event`; packed on x86-64, where the kernel ABI has
    /// no padding between the 32-bit mask and the 64-bit data word.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    }

    /// Readiness selector backed by one epoll instance.
    #[derive(Debug)]
    pub struct Selector {
        epfd: c_int,
    }

    // The epoll fd is used from the poll loop and (via Waker
    // registration) at setup time only; epoll_ctl/epoll_wait are
    // thread-safe on one instance.
    unsafe impl Send for Selector {}
    unsafe impl Sync for Selector {}

    impl Selector {
        pub fn new() -> io::Result<Selector> {
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(last_err());
            }
            Ok(Selector { epfd })
        }

        fn ctl(&self, op: c_int, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
            let mut mask = EPOLLERR | EPOLLHUP | EPOLLRDHUP;
            if interest.is_readable() {
                mask |= EPOLLIN;
            }
            if interest.is_writable() {
                mask |= EPOLLOUT;
            }
            let mut ev = EpollEvent {
                events: mask,
                data: token.0 as u64,
            };
            let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) };
            if rc < 0 {
                return Err(last_err());
            }
            Ok(())
        }

        pub fn register(&self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, interest)
        }

        pub fn reregister(&self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, interest)
        }

        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            let mut ev = EpollEvent { events: 0, data: 0 };
            let rc = unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut ev) };
            if rc < 0 {
                return Err(last_err());
            }
            Ok(())
        }

        pub fn poll(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
            events.inner.clear();
            let mut buf = vec![EpollEvent { events: 0, data: 0 }; events.capacity];
            let n = unsafe {
                epoll_wait(
                    self.epfd,
                    buf.as_mut_ptr(),
                    events.capacity as c_int,
                    timeout_ms(timeout),
                )
            };
            if n < 0 {
                let e = last_err();
                // A signal interrupted the wait: report an empty set and
                // let the caller loop.
                if e.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(e);
            }
            for raw in buf.iter().take(n as usize) {
                let mask = raw.events;
                events.inner.push(Event {
                    token: Token(raw.data as usize),
                    readable: mask & (EPOLLIN | EPOLLHUP | EPOLLRDHUP) != 0,
                    writable: mask & EPOLLOUT != 0,
                    error: mask & EPOLLERR != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Selector {
        fn drop(&mut self) {
            unsafe { close(self.epfd) };
        }
    }

    /// A waker fd pair; on Linux both ends are the same eventfd.
    pub fn waker_fds() -> io::Result<(RawFd, RawFd)> {
        let fd = unsafe { eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC) };
        if fd < 0 {
            return Err(last_err());
        }
        Ok((fd, fd))
    }

    pub const WAKER_SHARED_FD: bool = true;
}

// ---------------------------------------------------------------------
// Portable unix backend: poll(2) + self-pipe.
// ---------------------------------------------------------------------

#[cfg(all(unix, not(target_os = "linux")))]
mod sys {
    use super::*;
    use std::sync::Mutex;

    const POLLIN: i16 = 0x1;
    const POLLOUT: i16 = 0x4;
    const POLLERR: i16 = 0x8;
    const POLLHUP: i16 = 0x10;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: c_int,
        events: i16,
        revents: i16,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: c_uint, timeout: c_int) -> c_int;
        fn pipe(fds: *mut c_int) -> c_int;
        fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
    }

    /// Readiness selector that re-builds a pollfd array per call from
    /// the registered set. O(registered) per wakeup — portability
    /// fallback, not the C10K path.
    #[derive(Debug)]
    pub struct Selector {
        registered: Mutex<Vec<(RawFd, Token, Interest)>>,
    }

    impl Selector {
        pub fn new() -> io::Result<Selector> {
            Ok(Selector {
                registered: Mutex::new(Vec::new()),
            })
        }

        pub fn register(&self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
            let mut reg = self.registered.lock().unwrap();
            if reg.iter().any(|&(f, _, _)| f == fd) {
                return Err(io::Error::from(io::ErrorKind::AlreadyExists));
            }
            reg.push((fd, token, interest));
            Ok(())
        }

        pub fn reregister(&self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
            let mut reg = self.registered.lock().unwrap();
            match reg.iter_mut().find(|(f, _, _)| *f == fd) {
                Some(slot) => {
                    *slot = (fd, token, interest);
                    Ok(())
                }
                None => Err(io::Error::from(io::ErrorKind::NotFound)),
            }
        }

        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            let mut reg = self.registered.lock().unwrap();
            let before = reg.len();
            reg.retain(|&(f, _, _)| f != fd);
            if reg.len() == before {
                return Err(io::Error::from(io::ErrorKind::NotFound));
            }
            Ok(())
        }

        pub fn poll(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
            events.inner.clear();
            let snapshot: Vec<(RawFd, Token, Interest)> = self.registered.lock().unwrap().clone();
            let mut fds: Vec<PollFd> = snapshot
                .iter()
                .map(|&(fd, _, interest)| PollFd {
                    fd,
                    events: (if interest.is_readable() { POLLIN } else { 0 })
                        | (if interest.is_writable() { POLLOUT } else { 0 }),
                    revents: 0,
                })
                .collect();
            let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_uint, timeout_ms(timeout)) };
            if n < 0 {
                let e = last_err();
                if e.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(e);
            }
            for (pfd, &(_, token, _)) in fds.iter().zip(snapshot.iter()) {
                if pfd.revents == 0 {
                    continue;
                }
                events.inner.push(Event {
                    token,
                    readable: pfd.revents & (POLLIN | POLLHUP) != 0,
                    writable: pfd.revents & POLLOUT != 0,
                    error: pfd.revents & POLLERR != 0,
                });
                if events.inner.len() == events.capacity {
                    break;
                }
            }
            Ok(())
        }
    }

    /// A waker fd pair: (read end registered with the poll, write end
    /// woken from other threads).
    pub fn waker_fds() -> io::Result<(RawFd, RawFd)> {
        const F_SETFL: c_int = 4;
        const O_NONBLOCK: c_int = 0x4; // BSD/macOS value
        let mut fds = [0 as c_int; 2];
        if unsafe { pipe(fds.as_mut_ptr()) } < 0 {
            return Err(last_err());
        }
        for fd in fds {
            if unsafe { fcntl(fd, F_SETFL, O_NONBLOCK) } < 0 {
                let e = last_err();
                unsafe {
                    close(fds[0]);
                    close(fds[1]);
                }
                return Err(e);
            }
        }
        Ok((fds[0], fds[1]))
    }

    pub const WAKER_SHARED_FD: bool = false;
}

extern "C" {
    fn close(fd: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
}

/// Level-triggered readiness over registered file descriptors.
///
/// Registration takes raw fds (`AsRawFd::as_raw_fd`); the caller keeps
/// owning and eventually closing the descriptor, and must [`Poll::deregister`]
/// it before closing.
#[derive(Debug)]
pub struct Poll {
    selector: sys::Selector,
}

impl Poll {
    /// Creates a new selector.
    ///
    /// # Errors
    ///
    /// Propagates the OS error from `epoll_create1`.
    pub fn new() -> io::Result<Poll> {
        Ok(Poll {
            selector: sys::Selector::new()?,
        })
    }

    /// Starts watching `fd` with `interest`; events carry `token`.
    ///
    /// # Errors
    ///
    /// Propagates the OS error (e.g. `EEXIST` for a double register).
    pub fn register(&self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        self.selector.register(fd, token, interest)
    }

    /// Changes the interest or token of a registered `fd`.
    ///
    /// # Errors
    ///
    /// Propagates the OS error (e.g. `ENOENT` if never registered).
    pub fn reregister(&self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        self.selector.reregister(fd, token, interest)
    }

    /// Stops watching `fd`. Call before closing the descriptor.
    ///
    /// # Errors
    ///
    /// Propagates the OS error.
    pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
        self.selector.deregister(fd)
    }

    /// Blocks until at least one registered descriptor is ready or the
    /// timeout expires (`None` blocks indefinitely), filling `events`.
    /// An interrupted wait (`EINTR`) returns an empty set, not an error.
    ///
    /// # Errors
    ///
    /// Propagates the OS error from the underlying wait.
    pub fn poll(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
        self.selector.poll(events, timeout)
    }
}

/// Wakes a [`Poll::poll`] call from another thread.
///
/// Registered with the poll at construction; when woken, the poll
/// delivers a readable [`Event`] with the waker's token. The owner of
/// the poll loop should call [`Waker::drain`] on that event so
/// level-triggered polling does not spin.
#[derive(Debug)]
pub struct Waker {
    read_fd: RawFd,
    write_fd: RawFd,
}

impl Waker {
    /// Creates a waker and registers it with `poll` under `token`.
    ///
    /// # Errors
    ///
    /// Propagates the OS error from eventfd/pipe creation or
    /// registration.
    pub fn new(poll: &Poll, token: Token) -> io::Result<Waker> {
        let (read_fd, write_fd) = sys::waker_fds()?;
        if let Err(e) = poll.register(read_fd, token, Interest::READABLE) {
            unsafe {
                close(read_fd);
                if !sys::WAKER_SHARED_FD {
                    close(write_fd);
                }
            }
            return Err(e);
        }
        Ok(Waker { read_fd, write_fd })
    }

    /// Wakes the poll. Safe to call from any thread, any number of
    /// times; wakeups coalesce.
    ///
    /// # Errors
    ///
    /// Propagates the OS error from the underlying write (a full pipe
    /// counts as success: the poll is already pending wakeup).
    pub fn wake(&self) -> io::Result<()> {
        let one: u64 = 1;
        let rc = unsafe {
            write(
                self.write_fd,
                std::ptr::addr_of!(one).cast::<c_void>(),
                std::mem::size_of::<u64>(),
            )
        };
        if rc < 0 {
            let e = last_err();
            if e.kind() == io::ErrorKind::WouldBlock {
                return Ok(());
            }
            return Err(e);
        }
        Ok(())
    }

    /// Drains pending wakeups so a level-triggered poll stops reporting
    /// the waker readable. Call from the poll loop when the waker's
    /// token fires.
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        loop {
            let rc = unsafe { read(self.read_fd, buf.as_mut_ptr().cast::<c_void>(), buf.len()) };
            if rc <= 0 {
                return;
            }
        }
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        unsafe {
            close(self.read_fd);
            if !sys::WAKER_SHARED_FD {
                close(self.write_fd);
            }
        }
    }
}

// Both fds outlive the struct and writes/reads are atomic at these
// sizes; sharing across threads is the entire purpose.
unsafe impl Send for Waker {}
unsafe impl Sync for Waker {}

/// Query and raise `RLIMIT_NOFILE`, for experiments that open tens of
/// thousands of sockets in one process.
pub mod rlimit {
    use super::{c_int, last_err};
    use std::io;

    const RLIMIT_NOFILE: c_int = if cfg!(target_os = "linux") { 7 } else { 8 };

    #[repr(C)]
    struct Rlimit {
        cur: u64,
        max: u64,
    }

    extern "C" {
        fn getrlimit(resource: c_int, rlim: *mut Rlimit) -> c_int;
        fn setrlimit(resource: c_int, rlim: *const Rlimit) -> c_int;
    }

    /// The current `(soft, hard)` open-file limits.
    ///
    /// # Errors
    ///
    /// Propagates the OS error from `getrlimit`.
    pub fn nofile() -> io::Result<(u64, u64)> {
        let mut lim = Rlimit { cur: 0, max: 0 };
        if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } < 0 {
            return Err(last_err());
        }
        Ok((lim.cur, lim.max))
    }

    /// Raises the soft open-file limit to `min(target, hard)` and
    /// returns the resulting soft limit. Never lowers it.
    ///
    /// # Errors
    ///
    /// Propagates the OS error from `getrlimit`/`setrlimit`.
    pub fn raise_nofile(target: u64) -> io::Result<u64> {
        let (soft, hard) = nofile()?;
        let want = target.min(hard);
        if want <= soft {
            return Ok(soft);
        }
        let lim = Rlimit {
            cur: want,
            max: hard,
        };
        if unsafe { setrlimit(RLIMIT_NOFILE, &lim) } < 0 {
            return Err(last_err());
        }
        Ok(want)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    const LISTENER: Token = Token(0);
    const CLIENT: Token = Token(1);
    const WAKER: Token = Token(9);

    #[test]
    fn accept_read_write_readiness_round_trip() {
        let poll = Poll::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        poll.register(listener.as_raw_fd(), LISTENER, Interest::READABLE)
            .unwrap();

        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();

        // The pending accept makes the listener readable.
        let mut events = Events::with_capacity(8);
        let mut accepted = None;
        for _ in 0..50 {
            poll.poll(&mut events, Some(Duration::from_millis(100)))
                .unwrap();
            if events
                .iter()
                .any(|e| e.token() == LISTENER && e.is_readable())
            {
                let (stream, _) = listener.accept().unwrap();
                stream.set_nonblocking(true).unwrap();
                accepted = Some(stream);
                break;
            }
        }
        let mut served = accepted.expect("listener never became readable");

        // Data from the client makes the accepted socket readable.
        poll.register(
            served.as_raw_fd(),
            CLIENT,
            Interest::READABLE.add(Interest::WRITABLE),
        )
        .unwrap();
        client.write_all(b"ping").unwrap();
        let mut got = Vec::new();
        for _ in 0..50 {
            poll.poll(&mut events, Some(Duration::from_millis(100)))
                .unwrap();
            for e in &events {
                if e.token() == CLIENT && e.is_readable() {
                    let mut buf = [0u8; 16];
                    let n = served.read(&mut buf).unwrap();
                    got.extend_from_slice(&buf[..n]);
                }
            }
            if !got.is_empty() {
                break;
            }
        }
        assert_eq!(got, b"ping");

        // An idle socket with WRITABLE interest reports writable.
        assert!(events
            .iter()
            .any(|e| e.token() == CLIENT && e.is_writable()));

        poll.deregister(served.as_raw_fd()).unwrap();
        poll.deregister(listener.as_raw_fd()).unwrap();
    }

    #[test]
    fn waker_wakes_a_blocked_poll_and_drains() {
        let poll = Poll::new().unwrap();
        let waker = std::sync::Arc::new(Waker::new(&poll, WAKER).unwrap());

        let remote = std::sync::Arc::clone(&waker);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            remote.wake().unwrap();
            remote.wake().unwrap(); // wakeups coalesce
        });

        let mut events = Events::with_capacity(4);
        poll.poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token() == WAKER && e.is_readable()));
        handle.join().unwrap();
        waker.drain();

        // Drained: a short subsequent poll times out empty.
        poll.poll(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(events.is_empty());
    }

    #[test]
    fn nofile_limits_are_sane_and_raisable() {
        let (soft, hard) = rlimit::nofile().unwrap();
        assert!(soft > 0 && hard >= soft);
        // Raising to the current soft limit is a no-op that succeeds.
        assert_eq!(rlimit::raise_nofile(soft).unwrap(), soft);
    }
}
