//! Offline stand-in for the `crossbeam` crate.
//!
//! Only scoped threads are needed here, and `std::thread::scope`
//! (stable since Rust 1.63) provides the same borrow-friendly
//! semantics, so this stub delegates to it behind crossbeam's module
//! layout. Unlike crossbeam's `scope`, panics in spawned threads
//! propagate when the scope joins rather than being collected into a
//! `Result` — `scope` therefore returns the closure's value directly.

#![forbid(unsafe_code)]

/// Scoped thread support.
pub mod thread {
    pub use std::thread::{Scope, ScopedJoinHandle};

    /// Runs `f` with a scope in which borrowed-data threads can be
    /// spawned; joins them all before returning.
    pub fn scope<'env, F, T>(f: F) -> T
    where
        F: for<'scope> FnOnce(&'scope Scope<'scope, 'env>) -> T,
    {
        std::thread::scope(f)
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = crate::thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| s.spawn(move || chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(total, 10);
    }
}
