//! Offline stand-in for the `crossbeam` crate.
//!
//! Two pieces of crossbeam's surface are needed here, both rebuilt on
//! `std` so the workspace builds with no registry access:
//!
//! * [`thread::scope`] — `std::thread::scope` (stable since Rust 1.63)
//!   provides the same borrow-friendly semantics behind crossbeam's
//!   module layout. Unlike crossbeam's `scope`, panics in spawned
//!   threads propagate when the scope joins rather than being collected
//!   into a `Result` — `scope` therefore returns the closure's value
//!   directly.
//! * [`channel::bounded`] — a bounded MPMC queue on a
//!   `Mutex<VecDeque>` plus two `Condvar`s, with the subset of
//!   crossbeam-channel's API the workspace uses (`send`, `try_send`,
//!   `recv_timeout`, `try_recv`, `len`, disconnect detection). A
//!   capacity of zero is not a rendezvous channel here; it is rounded
//!   up to one.

#![forbid(unsafe_code)]

/// Scoped thread support.
pub mod thread {
    pub use std::thread::{Scope, ScopedJoinHandle};

    /// Runs `f` with a scope in which borrowed-data threads can be
    /// spawned; joins them all before returning.
    pub fn scope<'env, F, T>(f: F) -> T
    where
        F: for<'scope> FnOnce(&'scope Scope<'scope, 'env>) -> T,
    {
        std::thread::scope(f)
    }
}

/// Bounded multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    /// The error of [`Sender::try_send`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is at capacity; the value is handed back.
        Full(T),
        /// Every receiver is gone; the value is handed back.
        Disconnected(T),
    }

    /// The error of [`Sender::send`]: every receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// The error of [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Nothing arrived before the deadline.
        Timeout,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    /// The error of [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    struct Inner<T> {
        queue: Mutex<Shared<T>>,
        not_empty: Condvar,
        not_full: Condvar,
        capacity: usize,
    }

    struct Shared<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// The sending half of a bounded channel. Cloning adds a producer.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// The receiving half of a bounded channel. Cloning adds a consumer.
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// Creates a bounded channel holding at most `capacity` queued
    /// items (a capacity of zero is rounded up to one; rendezvous
    /// semantics are not provided by this stand-in).
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(Shared {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues without blocking, failing if the channel is full or
        /// every receiver is gone.
        ///
        /// # Errors
        ///
        /// [`TrySendError::Full`] / [`TrySendError::Disconnected`],
        /// returning the value either way.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut shared = self.inner.queue.lock().expect("channel lock");
            if shared.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if shared.items.len() >= self.inner.capacity {
                return Err(TrySendError::Full(value));
            }
            shared.items.push_back(value);
            drop(shared);
            self.inner.not_empty.notify_one();
            Ok(())
        }

        /// Enqueues, blocking while the channel is full.
        ///
        /// # Errors
        ///
        /// [`SendError`] if every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut shared = self.inner.queue.lock().expect("channel lock");
            loop {
                if shared.receivers == 0 {
                    return Err(SendError(value));
                }
                if shared.items.len() < self.inner.capacity {
                    shared.items.push_back(value);
                    drop(shared);
                    self.inner.not_empty.notify_one();
                    return Ok(());
                }
                shared = self
                    .inner
                    .not_full
                    .wait(shared)
                    .expect("channel lock poisoned");
            }
        }

        /// Number of items currently queued.
        pub fn len(&self) -> usize {
            self.inner.queue.lock().expect("channel lock").items.len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues without blocking.
        ///
        /// # Errors
        ///
        /// [`TryRecvError::Empty`] / [`TryRecvError::Disconnected`].
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut shared = self.inner.queue.lock().expect("channel lock");
            match shared.items.pop_front() {
                Some(value) => {
                    drop(shared);
                    self.inner.not_full.notify_one();
                    Ok(value)
                }
                None if shared.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Dequeues, blocking up to `timeout`.
        ///
        /// # Errors
        ///
        /// [`RecvTimeoutError::Timeout`] /
        /// [`RecvTimeoutError::Disconnected`].
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut shared = self.inner.queue.lock().expect("channel lock");
            loop {
                if let Some(value) = shared.items.pop_front() {
                    drop(shared);
                    self.inner.not_full.notify_one();
                    return Ok(value);
                }
                if shared.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, result) = self
                    .inner
                    .not_empty
                    .wait_timeout(shared, remaining)
                    .expect("channel lock poisoned");
                shared = guard;
                if result.timed_out() && shared.items.is_empty() {
                    return if shared.senders == 0 {
                        Err(RecvTimeoutError::Disconnected)
                    } else {
                        Err(RecvTimeoutError::Timeout)
                    };
                }
            }
        }

        /// Number of items currently queued.
        pub fn len(&self) -> usize {
            self.inner.queue.lock().expect("channel lock").items.len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.queue.lock().expect("channel lock").senders += 1;
            Sender {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.queue.lock().expect("channel lock").receivers += 1;
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut shared = self.inner.queue.lock().expect("channel lock");
            shared.senders -= 1;
            if shared.senders == 0 {
                drop(shared);
                self.inner.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut shared = self.inner.queue.lock().expect("channel lock");
            shared.receivers -= 1;
            if shared.receivers == 0 {
                drop(shared);
                self.inner.not_full.notify_all();
            }
        }
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Sender").finish_non_exhaustive()
        }
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Receiver").finish_non_exhaustive()
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = crate::thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| s.spawn(move || chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(total, 10);
    }

    #[test]
    fn bounded_channel_sheds_and_disconnects() {
        use crate::channel::{self, RecvTimeoutError, TryRecvError, TrySendError};
        use std::time::Duration;

        let (tx, rx) = channel::bounded::<u32>(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
        assert_eq!(tx.len(), 2);
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(1));
        tx.try_send(3).unwrap();
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Ok(3));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Disconnected)
        );

        let (tx, rx) = channel::bounded::<u32>(0);
        tx.send(9).unwrap();
        drop(rx);
        assert_eq!(tx.try_send(1), Err(TrySendError::Disconnected(1)));
    }

    #[test]
    fn bounded_channel_crosses_threads() {
        use crate::channel;
        use std::time::Duration;

        let (tx, rx) = channel::bounded::<u64>(4);
        let consumer = std::thread::spawn(move || {
            let mut total = 0;
            while let Ok(v) = rx.recv_timeout(Duration::from_secs(2)) {
                total += v;
            }
            total
        });
        for producer in [tx.clone(), tx] {
            std::thread::spawn(move || {
                for v in 1..=50u64 {
                    producer.send(v).unwrap();
                }
            });
        }
        assert_eq!(consumer.join().unwrap(), 2 * (50 * 51) / 2);
    }
}
