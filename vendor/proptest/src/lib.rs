//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so the workspace
//! vendors the slice of proptest's API its tests use: the
//! [`Strategy`] trait with `prop_map`/`prop_flat_map`, [`any`],
//! [`Just`], integer-range strategies, [`collection::vec`] /
//! [`collection::btree_map`], `prop_oneof!`, and the `proptest!` test
//! macro with `prop_assert*` / `prop_assume!`.
//!
//! Semantics: each test function runs `ProptestConfig::cases`
//! deterministic random cases (seeded from the test name, overridable
//! with `PROPTEST_SEED`). Failures panic with the ordinary assert
//! message; there is **no shrinking** — rerun with the printed seed to
//! reproduce.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-test configuration (subset of proptest's `ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Builds the deterministic RNG for one test run (seeded from the test
/// name; `PROPTEST_SEED` overrides for reproduction).
pub fn test_rng(test_name: &str) -> StdRng {
    let seed = match std::env::var("PROPTEST_SEED") {
        Ok(v) => v.parse().unwrap_or(0),
        Err(_) => {
            // FNV-1a over the test name: stable across runs and
            // platforms, distinct per test.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            h
        }
    };
    StdRng::seed_from_u64(seed)
}

/// A value generator (subset of proptest's `Strategy`; no shrinking).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds
    /// out of it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        let inner = self;
        BoxedStrategy(Box::new(move |rng| inner.generate(rng)))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Fn(&mut StdRng) -> T>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        (self.0)(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed strategies (built by `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `options`; panics if empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// Types with a default generation strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen::<$t>()
            }
        }
    )*};
}
impl_int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen()
    }
}

impl Arbitrary for String {
    fn arbitrary(rng: &mut StdRng) -> Self {
        let len = rng.gen_range(0usize..24);
        (0..len)
            .map(|_| {
                // Mostly ASCII with occasional multi-byte characters so
                // encoders see non-trivial UTF-8.
                if rng.gen_bool(0.9) {
                    char::from(rng.gen_range(0x20u8..0x7F))
                } else {
                    char::from_u32(rng.gen_range(0xA0u32..0x2FF)).unwrap_or('¤')
                }
            })
            .collect()
    }
}

impl<T: Arbitrary> Arbitrary for Vec<T> {
    fn arbitrary(rng: &mut StdRng) -> Self {
        let len = rng.gen_range(0usize..32);
        (0..len).map(|_| T::arbitrary(rng)).collect()
    }
}

impl<T: Arbitrary> Arbitrary for Option<T> {
    fn arbitrary(rng: &mut StdRng) -> Self {
        if rng.gen_bool(0.5) {
            Some(T::arbitrary(rng))
        } else {
            None
        }
    }
}

macro_rules! impl_tuple_arbitrary {
    ($($name:ident),+) => {
        impl<$($name: Arbitrary),+> Arbitrary for ($($name,)+) {
            fn arbitrary(rng: &mut StdRng) -> Self {
                ($($name::arbitrary(rng),)+)
            }
        }
    };
}
impl_tuple_arbitrary!(A);
impl_tuple_arbitrary!(A, B);
impl_tuple_arbitrary!(A, B, C);
impl_tuple_arbitrary!(A, B, C, D);

/// Strategy generating [`Arbitrary`] values — proptest's `any::<T>()`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// See [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies (subset of `proptest::collection`).
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;

    /// Size specifications accepted by the collection strategies.
    pub trait SizeRange: Clone {
        /// Draws a size.
        fn pick(&self, rng: &mut StdRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy for `Vec`s of `element` values with a size in `size`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeMap`s with up to `size` entries (duplicate
    /// keys collapse, as in proptest).
    pub fn btree_map<K: Strategy, V: Strategy, R: SizeRange>(
        key: K,
        value: V,
        size: R,
    ) -> BTreeMapStrategy<K, V, R> {
        BTreeMapStrategy { key, value, size }
    }

    /// See [`btree_map`].
    pub struct BTreeMapStrategy<K, V, R> {
        key: K,
        value: V,
        size: R,
    }

    impl<K: Strategy, V: Strategy, R: SizeRange> Strategy for BTreeMapStrategy<K, V, R>
    where
        K::Value: Ord,
    {
        type Value = std::collections::BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = self.size.pick(rng);
            (0..len)
                .map(|_| (self.key.generate(rng), self.value.generate(rng)))
                .collect()
        }
    }
}

/// The common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case (without counting it) unless the condition
/// holds. Only valid directly inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

/// Uniform choice between strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Declares property tests (subset of proptest's `proptest!` macro).
///
/// Parameters are either `pattern in strategy` or `name: Type`
/// (shorthand for `name in any::<Type>()`).
#[macro_export]
macro_rules! proptest {
    // Entry with a config override.
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @funcs ($cfg) $($rest)* }
    };

    (@funcs ($cfg:expr)) => {};
    (@funcs ($cfg:expr) $(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block $($rest:tt)*) => {
        #[test]
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_rng(stringify!($name));
            let mut __done: u32 = 0;
            let mut __attempts: u32 = 0;
            while __done < __cfg.cases {
                __attempts += 1;
                assert!(
                    __attempts <= __cfg.cases.saturating_mul(20) + 100,
                    "too many cases rejected by prop_assume!"
                );
                $crate::proptest!(@bind __rng, $($params)*);
                { $body }
                __done += 1;
            }
        }
        $crate::proptest! { @funcs ($cfg) $($rest)* }
    };

    (@bind $rng:ident,) => {};
    (@bind $rng:ident, $name:ident : $ty:ty, $($rest:tt)*) => {
        let $name: $ty = <$ty as $crate::Arbitrary>::arbitrary(&mut $rng);
        $crate::proptest!(@bind $rng, $($rest)*);
    };
    (@bind $rng:ident, $name:ident : $ty:ty) => {
        let $name: $ty = <$ty as $crate::Arbitrary>::arbitrary(&mut $rng);
    };
    (@bind $rng:ident, $pat:pat in $strategy:expr, $($rest:tt)*) => {
        let $pat = $crate::Strategy::generate(&($strategy), &mut $rng);
        $crate::proptest!(@bind $rng, $($rest)*);
    };
    (@bind $rng:ident, $pat:pat in $strategy:expr) => {
        let $pat = $crate::Strategy::generate(&($strategy), &mut $rng);
    };

    // Entry without a config override.
    ($($rest:tt)*) => {
        $crate::proptest! { @funcs ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Range strategies stay in bounds.
        #[test]
        fn ranges_in_bounds(a in 3u64..9, b in 0usize..=4) {
            prop_assert!((3..9).contains(&a));
            prop_assert!(b <= 4);
        }

        /// The `name: Type` shorthand and collections generate.
        #[test]
        fn shorthand_and_collections(
            x: u8,
            v in crate::collection::vec(any::<u8>(), 2..5),
        ) {
            let _ = x;
            prop_assert!((2..5).contains(&v.len()));
        }

        /// prop_assume skips cases without failing.
        #[test]
        fn assume_filters(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        /// Tuple patterns destructure strategy output.
        #[test]
        fn tuple_pattern((a, b) in (0u8..5, 5u8..10)) {
            prop_assert!(a < b);
        }
    }

    proptest! {
        /// Default config entry point also compiles.
        #[test]
        fn oneof_picks_an_arm(v in prop_oneof![Just(1u8), Just(2u8)]) {
            prop_assert!(v == 1 || v == 2);
        }
    }

    #[test]
    fn flat_map_and_map_compose() {
        let strat = (1usize..4).prop_flat_map(|n| {
            crate::collection::vec(any::<u8>(), n..=n).prop_map(move |v| (n, v))
        });
        let mut rng = crate::test_rng("flat_map_and_map_compose");
        for _ in 0..50 {
            let (n, v) = strat.generate(&mut rng);
            assert_eq!(v.len(), n);
        }
    }
}
