//! # LVQ — Lightweight Verifiable Queries for Bitcoin Transaction History
//!
//! A from-scratch Rust reproduction of *“LVQ: A Lightweight Verifiable
//! Query Approach for Transaction History in Bitcoin”* (Dai, Xiao, Yang,
//! Wang, Chang, Han, Jin — ICDCS 2020).
//!
//! A Bitcoin light node stores only block headers; to learn the history
//! of an address it must ask a full node it does not trust. LVQ makes
//! the answer *verifiable* — both **correct** (every returned
//! transaction is on-chain, via Merkle branches) and **complete** (no
//! transaction was omitted, via Bloom-filter and Sorted-Merkle-Tree
//! inexistence proofs) — while staying *lightweight* in both light-node
//! storage (32-byte header commitments instead of multi-KB filters) and
//! network transfer (merged BMT branches instead of per-block filters).
//!
//! This crate is a facade: it re-exports the workspace's crates under
//! one roof and hosts the runnable examples and cross-crate integration
//! tests.
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`codec`] | `lvq-codec` | canonical wire encoding; all measured byte counts |
//! | [`crypto`] | `lvq-crypto` | SHA-256, MurmurHash3, Base58Check, [`Hash256`] |
//! | [`bloom`] | `lvq-bloom` | BIP 37-style Bloom filters with union and FPR analysis |
//! | [`merkle`] | `lvq-merkle` | MT, SMT and BMT trees with their proof systems |
//! | [`chain`] | `lvq-chain` | the Bitcoin-like substrate: blocks, headers, chain building |
//! | [`store`] | `lvq-store` | crash-safe on-disk block store: segmented CRC-framed files, torn-tail recovery, serve-from-disk [`chain::BlockSource`] |
//! | [`core`] | `lvq-core` | the LVQ protocol: schemes, segmenting, prover, light client |
//! | [`node`] | `lvq-node` | full/light node pair over pluggable transports: in-process metered pipe or framed TCP with a bounded worker-pool server |
//! | [`workload`] | `lvq-workload` | deterministic mainnet-like workloads, Table III probes |
//!
//! # Quickstart
//!
//! ```
//! use lvq::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A small LVQ-committed chain with one interesting address.
//! let config = SchemeConfig::new(Scheme::Lvq, BloomParams::new(256, 2)?, 8)?;
//! let mut builder = ChainBuilder::new(config.chain_params())?;
//! let shop = Address::new("1CoffeeShop");
//! for h in 1..=8u32 {
//!     let mut txs = vec![Transaction::coinbase(Address::new("1Miner"), 50, h)];
//!     if h % 3 == 0 {
//!         txs.push(Transaction::coinbase(shop.clone(), 10, 100 + h));
//!     }
//!     builder.push_block(txs)?;
//! }
//!
//! // Full node answers; light node verifies against headers only.
//! // The transport is pluggable: LocalTransport stays in-process,
//! // TcpTransport speaks to a NodeServer over a socket — byte counts
//! // are identical either way.
//! let full = FullNode::new(builder.finish())?;
//! let mut peer = LocalTransport::new(&full);
//! let mut light = LightNode::sync_from(&mut peer, config)?;
//! let history = light.run(&QuerySpec::address(shop), &mut peer)?.into_single();
//! assert_eq!(history.balance.net(), 20);
//! assert_eq!(history.completeness, Completeness::Complete);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use lvq_bloom as bloom;
pub use lvq_chain as chain;
pub use lvq_codec as codec;
pub use lvq_core as core;
pub use lvq_crypto as crypto;
pub use lvq_merkle as merkle;
pub use lvq_node as node;
pub use lvq_store as store;
pub use lvq_workload as workload;

pub use lvq_crypto::Hash256;

/// The commonly-used subset of the API, for glob import.
pub mod prelude {
    pub use lvq_bloom::{BloomFilter, BloomParams, CheckOutcome};
    pub use lvq_chain::{
        balance_of, Address, BalanceBreakdown, Block, BlockHeader, BlockSource, Chain,
        ChainBuilder, ChainParams, CommitmentPolicy, InMemoryBlocks, Transaction, TxInput,
        TxOutPoint, TxOutput, UtxoSet,
    };
    pub use lvq_codec::{Decodable, Encodable};
    pub use lvq_core::{
        segments, Completeness, LightClient, Prover, QueryResponse, Scheme, SchemeConfig,
        SizeBreakdown, VerifiedHistory,
    };
    pub use lvq_crypto::Hash256;
    pub use lvq_merkle::{Bmt, BmtProof, MerkleBranch, MerkleTree, SmtProof, SortedMerkleTree};
    pub use lvq_node::{
        query_quorum, query_quorum_batch, BandwidthModel, FullNode, LightNode, LocalTransport,
        Negotiated, NodeServer, PipelinedTcpTransport, PipelinedTransport, QueryEngineStats,
        QueryPeer, QueryRun, QuerySpec, QuorumBatchOutcome, QuorumOutcome, SequentialPipeline,
        ServeNode, ServerConfig, ServerStats, TcpOptions, TcpTransport, Transport,
    };
    pub use lvq_store::{ingest_chain, open_chain, BlockStore, DiskBlockSource, StoreConfig};
    pub use lvq_workload::{probes, TrafficModel, Workload, WorkloadBuilder};
}
